//! The code-offset secure sketch and fuzzy extractor over the Hamming
//! metric (Juels–Wattenberg / Dodis et al.), built on BCH codes.

use crate::key::ExtractedKey;
use crate::SketchError;
use fe_crypto::ct::ct_eq;
use fe_crypto::extractor::{HmacExtractor, StrongExtractor};
use fe_crypto::{Digest, Sha256};
use fe_ecc::{Bch, BinaryCode};
use fe_metrics::BitVec;
use rand::Rng;
use rand::RngCore;

/// Code-offset sketch: `SS(w) = w ⊕ C(r)` for a random codeword `C(r)`;
/// `Rec(w', s)` decodes `w' ⊕ s` back to the codeword and returns
/// `s ⊕ C`. Corrects up to the code's error capability in Hamming
/// distance.
///
/// ```rust
/// use fe_core::baselines::CodeOffsetSketch;
/// use fe_ecc::Bch;
/// use fe_metrics::BitVec;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sketch = CodeOffsetSketch::new(Bch::new(6, 3)?); // BCH(63,·,3)
/// let w = BitVec::from_fn(63, |i| i % 5 == 0);
/// let s = sketch.sketch(&w, &mut rng)?;
/// let mut w_noisy = w.clone();
/// w_noisy.flip(7);
/// w_noisy.flip(40);
/// assert_eq!(sketch.recover(&w_noisy, &s)?, w);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CodeOffsetSketch {
    code: Bch,
}

impl CodeOffsetSketch {
    /// Builds the sketch over a BCH code.
    pub fn new(code: Bch) -> Self {
        CodeOffsetSketch { code }
    }

    /// The underlying code.
    pub fn code(&self) -> &Bch {
        &self.code
    }

    /// Input length in bits (`n` of the code).
    pub fn input_len(&self) -> usize {
        self.code.n()
    }

    /// Hamming error tolerance.
    pub fn tolerance(&self) -> usize {
        self.code.t()
    }

    /// `SS(w; r) = w ⊕ C(r)`.
    ///
    /// # Errors
    /// [`SketchError::DimensionMismatch`] if `w` is not `n` bits.
    pub fn sketch<R: RngCore + ?Sized>(
        &self,
        w: &BitVec,
        rng: &mut R,
    ) -> Result<BitVec, SketchError> {
        if w.len() != self.code.n() {
            return Err(SketchError::DimensionMismatch {
                expected: self.code.n(),
                got: w.len(),
            });
        }
        let msg = BitVec::from_fn(self.code.k(), |_| rng.gen_bool(0.5));
        let codeword = self
            .code
            .encode(&msg)
            .map_err(|_| SketchError::BadParameters)?;
        Ok(&codeword ^ w)
    }

    /// `Rec(w', s)`: decode `w' ⊕ s` to the nearest codeword `C` and
    /// return `s ⊕ C`.
    ///
    /// # Errors
    /// [`SketchError::OutOfRange`] when more than `t` bits differ;
    /// [`SketchError::DimensionMismatch`] on length mismatch.
    pub fn recover(&self, reading: &BitVec, sketch: &BitVec) -> Result<BitVec, SketchError> {
        if reading.len() != self.code.n() || sketch.len() != self.code.n() {
            return Err(SketchError::DimensionMismatch {
                expected: self.code.n(),
                got: reading.len(),
            });
        }
        let noisy_codeword = reading ^ sketch;
        let decoded = self
            .code
            .decode(&noisy_codeword)
            .map_err(|_| SketchError::OutOfRange)?;
        Ok(&decoded.codeword ^ sketch)
    }
}

/// Helper data of the binary fuzzy extractor: sketch, robust tag and
/// extractor seed.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryHelperData {
    /// The code-offset sketch `s`.
    pub sketch: BitVec,
    /// Robust binding tag `H(w ‖ s)`.
    pub tag: Vec<u8>,
    /// Strong-extractor seed.
    pub seed: Vec<u8>,
}

/// Fuzzy extractor over bit-string biometrics (iris-code style), with the
/// same robust-tag treatment as the paper's construction — the baseline
/// the ablation bench compares against.
#[derive(Debug, Clone)]
pub struct BinaryFuzzyExtractor {
    sketch: CodeOffsetSketch,
    extractor: HmacExtractor,
}

impl BinaryFuzzyExtractor {
    /// Builds from a code, producing `key_len`-byte keys.
    pub fn new(code: Bch, key_len: usize) -> Self {
        BinaryFuzzyExtractor {
            sketch: CodeOffsetSketch::new(code),
            extractor: HmacExtractor::new(key_len),
        }
    }

    /// The sketch layer.
    pub fn sketcher(&self) -> &CodeOffsetSketch {
        &self.sketch
    }

    fn tag(w: &BitVec, s: &BitVec) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update(b"fe-binary-robust-v1");
        h.update(&w.to_bytes());
        h.update(&s.to_bytes());
        h.finalize()
    }

    /// `Gen(w) → (R, P)`.
    ///
    /// # Errors
    /// Propagates sketch errors.
    pub fn generate<R: RngCore + ?Sized>(
        &self,
        w: &BitVec,
        rng: &mut R,
    ) -> Result<(ExtractedKey, BinaryHelperData), SketchError> {
        let sketch = self.sketch.sketch(w, rng)?;
        let tag = Self::tag(w, &sketch);
        let mut seed = vec![0u8; self.extractor.seed_len(w.to_bytes().len())];
        rng.fill_bytes(&mut seed);
        let key = ExtractedKey::new(self.extractor.extract(&w.to_bytes(), &seed));
        Ok((key, BinaryHelperData { sketch, tag, seed }))
    }

    /// `Rep(w', P) → R`.
    ///
    /// # Errors
    /// [`SketchError::OutOfRange`] beyond the code's tolerance;
    /// [`SketchError::TagMismatch`] on tampered helper data.
    pub fn reproduce(
        &self,
        reading: &BitVec,
        helper: &BinaryHelperData,
    ) -> Result<ExtractedKey, SketchError> {
        let w = self.sketch.recover(reading, &helper.sketch)?;
        if !ct_eq(&Self::tag(&w, &helper.sketch), &helper.tag) {
            return Err(SketchError::TagMismatch);
        }
        Ok(ExtractedKey::new(
            self.extractor.extract(&w.to_bytes(), &helper.seed),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    fn extractor() -> BinaryFuzzyExtractor {
        BinaryFuzzyExtractor::new(Bch::new(6, 4).unwrap(), 32)
    }

    #[test]
    fn sketch_recover_within_tolerance() {
        let mut r = rng();
        let s = CodeOffsetSketch::new(Bch::new(6, 4).unwrap());
        let w = BitVec::from_fn(63, |i| i % 3 == 0);
        let sk = s.sketch(&w, &mut r).unwrap();
        let mut noisy = w.clone();
        for p in [1usize, 17, 33, 60] {
            noisy.flip(p);
        }
        assert_eq!(s.recover(&noisy, &sk).unwrap(), w);
    }

    #[test]
    fn too_many_flips_fail() {
        let mut r = rng();
        let s = CodeOffsetSketch::new(Bch::new(5, 2).unwrap());
        let w = BitVec::from_fn(31, |i| i % 2 == 0);
        let sk = s.sketch(&w, &mut r).unwrap();
        let mut noisy = w.clone();
        for p in [0usize, 5, 11, 20, 29] {
            noisy.flip(p);
        }
        match s.recover(&noisy, &sk) {
            Err(SketchError::OutOfRange) => {}
            Ok(recovered) => assert_ne!(recovered, w),
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let mut r = rng();
        let s = CodeOffsetSketch::new(Bch::new(5, 2).unwrap());
        assert!(matches!(
            s.sketch(&BitVec::zeros(30), &mut r),
            Err(SketchError::DimensionMismatch {
                expected: 31,
                got: 30
            })
        ));
    }

    #[test]
    fn fuzzy_extractor_roundtrip() {
        let mut r = rng();
        let fe = extractor();
        let w = BitVec::from_fn(63, |i| (i * 7) % 11 < 5);
        let (key, helper) = fe.generate(&w, &mut r).unwrap();
        let mut noisy = w.clone();
        noisy.flip(8);
        noisy.flip(44);
        assert_eq!(fe.reproduce(&noisy, &helper).unwrap(), key);
    }

    #[test]
    fn impostor_fails() {
        let mut r = rng();
        let fe = extractor();
        let w = BitVec::from_fn(63, |i| i % 4 == 0);
        let (_, helper) = fe.generate(&w, &mut r).unwrap();
        let impostor = BitVec::from_fn(63, |_| {
            use rand::Rng;
            r.gen_bool(0.5)
        });
        // ~31 expected flips, way beyond t = 4.
        assert!(fe.reproduce(&impostor, &helper).is_err());
    }

    #[test]
    fn tampered_sketch_detected() {
        let mut r = rng();
        let fe = extractor();
        let w = BitVec::from_fn(63, |i| i % 4 == 0);
        let (_, mut helper) = fe.generate(&w, &mut r).unwrap();
        helper.sketch.flip(0);
        // Either Rec self-corrects the flip (1 error ≤ t) but the tag is
        // computed over a *different* w… actually flipping one sketch bit
        // shifts the offset, so the recovered w differs in bit 0 → tag
        // mismatch; or decode fails outright.
        match fe.reproduce(&w, &helper) {
            Err(SketchError::TagMismatch) | Err(SketchError::OutOfRange) => {}
            other => panic!("tampering not detected: {other:?}"),
        }
    }

    #[test]
    fn tampered_tag_detected() {
        let mut r = rng();
        let fe = extractor();
        let w = BitVec::from_fn(63, |i| i % 4 == 0);
        let (_, mut helper) = fe.generate(&w, &mut r).unwrap();
        helper.tag[5] ^= 1;
        assert_eq!(fe.reproduce(&w, &helper), Err(SketchError::TagMismatch));
    }
}
