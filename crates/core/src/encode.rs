//! Canonical byte encodings used for hashing and extraction.
//!
//! The robust sketch hashes `(x, s)` and the extractor consumes `x` as
//! bytes; both need an injective, deterministic encoding of integer
//! vectors.

/// Encodes an `i64` vector as length-prefixed big-endian bytes.
///
/// The 8-byte length prefix makes the encoding injective across
/// dimensions (no vector is a prefix of another's encoding).
///
/// ```rust
/// use fe_core::{decode_i64_vector, encode_i64_vector};
///
/// let v = vec![1i64, -2, i64::MAX];
/// let bytes = encode_i64_vector(&v);
/// assert_eq!(decode_i64_vector(&bytes), Some(v));
/// ```
pub fn encode_i64_vector(v: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + v.len() * 8);
    out.extend_from_slice(&(v.len() as u64).to_be_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_be_bytes());
    }
    out
}

/// Decodes a vector produced by [`encode_i64_vector`]; `None` on
/// malformed input (wrong length or truncation).
pub fn decode_i64_vector(bytes: &[u8]) -> Option<Vec<i64>> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u64::from_be_bytes(bytes[..8].try_into().ok()?) as usize;
    if bytes.len() != 8 + len * 8 {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for chunk in bytes[8..].chunks_exact(8) {
        out.push(i64::from_be_bytes(chunk.try_into().ok()?));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for v in [vec![], vec![0i64], vec![1, -1, i64::MIN, i64::MAX]] {
            assert_eq!(decode_i64_vector(&encode_i64_vector(&v)), Some(v));
        }
    }

    #[test]
    fn injective_across_dimensions() {
        // [0] and [0, 0] must encode differently.
        assert_ne!(encode_i64_vector(&[0]), encode_i64_vector(&[0, 0]));
        // [1, 2] vs [258] (raw-byte collision risk without framing).
        assert_ne!(encode_i64_vector(&[1, 2]), encode_i64_vector(&[258]));
    }

    #[test]
    fn malformed_rejected() {
        assert_eq!(decode_i64_vector(&[]), None);
        assert_eq!(decode_i64_vector(&[0; 7]), None);
        let mut good = encode_i64_vector(&[5]);
        good.pop();
        assert_eq!(decode_i64_vector(&good), None);
        good.extend_from_slice(&[0, 0]);
        assert_eq!(decode_i64_vector(&good), None);
    }
}
