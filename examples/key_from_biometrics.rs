//! Using the extracted key for real cryptography: derive an encryption
//! key from a biometric, encrypt a note, and decrypt it later from a
//! fresh (noisy) reading of the same biometric. No password, no stored
//! key — only public helper data is kept.
//!
//! Run with: `cargo run --release --example key_from_biometrics`

use fuzzy_id::core::{ChebyshevSketch, FuzzyExtractor};
use fuzzy_id::crypto::{Hkdf, Hmac, Sha256};
use rand::{Rng, SeedableRng};

/// Toy stream cipher: XOR with an HKDF-expanded keystream, authenticated
/// with HMAC (encrypt-then-MAC). Illustrative only.
fn seal(key: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let stream = Hkdf::<Sha256>::derive(key, b"stream", b"", plaintext.len());
    let mut ct: Vec<u8> = plaintext.iter().zip(&stream).map(|(p, k)| p ^ k).collect();
    let tag = Hmac::<Sha256>::mac(key, &ct);
    ct.extend_from_slice(&tag);
    ct
}

fn open(key: &[u8], sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < 32 {
        return None;
    }
    let (ct, tag) = sealed.split_at(sealed.len() - 32);
    if !fuzzy_id::crypto::ct::ct_eq(&Hmac::<Sha256>::mac(key, ct), tag) {
        return None;
    }
    let stream = Hkdf::<Sha256>::derive(key, b"stream", b"", ct.len());
    Some(ct.iter().zip(&stream).map(|(c, k)| c ^ k).collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let fe = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32);

    // Day 0: enroll and encrypt.
    let bio = fe.sketcher().line().random_vector(3000, &mut rng);
    let (key, helper) = fe.generate(&bio, &mut rng)?;
    let secret_note = b"the vault combination is 13-37-42";
    let sealed = seal(key.as_bytes(), secret_note);
    println!(
        "encrypted {} bytes under a biometric-derived key",
        secret_note.len()
    );
    drop(key); // nothing secret is stored — only `helper` and `sealed`

    // Day 30: a fresh scan of the same biometric reproduces the key.
    let fresh_scan: Vec<i64> = bio
        .iter()
        .map(|&x| x + rng.gen_range(-100i64..=100))
        .collect();
    let key_again = fe.reproduce(&fresh_scan, &helper)?;
    let recovered = open(key_again.as_bytes(), &sealed).expect("MAC must verify");
    assert_eq!(recovered, secret_note);
    println!(
        "decrypted with a fresh reading: {:?}",
        String::from_utf8_lossy(&recovered)
    );

    // A thief with the helper data and ciphertext — but no finger — gets
    // nothing.
    let thief_scan = fe.sketcher().line().random_vector(3000, &mut rng);
    match fe.reproduce(&thief_scan, &helper) {
        Err(e) => println!("thief without the biometric: {e} ✓"),
        Ok(k) => {
            assert!(open(k.as_bytes(), &sealed).is_none());
            println!("thief key wrong: MAC rejected ✓");
        }
    }

    Ok(())
}
