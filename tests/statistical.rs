//! Statistical checks of the security definitions: Definition 6 says the
//! extracted string must be statistically close to uniform even given the
//! helper data. These tests measure that empirically (coarse chi-square
//! bounds — smoke-level, not a substitute for the analytic argument).

use fuzzy_id::core::{ChebyshevSketch, FuzzyExtractor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Chi-square statistic for byte-frequency uniformity.
fn chi_square_bytes(samples: &[u8]) -> f64 {
    let mut counts = [0u64; 256];
    for &b in samples {
        counts[b as usize] += 1;
    }
    let expected = samples.len() as f64 / 256.0;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[test]
fn extracted_keys_look_uniform() {
    // 512 keys × 32 bytes = 16,384 byte samples. For 255 degrees of
    // freedom, chi-square has mean 255 and std ≈ 22.6; we accept < 360
    // (≈ +4.6σ) — loose enough to be deterministic-safe, tight enough to
    // catch any structural bias.
    let fe = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32);
    let mut rng = StdRng::seed_from_u64(0x57A7);
    let mut bytes = Vec::with_capacity(512 * 32);
    for _ in 0..512 {
        let bio = fe.sketcher().line().random_vector(64, &mut rng);
        let (key, _helper) = fe.generate(&bio, &mut rng).unwrap();
        bytes.extend_from_slice(key.as_bytes());
    }
    let chi = chi_square_bytes(&bytes);
    assert!(chi < 360.0, "extracted keys biased: chi-square = {chi:.1}");
}

#[test]
fn keys_independent_of_helper_data_bits() {
    // Correlation smoke test: the first key byte should not predict the
    // first sketch movement's sign (helper data is public!).
    let fe = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32);
    let mut rng = StdRng::seed_from_u64(0x57A8);
    let trials = 600usize;
    let mut table = [[0u32; 2]; 2]; // [key bit][movement sign]
    for _ in 0..trials {
        let bio = fe.sketcher().line().random_vector(16, &mut rng);
        let (key, helper) = fe.generate(&bio, &mut rng).unwrap();
        let key_bit = (key.as_bytes()[0] & 1) as usize;
        let sign = (helper.sketch.inner[0] > 0) as usize;
        table[key_bit][sign] += 1;
    }
    // Chi-square independence test, 1 degree of freedom; 10.83 = p<0.001.
    let total = trials as f64;
    let row: [f64; 2] = [
        (table[0][0] + table[0][1]) as f64,
        (table[1][0] + table[1][1]) as f64,
    ];
    let col: [f64; 2] = [
        (table[0][0] + table[1][0]) as f64,
        (table[0][1] + table[1][1]) as f64,
    ];
    let mut chi = 0.0;
    for i in 0..2 {
        for j in 0..2 {
            let expected = row[i] * col[j] / total;
            let d = table[i][j] as f64 - expected;
            chi += d * d / expected;
        }
    }
    assert!(
        chi < 10.83,
        "key bit correlates with helper data: chi = {chi:.2}"
    );
}

#[test]
fn sketch_movements_are_near_uniform() {
    // Theorem 3's model assumes uniform inputs induce near-uniform
    // movements over [-ka/2, ka/2]. Check the marginal distribution.
    use fuzzy_id::core::SecureSketch;
    let scheme = ChebyshevSketch::paper_defaults();
    let ka = scheme.line().interval_len() as i64;
    let mut rng = StdRng::seed_from_u64(0x57A9);
    let x = scheme.line().random_vector(200_000, &mut rng);
    let sketch = scheme.sketch(&x, &mut rng).unwrap();

    // Bucket the movements into 8 equal bins over (-ka/2, ka/2].
    let mut bins = [0u64; 8];
    for &s in &sketch {
        let shifted = (s + ka / 2).clamp(0, ka - 1); // [0, ka)
        bins[(shifted * 8 / ka) as usize] += 1;
    }
    let expected = sketch.len() as f64 / 8.0;
    for (i, &count) in bins.iter().enumerate() {
        let dev = (count as f64 - expected).abs() / expected;
        assert!(
            dev < 0.05,
            "bin {i} deviates {:.1}% from uniform",
            dev * 100.0
        );
    }
}
