//! The succinct fuzzy extractor of *Fuzzy Extractors for Biometric
//! Identification* (Li, Nepal, Guo, Mu, Susilo — ICDCS 2017).
//!
//! # What this crate implements
//!
//! * [`NumberLine`] — the discretized ring of Definition 4, parameterized
//!   by the unit `a`, units-per-interval `k` and interval count `v`.
//! * [`ChebyshevSketch`] — the maximum-norm secure sketch of Sec. IV-B
//!   (`SS`/`Rec` with the boundary-point coin flips), correct for readings
//!   within Chebyshev distance `t < ka/2` (Theorem 1).
//! * [`RobustSketch`] — the Boyen et al. hash-binding wrapper of
//!   Sec. IV-C, which detects helper-data tampering.
//! * [`FuzzyExtractor`] — the generic `Gen`/`Rep` construction combining a
//!   secure sketch with a strong extractor (Sec. II / IV-C).
//! * [`conditions`] — the per-coordinate match conditions (1)–(4) of the
//!   identification protocol (Theorem 2), equivalent to a cyclic Chebyshev
//!   test on the sketch ring.
//! * [`index`] — the server-side sketch lookup: the paper-faithful
//!   early-abort [`ScanIndex`], the sublinear [`BucketIndex`] extension,
//!   and the horizontally-scaling [`ShardedIndex`] wrapper with parallel
//!   shard scans and a batch lookup API (see `DESIGN.md`).
//! * [`codec`] — the canonical, versioned binary codec for durable
//!   sketch/helper storage: magic + format version + system-parameter
//!   [`codec::Fingerprint`], length-prefixed fields, CRC-framed journal
//!   entries (the on-disk contract behind `fe-protocol`'s enrollment
//!   store).
//! * [`analysis`] — Theorem 3 entropy accounting (min-entropy, residual
//!   entropy `m̃ = n·log₂v`, loss `n·log₂ka`, storage `n·log₂(ka+1)`) and
//!   the false-close probability bound.
//! * [`baselines`] — the classical constructions used as comparison
//!   points: the code-offset (BCH) sketch and the fuzzy vault.
//!
//! # Quickstart
//!
//! ```rust
//! use fe_core::{ChebyshevSketch, FuzzyExtractor, NumberLine, SecureSketch};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let line = NumberLine::new(100, 4, 500)?;        // Table II parameters
//! let sketch = ChebyshevSketch::new(line, 100)?;   // threshold t = 100
//! let fe = FuzzyExtractor::with_defaults(sketch, 32);
//!
//! let bio = fe.sketcher().line().random_vector(64, &mut rng);
//! let (key, helper) = fe.generate(&bio, &mut rng)?;
//!
//! let noisy: Vec<i64> = bio.iter().map(|x| x + 99).collect();
//! assert_eq!(fe.reproduce(&noisy, &helper)?, key);
//!
//! let far: Vec<i64> = bio.iter().map(|x| x + 101).collect();
//! assert!(fe.reproduce(&far, &helper).is_err());
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the one sanctioned exception is the
// AVX2 prefilter kernel in `index::store` (std::arch intrinsics behind
// runtime feature detection), which scopes its own narrow
// `#[allow(unsafe_code)]` with the safety argument documented there.
// Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baselines;
mod chebyshev;
pub mod codec;
pub mod conditions;
mod encode;
mod error;
pub mod fusion;
mod fuzzy;
pub mod index;
mod key;
mod numberline;
mod robust;
mod sketch;

pub use chebyshev::ChebyshevSketch;
pub use encode::{decode_i64_vector, encode_i64_vector};
pub use error::SketchError;
pub use fuzzy::{FuzzyExtractor, HelperData};
pub use index::{
    BucketIndex, CellWidth, Combine, EpochIndex, EpochRead, EpochReader, FilterConfig,
    FilterKernel, IndexReader, PairedArena, ParallelConfig, PlaneDepth, PlaneWidth, RecordId,
    RowMask, ScanIndex, Segment, SegmentBacking, ShardedIndex, ShardedReader, SketchArena,
    SketchIndex,
};
pub use key::ExtractedKey;
pub use numberline::NumberLine;
pub use robust::{RobustData, RobustSketch};
pub use sketch::SecureSketch;

/// The default fuzzy extractor instantiation used throughout the paper's
/// experiments: Chebyshev sketch → SHA-256 robust wrapper → HMAC-SHA-256
/// extractor.
pub type DefaultFuzzyExtractor = FuzzyExtractor<
    RobustSketch<ChebyshevSketch, fe_crypto::Sha256>,
    fe_crypto::extractor::HmacExtractor,
>;
