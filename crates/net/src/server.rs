//! The threaded TCP front door: accept loop, per-connection reader and
//! writer threads, request dispatch into a [`ScheduledServer`].
//!
//! # Thread model
//!
//! One **accept thread** owns the (nonblocking) listener: it polls for
//! new sockets, spawns a pair of threads per connection, and reaps
//! finished pairs. Each connection gets
//!
//! * a **reader** thread — parses frames, decodes envelopes, dispatches
//!   requests, and pushes one reply per request onto the writer's
//!   channel **in arrival order**;
//! * a **writer** thread — resolves each reply (waiting out scheduler
//!   tickets where needed) and writes the response frame.
//!
//! Splitting read from write is what makes the connection a real
//! pipeline: while the scheduler's micro-batch carries request *n*, the
//! reader is already admitting requests *n+1, n+2, …*. Because replies
//! enter the channel in arrival order and the writer resolves them
//! FIFO, responses leave the socket in request order — a pipelining
//! client never needs to reorder.
//!
//! # Backpressure
//!
//! Identification dispatch is [`ScheduledServer::submit`]: when the
//! admission queue is full the submit fails **immediately** with
//! [`ProtocolError::Overloaded`], and the reader queues an error reply
//! carrying [`ErrorCode::Overloaded`](crate::ErrorCode::Overloaded)
//! instead of a ticket. An overloaded server answers every request it
//! sheds — it never silently drops a frame or the connection.
//!
//! # Failure severities
//!
//! A malformed *message* inside a well-formed envelope gets an error
//! response and the connection lives on. A violation of the transport
//! itself — bad CRC, oversized length prefix, mid-frame EOF, an
//! envelope too short to carry a request id — is connection-fatal:
//! past that point the byte stream cannot be trusted to re-synchronise.

use crate::envelope::{self, Response, ResponseBody};
use crate::error::WireError;
use crate::frame::{read_frame_session, write_frame, FrameEvent, Session, DEFAULT_MAX_FRAME};
use crate::handshake::{self, HandshakeStatus, NET_VERSION};
use fe_core::codec::Fingerprint;
use fe_core::{EpochIndex, EpochRead};
use fe_protocol::scheduler::{IdentifyTicket, ScheduledServer};
use fe_protocol::wire::Message;
use fe_protocol::{IdentChallenge, ProtocolError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for the TCP front door.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Largest frame payload accepted or sent
    /// ([`DEFAULT_MAX_FRAME`] unless raised; both peers must agree).
    pub max_frame: usize,
    /// Close a connection after this long without a complete frame.
    pub idle_timeout: Duration,
    /// How often blocked reads and the accept loop wake to check the
    /// idle clock and the shutdown flag. Purely an internal
    /// responsiveness dial: shutdown and idle detection lag by at most
    /// one tick.
    pub poll_tick: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_frame: DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(60),
            poll_tick: Duration::from_millis(25),
        }
    }
}

/// Counters exported by a running [`NetServer`]. All relaxed-atomic;
/// safe to read while the server serves traffic.
#[derive(Debug, Default)]
pub struct NetMetrics {
    accepted: AtomicU64,
    active: AtomicU64,
    handshake_failures: AtomicU64,
    requests: AtomicU64,
    responses_ok: AtomicU64,
    responses_err: AtomicU64,
    shed: AtomicU64,
    idle_closed: AtomicU64,
    fatal_frames: AtomicU64,
}

impl NetMetrics {
    /// Connections accepted (including ones later rejected at
    /// handshake).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Connections rejected during the handshake (bad hello, version or
    /// fingerprint mismatch).
    pub fn handshake_failures(&self) -> u64 {
        self.handshake_failures.load(Ordering::Relaxed)
    }

    /// Requests decoded and dispatched.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Success responses written.
    pub fn responses_ok(&self) -> u64 {
        self.responses_ok.load(Ordering::Relaxed)
    }

    /// Error responses written (any code, including `OVERLOADED`).
    pub fn responses_err(&self) -> u64 {
        self.responses_err.load(Ordering::Relaxed)
    }

    /// `OVERLOADED` verdicts sent, counting both whole-request sheds
    /// and shed slots inside batch responses.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Connections closed by the idle timeout.
    pub fn idle_closed(&self) -> u64 {
        self.idle_closed.load(Ordering::Relaxed)
    }

    /// Connections dropped for transport violations (bad CRC, oversize
    /// frame, mid-frame EOF, unaddressable envelope).
    pub fn fatal_frames(&self) -> u64 {
        self.fatal_frames.load(Ordering::Relaxed)
    }
}

/// One queued reply, pushed by the reader in request-arrival order.
/// Scheduler tickets ride unresolved so the reader can keep admitting
/// while the writer blocks on results.
enum Reply {
    /// Already resolved at dispatch (write ops, errors, sheds).
    Ready(u64, Response),
    /// A scheduled identification awaiting its micro-batch.
    Ticket(u64, IdentifyTicket),
    /// A batched identification: per-probe tickets (or admission
    /// refusals), position-aligned.
    Batch(u64, Vec<Result<IdentifyTicket, ProtocolError>>),
}

/// A running TCP front door over a [`ScheduledServer`].
///
/// Spawning binds the listener and starts the accept thread; the
/// server then runs until [`NetServer::shutdown`] (or drop, which
/// shuts down implicitly). See the [module docs](self) for the thread
/// model and `PROTOCOL.md` for the wire contract it serves.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    metrics: Arc<NetMetrics>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `scheduler` under `config`.
    ///
    /// # Errors
    /// Any [`io::Error`] from binding the listener.
    pub fn spawn<I, A>(
        scheduler: Arc<ScheduledServer<I>>,
        addr: A,
        config: NetConfig,
    ) -> io::Result<NetServer>
    where
        I: EpochRead + Send + Sync + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(NetMetrics::default());
        let fingerprint = scheduler.server().params().fingerprint();
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("fe-net-accept".into())
                .spawn(move || {
                    accept_loop(listener, scheduler, fingerprint, config, shutdown, metrics)
                })
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept),
            metrics,
        })
    }

    /// A front door over a fresh scan-backed scheduler — the one-call
    /// setup used by examples and tests
    /// ([`ScheduledServer::scan`] + [`NetServer::spawn`]).
    ///
    /// # Errors
    /// Any [`io::Error`] from binding the listener.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the scheduler config is degenerate
    /// (see [`ScheduledServer::new`]).
    pub fn scan<A: ToSocketAddrs>(
        params: fe_protocol::SystemParams,
        shards: usize,
        sched: fe_protocol::scheduler::SchedulerConfig,
        addr: A,
        config: NetConfig,
    ) -> io::Result<(NetServer, Arc<ScheduledServer<EpochIndex>>)> {
        let scheduler = Arc::new(ScheduledServer::scan(params, shards, sched));
        let server = NetServer::spawn(Arc::clone(&scheduler), addr, config)?;
        Ok((server, scheduler))
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's exported counters.
    pub fn metrics(&self) -> &NetMetrics {
        &self.metrics
    }

    /// Stops accepting, interrupts every connection at its next poll
    /// tick, and joins all server threads. In-flight replies already
    /// queued to writers are still delivered before their connections
    /// close.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop<I: EpochRead + Send + Sync + 'static>(
    listener: TcpListener,
    scheduler: Arc<ScheduledServer<I>>,
    fingerprint: Fingerprint,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<NetMetrics>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                metrics.accepted.fetch_add(1, Ordering::Relaxed);
                let scheduler = Arc::clone(&scheduler);
                let shutdown = Arc::clone(&shutdown);
                let metrics = Arc::clone(&metrics);
                let config = config.clone();
                let handle = std::thread::Builder::new()
                    .name("fe-net-conn".into())
                    .spawn(move || {
                        metrics.active.fetch_add(1, Ordering::Relaxed);
                        serve_connection(
                            stream,
                            scheduler,
                            fingerprint,
                            config,
                            shutdown,
                            metrics.clone(),
                        );
                        metrics.active.fetch_sub(1, Ordering::Relaxed);
                    });
                if let Ok(h) = handle {
                    connections.push(h);
                }
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(config.poll_tick);
            }
            // Transient accept errors (e.g. a connection reset between
            // readiness and accept) are not fatal to the listener.
            Err(_) => std::thread::sleep(config.poll_tick),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Runs the handshake, then the reader loop; owns the writer thread.
fn serve_connection<I: EpochRead + Send + Sync + 'static>(
    stream: TcpStream,
    scheduler: Arc<ScheduledServer<I>>,
    fingerprint: Fingerprint,
    config: NetConfig,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<NetMetrics>,
) {
    let mut reader = stream;
    // The read timeout is the poll tick that lets blocked reads observe
    // the idle clock and the shutdown flag (see `frame::Session`).
    if reader.set_read_timeout(Some(config.poll_tick)).is_err() {
        return;
    }
    let session = Session {
        idle_timeout: config.idle_timeout,
        shutdown: &shutdown,
    };

    // Handshake: first frame in, one frame out; any rejection closes.
    let hello = match read_frame_session(&mut reader, config.max_frame, Some(session)) {
        Ok(FrameEvent::Frame(payload)) => payload,
        _ => {
            metrics.handshake_failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let status = match handshake::decode_hello(&hello) {
        Ok((version, _)) if version != NET_VERSION => HandshakeStatus::VersionMismatch,
        Ok((_, theirs)) if theirs != fingerprint => HandshakeStatus::FingerprintMismatch,
        Ok(_) => HandshakeStatus::Accepted,
        Err(_) => {
            // Not even a hello: close without replying (we cannot know
            // the peer speaks this protocol at all).
            metrics.handshake_failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let reply = handshake::encode_reply(status, &fingerprint);
    if write_frame(&mut reader, &reply, config.max_frame).is_err()
        || status != HandshakeStatus::Accepted
    {
        metrics.handshake_failures.fetch_add(1, Ordering::Relaxed);
        return;
    }

    // Writer thread: resolves replies FIFO, writes response frames.
    let writer_stream = match reader.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Reply>();
    let max_frame = config.max_frame;
    let writer = std::thread::Builder::new()
        .name("fe-net-write".into())
        .spawn({
            let metrics = Arc::clone(&metrics);
            move || writer_loop(writer_stream, rx, max_frame, metrics)
        })
        .expect("spawn connection writer");

    // Reader loop: frame → envelope → dispatch → queue reply.
    loop {
        match read_frame_session(&mut reader, config.max_frame, Some(session)) {
            Ok(FrameEvent::Frame(payload)) => {
                let (id, msg) = match envelope::decode_request(&payload) {
                    Ok(decoded) => decoded,
                    Err(_) => {
                        // No request id to answer to: transport-fatal.
                        metrics.fatal_frames.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                };
                metrics.requests.fetch_add(1, Ordering::Relaxed);
                let reply = match msg {
                    Ok(msg) => dispatch(&scheduler, id, msg),
                    Err(e) => Reply::Ready(id, Err(WireError::from_protocol(&e))),
                };
                if tx.send(reply).is_err() {
                    break; // writer died (peer stopped reading)
                }
            }
            Ok(FrameEvent::Closed) => break,
            Ok(FrameEvent::IdleTimeout) => {
                metrics.idle_closed.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Ok(FrameEvent::Shutdown) => break,
            Err(_) => {
                metrics.fatal_frames.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    drop(tx);
    let _ = writer.join();
    let _ = reader.shutdown(std::net::Shutdown::Both);
}

/// Maps a protocol-level result into the wire response.
fn to_response(result: Result<ResponseBody, ProtocolError>) -> Response {
    result.map_err(|e| WireError::from_protocol(&e))
}

/// Dispatches one decoded request. Identification rides the scheduler
/// (tickets resolve in the writer); every other op is synchronous on
/// the wrapped server — none of them scan-bound.
fn dispatch<I: EpochRead + Send + Sync + 'static>(
    scheduler: &ScheduledServer<I>,
    id: u64,
    msg: Message,
) -> Reply {
    match msg {
        Message::Identify { probe } => match scheduler.submit(probe) {
            Ok(ticket) => Reply::Ticket(id, ticket),
            Err(e) => Reply::Ready(id, Err(WireError::from_protocol(&e))),
        },
        Message::IdentifyBatch { probes } => {
            let tickets = probes.into_iter().map(|p| scheduler.submit(p)).collect();
            Reply::Batch(id, tickets)
        }
        Message::Enroll(record) => Reply::Ready(
            id,
            to_response(
                scheduler
                    .server()
                    .enroll(record)
                    .map(|()| ResponseBody::Empty),
            ),
        ),
        Message::EnrollUnique(record) => Reply::Ready(
            id,
            to_response(
                scheduler
                    .enroll_unique(record)
                    .map(|()| ResponseBody::Empty),
            ),
        ),
        Message::Revoke { id: user } => Reply::Ready(
            id,
            to_response(
                scheduler
                    .server()
                    .revoke(&user)
                    .map(|()| ResponseBody::Empty),
            ),
        ),
        Message::Reset { probe } => Reply::Ready(
            id,
            to_response(scheduler.reset(&probe).map(ResponseBody::UserId)),
        ),
        Message::AuthenticateClaimed { id: user, probe } => Reply::Ready(
            id,
            to_response(
                scheduler
                    .authenticate_claimed(&user, &probe)
                    .map(ResponseBody::Flag),
            ),
        ),
        Message::CheckLocalUniqueness { probe, ids } => Reply::Ready(
            id,
            to_response(
                scheduler
                    .check_local_uniqueness(&probe, &ids)
                    .map(ResponseBody::Flag),
            ),
        ),
        Message::Response(response) => Reply::Ready(
            id,
            to_response(
                scheduler
                    .server()
                    .finish_identification(&response)
                    .map(ResponseBody::Outcome),
            ),
        ),
        Message::Challenge(_) | Message::Outcome(_) => Reply::Ready(
            id,
            Err(WireError::from_protocol(&ProtocolError::Malformed(
                "response-only message sent as a request",
            ))),
        ),
    }
}

fn ticket_result(t: Result<IdentifyTicket, ProtocolError>) -> Result<IdentChallenge, WireError> {
    t.and_then(IdentifyTicket::wait)
        .map_err(|e| WireError::from_protocol(&e))
}

fn writer_loop(
    mut stream: TcpStream,
    rx: mpsc::Receiver<Reply>,
    max_frame: usize,
    metrics: Arc<NetMetrics>,
) {
    for reply in rx {
        let (id, response) = match reply {
            Reply::Ready(id, response) => (id, response),
            Reply::Ticket(id, ticket) => {
                (id, ticket_result(Ok(ticket)).map(ResponseBody::Challenge))
            }
            Reply::Batch(id, tickets) => (
                id,
                Ok(ResponseBody::Batch(
                    tickets.into_iter().map(ticket_result).collect(),
                )),
            ),
        };
        match &response {
            Ok(ResponseBody::Batch(items)) => {
                metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
                let sheds = items
                    .iter()
                    .filter(|r| r.as_ref().is_err_and(WireError::is_overloaded))
                    .count() as u64;
                metrics.shed.fetch_add(sheds, Ordering::Relaxed);
            }
            Ok(_) => {
                metrics.responses_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                metrics.responses_err.fetch_add(1, Ordering::Relaxed);
                if e.is_overloaded() {
                    metrics.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let frame = envelope::encode_response(id, &response);
        if write_frame(&mut stream, &frame, max_frame).is_err() {
            return; // peer gone; reader will notice EOF and wind down
        }
    }
}
