//! Security accounting from Theorem 3 and the false-close analysis of
//! Theorem 2 — the formulas behind the paper's Table II.
//!
//! For a number line with parameters `(a, k, v)` and `n`-dimensional
//! inputs uniform on the line:
//!
//! * min-entropy of the input: `m = n·log₂(kav)`
//! * average min-entropy given the sketch: `m̃ = n·log₂(v)`
//! * entropy loss: `n·log₂(ka)`
//! * sketch storage: `n·log₂(ka + 1)` bits
//! * false-close probability: `Pr[E] < ((2t+1)/ka)^n`

use crate::numberline::NumberLine;
use crate::SketchError;
use serde::{Deserialize, Serialize};

/// Analytic security figures for a sketch configuration.
///
/// ```rust
/// use fe_core::analysis::SketchAnalysis;
/// use fe_core::NumberLine;
///
/// # fn main() -> Result<(), fe_core::SketchError> {
/// // Table II: n = 5000 gives m̃ ≈ 44,829 bits.
/// let line = NumberLine::new(100, 4, 500)?;
/// let analysis = SketchAnalysis::new(line, 100, 5000)?;
/// assert_eq!(analysis.residual_min_entropy_bits().round(), 44829.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchAnalysis {
    line: NumberLine,
    t: u64,
    n: usize,
}

impl SketchAnalysis {
    /// Creates the analysis for dimension `n` and threshold `t`.
    ///
    /// # Errors
    /// [`SketchError::BadParameters`] if `n == 0` or `t >= ka/2`.
    pub fn new(line: NumberLine, t: u64, n: usize) -> Result<SketchAnalysis, SketchError> {
        if n == 0 || t == 0 || t >= line.interval_len() / 2 {
            return Err(SketchError::BadParameters);
        }
        Ok(SketchAnalysis { line, t, n })
    }

    /// The paper's Table II configuration at dimension `n`.
    pub fn paper_defaults(n: usize) -> SketchAnalysis {
        SketchAnalysis::new(
            NumberLine::new(100, 4, 500).expect("paper parameters valid"),
            100,
            n,
        )
        .expect("paper analysis parameters valid")
    }

    /// The number line under analysis.
    pub fn line(&self) -> &NumberLine {
        &self.line
    }

    /// The threshold `t`.
    pub fn threshold(&self) -> u64 {
        self.t
    }

    /// The input dimension `n`.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Input min-entropy `m = n·log₂(kav)` bits (uniform inputs).
    pub fn min_entropy_bits(&self) -> f64 {
        self.n as f64 * (self.line.period() as f64).log2()
    }

    /// Average min-entropy of the input given the sketch:
    /// `m̃ = n·log₂(v)` bits (Theorem 3).
    pub fn residual_min_entropy_bits(&self) -> f64 {
        self.n as f64 * (self.line.v() as f64).log2()
    }

    /// Entropy loss `m − m̃ = n·log₂(ka)` bits.
    pub fn entropy_loss_bits(&self) -> f64 {
        self.n as f64 * (self.line.interval_len() as f64).log2()
    }

    /// Sketch storage `n·log₂(ka + 1)` bits (each movement takes one of
    /// `ka + 1` values in `[-ka/2, ka/2]`).
    pub fn storage_bits(&self) -> f64 {
        self.n as f64 * ((self.line.interval_len() + 1) as f64).log2()
    }

    /// Upper bound on the false-close probability:
    /// `Pr[E] < ((2t+1)/ka)^n` (Theorem 2 discussion).
    ///
    /// Returned as a log₂ to stay representable for large `n`:
    /// `log₂ Pr[E] < n·log₂((2t+1)/ka)`.
    pub fn log2_false_close_bound(&self) -> f64 {
        let ratio = (2 * self.t + 1) as f64 / self.line.interval_len() as f64;
        self.n as f64 * ratio.log2()
    }

    /// The bound as a plain probability (underflows to 0 for large `n` —
    /// use [`Self::log2_false_close_bound`] for reporting).
    pub fn false_close_bound(&self) -> f64 {
        self.log2_false_close_bound().exp2()
    }

    /// The exact false-close probability from the paper:
    /// `Pr[E] = (2t+1)^n (v^n − 1) / (kav)^n`, again as log₂.
    pub fn log2_false_close_exact(&self) -> f64 {
        // log2[(2t+1)^n (v^n - 1) / (kav)^n]
        //   = n·log2(2t+1) + log2(v^n - 1) - n·log2(kav)
        // with log2(v^n - 1) ≈ n·log2(v) for any realistic n·log2(v).
        let n = self.n as f64;
        let log_vn = n * (self.line.v() as f64).log2();
        let log_vn_minus_1 = if log_vn > 50.0 {
            log_vn // v^n - 1 ≈ v^n beyond ~2^50
        } else {
            ((self.line.v() as f64).powf(n) - 1.0).log2()
        };
        n * ((2 * self.t + 1) as f64).log2() + log_vn_minus_1
            - n * (self.line.period() as f64).log2()
    }

    /// Per-coordinate probability that a *random* pair of sketch elements
    /// passes conditions (1)–(4): `(2t+1)/ka`. The expected number of
    /// coordinates examined per non-matching record in the early-abort
    /// scan is `1 / (1 - this)`.
    pub fn coordinate_pass_probability(&self) -> f64 {
        (2 * self.t + 1) as f64 / self.line.interval_len() as f64
    }

    /// Expected coordinates examined per non-matching record in the scan
    /// index (geometric distribution mean).
    pub fn expected_scan_coordinates(&self) -> f64 {
        1.0 / (1.0 - self.coordinate_pass_probability())
    }

    /// Computes the per-coordinate average min-entropy `H̃∞(X|S)` *exactly*
    /// by enumerating the whole line — the quantity Theorem 3 proves to be
    /// `log₂(v)`.
    ///
    /// `H̃∞(X|S) = −log₂ Σ_s max_x Pr[S=s|X=x]·Pr[X=x]`, with `X` uniform
    /// over the `kav` points and `S` the sketch movement (boundary points
    /// split their mass over the two ±ka/2 movements).
    ///
    /// Only feasible for small lines (`kav` up to a few million); used by
    /// the test suite to validate the theorem against the implementation.
    pub fn exhaustive_residual_entropy_per_coordinate(&self) -> f64 {
        let ka = self.line.interval_len() as i64;
        let period = self.line.period() as i64;
        let half = self.line.half_range() as i64;
        let n_points = period as f64;

        // For each possible movement s (index shifted by ka/2), track
        // max_x Pr[S=s|X=x]·Pr[X=x]. Pr[S=s|X=x] is 1 for interior
        // points, ½ for boundary points (coin flip).
        let mut best = vec![0.0f64; (ka + 1) as usize];
        for x in (-half + 1)..=half {
            let r = x.rem_euclid(ka);
            if r == 0 {
                // Boundary: s = ±ka/2, each with probability ½.
                for s in [ka / 2, -ka / 2] {
                    let idx = (s + ka / 2) as usize;
                    let mass = 0.5 / n_points;
                    if mass > best[idx] {
                        best[idx] = mass;
                    }
                }
            } else {
                let s = ka / 2 - r; // deterministic movement
                let idx = (s + ka / 2) as usize;
                let mass = 1.0 / n_points;
                if mass > best[idx] {
                    best[idx] = mass;
                }
            }
        }
        let guess_prob: f64 = best.iter().sum();
        -guess_prob.log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper(n: usize) -> SketchAnalysis {
        SketchAnalysis::paper_defaults(n)
    }

    #[test]
    fn table2_residual_entropy() {
        // m̃ = 5000·log2(500) ≈ 44,829 bits — Table II's "≈ 44,829 bits".
        let got = paper(5000).residual_min_entropy_bits();
        assert!((got - 44_828.9).abs() < 1.0, "m̃ = {got}");
    }

    #[test]
    fn table2_storage() {
        // n·log2(ka+1) = 5000·log2(401) ≈ 43,238 bits (the paper rounds to
        // "≈ 45,000"; see DESIGN.md deviations).
        let got = paper(5000).storage_bits();
        assert!((got - 43_237.7).abs() < 1.0, "storage = {got}");
    }

    #[test]
    fn entropy_decomposition() {
        let a = paper(1000);
        let m = a.min_entropy_bits();
        let m_tilde = a.residual_min_entropy_bits();
        let loss = a.entropy_loss_bits();
        assert!((m - m_tilde - loss).abs() < 1e-6, "m = m̃ + loss must hold");
        // m = n·log2(200000) ≈ 17.6 bits per coordinate.
        assert!((m / 1000.0 - 17.6096).abs() < 0.001);
    }

    #[test]
    fn false_close_bound_paper_params() {
        let a = paper(1000);
        // (2t+1)/ka = 201/400 ≈ 0.5025 → log2 ≈ -0.9928 per coordinate.
        let per_coord = a.log2_false_close_bound() / 1000.0;
        assert!((per_coord - (201f64 / 400.0).log2()).abs() < 1e-9);
        // Bound is astronomically small for n = 1000.
        assert!(a.log2_false_close_bound() < -900.0);
        assert!(a.false_close_bound() < 1e-250);
        // At n = 31000 (the paper's largest dimension) the plain
        // probability does underflow — hence the log form.
        assert_eq!(paper(31_000).false_close_bound(), 0.0);
    }

    #[test]
    fn exact_false_close_below_bound() {
        for n in [1usize, 2, 5, 50, 5000] {
            let a = paper(n);
            assert!(
                a.log2_false_close_exact() <= a.log2_false_close_bound() + 1e-9,
                "exact must not exceed bound at n={n}"
            );
        }
    }

    #[test]
    fn exact_false_close_small_n_matches_formula() {
        // n = 1: Pr[E] = (2t+1)(v-1)/(kav) directly computable.
        let a = SketchAnalysis::new(NumberLine::new(10, 4, 8).unwrap(), 5, 1).unwrap();
        let expect = (11.0 * 7.0) / 320.0;
        let got = a.log2_false_close_exact().exp2();
        assert!((got - expect).abs() < 1e-9, "got {got} want {expect}");
    }

    #[test]
    fn scan_cost_expectation() {
        let a = paper(5000);
        // Pass probability 201/400 = 0.5025 → expected ~2.01 coordinates.
        assert!((a.coordinate_pass_probability() - 0.5025).abs() < 1e-9);
        assert!((a.expected_scan_coordinates() - 2.0100).abs() < 0.001);
    }

    #[test]
    fn validation() {
        let line = NumberLine::new(100, 4, 500).unwrap();
        assert!(SketchAnalysis::new(line, 100, 0).is_err());
        assert!(SketchAnalysis::new(line, 0, 10).is_err());
        assert!(SketchAnalysis::new(line, 200, 10).is_err());
    }

    #[test]
    fn theorem3_exhaustive_small_lines() {
        // Enumerate H̃∞(X|S) exactly and compare with the theorem's
        // log₂(v) across several small configurations.
        for (a, k, v) in [(3u64, 2u64, 5u64), (10, 4, 8), (7, 6, 11), (2, 2, 64)] {
            let line = NumberLine::new(a, k, v).unwrap();
            let analysis = SketchAnalysis::new(line, 1, 1).unwrap();
            let exact = analysis.exhaustive_residual_entropy_per_coordinate();
            let theorem = (v as f64).log2();
            assert!(
                (exact - theorem).abs() < 1e-9,
                "a={a} k={k} v={v}: exhaustive {exact} vs theorem {theorem}"
            );
        }
    }

    #[test]
    fn theorem3_exhaustive_paper_line() {
        // The paper's own line (200,000 points) is still enumerable.
        let analysis = SketchAnalysis::paper_defaults(1);
        let exact = analysis.exhaustive_residual_entropy_per_coordinate();
        assert!((exact - 500f64.log2()).abs() < 1e-9, "got {exact}");
    }
}
