//! Error types for `fe-bigint`.

use std::error::Error;
use std::fmt;

/// Error returned when parsing a [`crate::Natural`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseNaturalError {
    /// The input string was empty.
    Empty,
    /// The input contained a character that is not a valid digit.
    InvalidDigit,
}

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNaturalError::Empty => write!(f, "cannot parse integer from empty string"),
            ParseNaturalError::InvalidDigit => write!(f, "invalid digit found in string"),
        }
    }
}

impl Error for ParseNaturalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ParseNaturalError::Empty.to_string(),
            "cannot parse integer from empty string"
        );
        assert_eq!(
            ParseNaturalError::InvalidDigit.to_string(),
            "invalid digit found in string"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ParseNaturalError>();
    }
}
