//! End-to-end protocol orchestration with timing and operation counts —
//! the measurement harness behind the Fig. 4 and verification-cost
//! benches.

use crate::device::BiometricDevice;
use crate::messages::IdentOutcome;
use crate::normal::{NormalIdentification, NormalStats};
use crate::params::SystemParams;
use crate::server::{AuthenticationServer, BuildIndex};
use crate::ProtocolError;
use fe_core::{ScanIndex, SketchIndex};
use rand::RngCore;
use std::time::{Duration, Instant};

/// Timing and operation counts for one protocol execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentifyStats {
    /// Wall-clock time of the full round trip.
    pub elapsed: Duration,
    /// Device-side `Rep` executions.
    pub rep_attempts: usize,
    /// Signature operations (sign on device + verify on server).
    pub signature_ops: usize,
}

/// Drives complete protocol runs between one device and one server,
/// generic over the server's sketch index (default: the paper's scan).
#[derive(Debug)]
pub struct ProtocolRunner<I: SketchIndex = ScanIndex> {
    device: BiometricDevice,
    server: AuthenticationServer<I>,
}

impl ProtocolRunner<ScanIndex> {
    /// Creates a runner with a fresh scan-index server.
    pub fn new(params: SystemParams) -> Self {
        Self::from_params(params)
    }
}

impl<I: BuildIndex> ProtocolRunner<I> {
    /// Creates a runner whose server index is built from `params` (see
    /// [`BuildIndex`]).
    pub fn from_params(params: SystemParams) -> Self {
        ProtocolRunner {
            device: BiometricDevice::new(params.clone()),
            server: AuthenticationServer::<I>::from_params(params),
        }
    }
}

impl<I: SketchIndex> ProtocolRunner<I> {
    /// The device role.
    pub fn device(&self) -> &BiometricDevice {
        &self.device
    }

    /// The server role.
    pub fn server(&self) -> &AuthenticationServer<I> {
        &self.server
    }

    /// Enrolls a user end to end (Fig. 1).
    ///
    /// # Errors
    /// Propagates device and server enrollment failures.
    pub fn enroll_user<R: RngCore + ?Sized>(
        &mut self,
        id: &str,
        bio: &[i64],
        rng: &mut R,
    ) -> Result<(), ProtocolError> {
        let record = self.device.enroll(id, bio, rng)?;
        self.server.enroll(record)
    }

    /// Runs the proposed identification protocol (Fig. 3), timed.
    ///
    /// # Errors
    /// [`ProtocolError::NoMatch`] when the sketch matches no record.
    pub fn identify<R: RngCore + ?Sized>(
        &mut self,
        bio: &[i64],
        rng: &mut R,
    ) -> Result<(IdentOutcome, IdentifyStats), ProtocolError> {
        let start = Instant::now();
        let probe = self.device.probe_sketch(bio, rng)?;
        let challenge = self.server.begin_identification(&probe, rng)?;
        let response = self.device.respond(bio, &challenge, rng)?;
        let outcome = self.server.finish_identification(&response)?;
        Ok((
            outcome,
            IdentifyStats {
                elapsed: start.elapsed(),
                rep_attempts: 1,
                signature_ops: 2, // one sign + one verify
            },
        ))
    }

    /// Runs the verification-mode protocol (claimed identity), timed.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownUser`] for unenrolled claims; sketch
    /// errors when the reading is too noisy.
    pub fn verify<R: RngCore + ?Sized>(
        &mut self,
        claimed_id: &str,
        bio: &[i64],
        rng: &mut R,
    ) -> Result<(IdentOutcome, IdentifyStats), ProtocolError> {
        let start = Instant::now();
        let challenge = self.server.begin_verification(claimed_id, rng)?;
        let response = self.device.respond(bio, &challenge, rng)?;
        let outcome = self.server.finish_identification(&response)?;
        Ok((
            outcome,
            IdentifyStats {
                elapsed: start.elapsed(),
                rep_attempts: 1,
                signature_ops: 2,
            },
        ))
    }

    /// Runs the normal-approach baseline (Fig. 2), timed.
    ///
    /// # Errors
    /// Propagates protocol failures.
    pub fn identify_normal<R: RngCore + ?Sized>(
        &mut self,
        bio: &[i64],
        rng: &mut R,
    ) -> Result<(IdentOutcome, IdentifyStats, NormalStats), ProtocolError> {
        let normal = NormalIdentification::new(self.server.params().clone());
        let start = Instant::now();
        let (outcome, stats) = normal.identify(&self.server, bio, rng)?;
        Ok((
            outcome,
            IdentifyStats {
                elapsed: start.elapsed(),
                rep_attempts: stats.rep_attempts,
                signature_ops: stats.signatures + stats.verifications,
            },
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn runner_with_users(users: usize, dim: usize) -> (ProtocolRunner, Vec<Vec<i64>>, StdRng) {
        let params = SystemParams::insecure_test_defaults();
        let mut runner = ProtocolRunner::new(params.clone());
        let mut rng = StdRng::seed_from_u64(9_999);
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(dim, &mut rng);
            runner
                .enroll_user(&format!("user-{u}"), &bio, &mut rng)
                .unwrap();
            bios.push(bio);
        }
        (runner, bios, rng)
    }

    #[test]
    fn proposed_path_constant_ops() {
        let (mut runner, bios, mut rng) = runner_with_users(10, 32);
        for bio in &bios {
            let reading: Vec<i64> = bio
                .iter()
                .map(|&x| x + rng.gen_range(-90i64..=90))
                .collect();
            let (outcome, stats) = runner.identify(&reading, &mut rng).unwrap();
            assert!(outcome.is_identified());
            assert_eq!(stats.rep_attempts, 1);
            assert_eq!(stats.signature_ops, 2);
        }
    }

    #[test]
    fn normal_path_linear_ops() {
        let (mut runner, bios, mut rng) = runner_with_users(7, 32);
        let reading: Vec<i64> = bios[6].iter().map(|&x| x - 10).collect();
        let (outcome, stats, normal) = runner.identify_normal(&reading, &mut rng).unwrap();
        assert!(outcome.is_identified());
        assert_eq!(normal.rep_attempts, 7);
        assert!(stats.rep_attempts > 1);
    }

    #[test]
    fn verification_mode_works() {
        let (mut runner, bios, mut rng) = runner_with_users(4, 32);
        let reading: Vec<i64> = bios[2].iter().map(|&x| x + 15).collect();
        let (outcome, stats) = runner.verify("user-2", &reading, &mut rng).unwrap();
        assert_eq!(outcome.identity(), Some("user-2"));
        assert_eq!(stats.rep_attempts, 1);
    }

    #[test]
    fn proposed_and_normal_agree_on_identity() {
        let (mut runner, bios, mut rng) = runner_with_users(6, 24);
        for (u, bio) in bios.iter().enumerate() {
            let reading: Vec<i64> = bio.iter().map(|&x| x + 5).collect();
            let (o1, _) = runner.identify(&reading, &mut rng).unwrap();
            let (o2, _, _) = runner.identify_normal(&reading, &mut rng).unwrap();
            assert_eq!(o1, o2);
            assert_eq!(o1.identity(), Some(format!("user-{u}").as_str()));
        }
    }
}
