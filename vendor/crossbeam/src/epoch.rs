//! Epoch-based reclamation and an atomically swappable `Arc` cell —
//! the offline stand-in for `crossbeam-epoch` / `arc-swap`, reduced to
//! the one publication pattern this workspace needs: a writer installs
//! immutable snapshots into an [`ArcCell`], readers load them without
//! ever taking a lock, and replaced snapshots are freed only once no
//! reader can still be dereferencing them.
//!
//! # How it works
//!
//! A global epoch counter ticks forward on every [`ArcCell::store`].
//! Readers *pin* the current epoch into a per-thread slot before
//! touching the cell's pointer and unpin after upgrading it to a real
//! `Arc` (which from then on keeps the value alive by refcount). A
//! replaced value is tagged with the epoch at which it was unpublished
//! and parked on a retire list; it is dropped only when every pinned
//! slot has advanced strictly past that tag — at which point no reader
//! can still hold the raw pointer without also holding an `Arc`.
//!
//! The safety argument, in the `SeqCst` total order every marked
//! operation participates in:
//!
//! 1. a reader performs `slot.store(E_r)` → `ptr.load()`;
//! 2. a writer performs `ptr.swap(new)` → `tag = EPOCH.fetch_add(1)`;
//! 3. if the reader observed the *old* pointer, its `ptr.load` ordered
//!    before the writer's `ptr.swap`, hence its `slot.store` (and the
//!    `EPOCH.load` feeding it) ordered before the writer's `fetch_add`,
//!    hence `E_r ≤ tag`;
//! 4. reclamation frees a value only when the minimum pinned epoch is
//!    strictly greater than its tag, so the reader above blocks the
//!    free until it unpins — and it unpins only after
//!    `Arc::increment_strong_count` has secured the value.
//!
//! Pinning is wait-free after a thread's first pin (one `SeqCst` load +
//! store each way); the first pin claims one of `PIN_SLOTS` static
//! slots for the thread's lifetime. If every slot is taken, surplus
//! threads share a mutex-guarded overflow slot — correctness is
//! unaffected, those threads merely serialize their pin bookkeeping.

// The sanctioned exception to the crate-level `deny(unsafe_code)`: the
// raw-pointer ⇄ `Arc` round-trips at the heart of any epoch scheme.
// Every `unsafe` block cites the invariant that justifies it.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of static per-thread pin slots. Threads beyond this many
/// concurrent *pinning* threads fall back to the shared overflow slot.
const PIN_SLOTS: usize = 128;

/// Global epoch. Starts at 1 so a slot value of 0 always means "idle".
static EPOCH: AtomicU64 = AtomicU64::new(1);

/// Per-thread pin slots: 0 = idle, otherwise the epoch the thread was
/// pinned at.
static SLOTS: [AtomicU64; PIN_SLOTS] = [const { AtomicU64::new(0) }; PIN_SLOTS];

/// Slot ownership claims (a thread owns its slot until it exits).
static CLAIMS: [AtomicUsize; PIN_SLOTS] = [const { AtomicUsize::new(0) }; PIN_SLOTS];

/// Pin bookkeeping for threads that could not claim a private slot.
static OVERFLOW: Mutex<OverflowPins> = Mutex::new(OverflowPins {
    count: 0,
    epoch: u64::MAX,
});

struct OverflowPins {
    /// Number of overflow threads currently pinned.
    count: usize,
    /// The *oldest* epoch any of them pinned at (`u64::MAX` when none).
    epoch: u64,
}

/// Which pin slot this thread uses, with reentrancy depth (nested pins
/// keep the outermost epoch, so a pin inside a pinned scope is free).
struct ThreadPin {
    slot: Option<usize>,
    depth: Cell<usize>,
}

impl ThreadPin {
    fn claim() -> ThreadPin {
        let mut slot = None;
        for (i, claim) in CLAIMS.iter().enumerate() {
            if claim
                .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                slot = Some(i);
                break;
            }
        }
        ThreadPin {
            slot,
            depth: Cell::new(0),
        }
    }
}

impl Drop for ThreadPin {
    fn drop(&mut self) {
        if let Some(i) = self.slot {
            SLOTS[i].store(0, Ordering::SeqCst);
            CLAIMS[i].store(0, Ordering::SeqCst);
        }
    }
}

thread_local! {
    static THREAD_PIN: ThreadPin = ThreadPin::claim();
}

/// The smallest epoch any thread is currently pinned at (`u64::MAX`
/// when no thread is pinned). Values retired at a strictly smaller
/// epoch are unreachable.
fn min_pinned() -> u64 {
    let mut min = u64::MAX;
    for slot in &SLOTS {
        let e = slot.load(Ordering::SeqCst);
        if e != 0 {
            min = min.min(e);
        }
    }
    let overflow = OVERFLOW.lock().expect("overflow pin state poisoned");
    if overflow.count > 0 {
        min = min.min(overflow.epoch);
    }
    min
}

/// An RAII epoch pin: while alive, no value retired at or after the
/// pinned epoch is reclaimed. Created by [`pin`]; not `Send` (it must
/// unpin on the thread that pinned).
pub struct PinGuard {
    slot: Option<usize>,
    // !Send + !Sync: the guard manipulates this thread's slot.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Pins the current thread to the current epoch. Reentrant: nested
/// pins are free and keep the outermost epoch.
pub fn pin() -> PinGuard {
    THREAD_PIN.with(|tp| {
        let depth = tp.depth.get();
        tp.depth.set(depth + 1);
        if depth == 0 {
            match tp.slot {
                Some(i) => SLOTS[i].store(EPOCH.load(Ordering::SeqCst), Ordering::SeqCst),
                None => {
                    let mut overflow = OVERFLOW.lock().expect("overflow pin state poisoned");
                    if overflow.count == 0 {
                        overflow.epoch = EPOCH.load(Ordering::SeqCst);
                    }
                    overflow.count += 1;
                }
            }
        }
        PinGuard {
            slot: tp.slot,
            _not_send: std::marker::PhantomData,
        }
    })
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        // Unpin only when the *last* live guard on this thread drops —
        // guards may drop in any order, so the decision is keyed off
        // the reentrancy depth, not off which guard was created first.
        let last = THREAD_PIN.with(|tp| {
            let depth = tp.depth.get() - 1;
            tp.depth.set(depth);
            depth == 0
        });
        if !last {
            return;
        }
        match self.slot {
            Some(i) => SLOTS[i].store(0, Ordering::SeqCst),
            None => {
                let mut overflow = OVERFLOW.lock().expect("overflow pin state poisoned");
                overflow.count -= 1;
                if overflow.count == 0 {
                    overflow.epoch = u64::MAX;
                }
            }
        }
    }
}

/// A value replaced out of an [`ArcCell`], parked until the epoch
/// passes its tag.
struct Retired<T> {
    tag: u64,
    ptr: *const T,
}

// SAFETY: the raw pointer is an `Arc<T>` payload pointer owned by the
// retire list (one strong count is dedicated to it); it is only ever
// turned back into an `Arc` — and dropped — under the cell's writer
// mutex. `T: Send + Sync` makes cross-thread drop sound.
unsafe impl<T: Send + Sync> Send for Retired<T> {}

/// Writer-side state: the retire list, behind the mutex that also
/// serializes all `store`s.
struct WriterState<T> {
    retired: Vec<Retired<T>>,
}

/// A lock-free-readable, atomically swappable `Arc<T>` slot.
///
/// [`ArcCell::load`] never blocks and never takes a lock: it pins the
/// epoch, reads the current pointer, bumps the refcount, and unpins.
/// [`ArcCell::store`] (serialized by an internal mutex) publishes a new
/// value, retires the old one, and reclaims any retired value no
/// pinned reader can still see.
///
/// ```rust
/// use crossbeam::epoch::ArcCell;
/// use std::sync::Arc;
///
/// let cell = ArcCell::new(Arc::new(vec![1, 2, 3]));
/// assert_eq!(*cell.load(), vec![1, 2, 3]);
/// cell.store(Arc::new(vec![4]));
/// assert_eq!(*cell.load(), vec![4]);
/// ```
pub struct ArcCell<T: Send + Sync> {
    ptr: AtomicPtr<T>,
    writer: Mutex<WriterState<T>>,
}

impl<T: Send + Sync> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> ArcCell<T> {
        ArcCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            writer: Mutex::new(WriterState {
                retired: Vec::new(),
            }),
        }
    }

    /// Loads the current value without blocking (the lock-free read
    /// path). The returned `Arc` stays valid regardless of subsequent
    /// [`ArcCell::store`]s.
    pub fn load(&self) -> Arc<T> {
        let guard = pin();
        let ptr = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and cannot have been
        // reclaimed: reclamation requires every pinned epoch to exceed
        // the retire tag, and this thread pinned *before* loading the
        // pointer (see the module-level ordering argument), so as long
        // as `guard` lives the value is alive. The increment secures a
        // strong reference before the pin is released.
        unsafe { Arc::increment_strong_count(ptr) };
        drop(guard);
        // SAFETY: the strong count incremented above is handed to the
        // returned `Arc`.
        unsafe { Arc::from_raw(ptr) }
    }

    /// Publishes `value`, retiring the previous one. Stores are
    /// serialized by an internal mutex (single-writer by design);
    /// readers are never blocked.
    pub fn store(&self, value: Arc<T>) {
        let mut writer = self.writer.lock().expect("ArcCell writer poisoned");
        let old = self
            .ptr
            .swap(Arc::into_raw(value).cast_mut(), Ordering::SeqCst);
        let tag = EPOCH.fetch_add(1, Ordering::SeqCst);
        writer.retired.push(Retired { tag, ptr: old });
        Self::reclaim(&mut writer);
    }

    /// Drops every retired value whose tag every pinned reader has
    /// strictly passed.
    fn reclaim(writer: &mut WriterState<T>) {
        let min = min_pinned();
        writer.retired.retain(|r| {
            if r.tag < min {
                // SAFETY: tag < min_pinned means no reader pinned at or
                // before the swap that unpublished this pointer is
                // still pinned; any thread that loaded it has either
                // secured an `Arc` (refcount) or unpinned without
                // using it. Reconstituting the `Arc` drops the strong
                // count the retire list owned.
                drop(unsafe { Arc::from_raw(r.ptr) });
                false
            } else {
                true
            }
        });
    }

    /// Attempts to reclaim retired values now (writer-side maintenance;
    /// also runs on every [`ArcCell::store`]). Returns how many retired
    /// values remain parked.
    pub fn collect(&self) -> usize {
        let mut writer = self.writer.lock().expect("ArcCell writer poisoned");
        Self::reclaim(&mut writer);
        writer.retired.len()
    }

    /// Number of replaced values awaiting reclamation — the epoch
    /// garbage list length (memory-accounting hook).
    pub fn retired_len(&self) -> usize {
        self.writer
            .lock()
            .expect("ArcCell writer poisoned")
            .retired
            .len()
    }
}

impl<T: Send + Sync> Drop for ArcCell<T> {
    fn drop(&mut self) {
        let writer = self.writer.get_mut().expect("ArcCell writer poisoned");
        for r in writer.retired.drain(..) {
            // SAFETY: exclusive access (`&mut self`): no reader can be
            // mid-load on this cell, so the retire list's strong counts
            // can be released unconditionally.
            drop(unsafe { Arc::from_raw(r.ptr) });
        }
        // SAFETY: same exclusivity; the cell owns one strong count for
        // the currently published value.
        drop(unsafe { Arc::from_raw(self.ptr.load(Ordering::SeqCst)) });
    }
}

impl<T: Send + Sync + std::fmt::Debug> std::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcCell")
            .field("value", &self.load())
            .field("retired", &self.retired_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// Serializes the tests that assert on reclamation counts: pins
    /// and the epoch are process-global, so a concurrently pinned
    /// sibling test would legitimately park reclamation.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serialize() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Counts drops so reclamation is observable.
    struct DropProbe(Arc<AtomicUsize>);
    impl Drop for DropProbe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let cell = ArcCell::new(Arc::new(7u64));
        assert_eq!(*cell.load(), 7);
        cell.store(Arc::new(8));
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn replaced_values_are_dropped_once_unpinned() {
        let _serial = serialize();
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcCell::new(Arc::new(DropProbe(Arc::clone(&drops))));
        {
            let _pinned = pin();
            cell.store(Arc::new(DropProbe(Arc::clone(&drops))));
            // The pin (taken before the store) blocks reclamation.
            assert_eq!(drops.load(Ordering::SeqCst), 0);
            assert_eq!(cell.retired_len(), 1);
        }
        cell.collect();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(cell.retired_len(), 0);
    }

    #[test]
    fn nested_pins_keep_outermost_epoch() {
        let _serial = serialize();
        let outer = pin();
        let inner = pin();
        drop(outer);
        // Still pinned (inner guard active): a store must park.
        let cell = ArcCell::new(Arc::new(1u8));
        cell.store(Arc::new(2));
        assert_eq!(cell.retired_len(), 1);
        drop(inner);
        assert_eq!(cell.collect(), 0);
    }

    #[test]
    fn loads_see_only_published_values_under_churn() {
        let _serial = serialize();
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = *cell.load();
                    assert!(v >= last, "loads went backwards: {last} -> {v}");
                    last = v;
                }
            }));
        }
        for i in 1..=1000u64 {
            cell.store(Arc::new(i));
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("reader panicked");
        }
        assert_eq!(*cell.load(), 1000);
        // All readers exited and unpinned: everything reclaims.
        assert_eq!(cell.collect(), 0);
    }

    #[test]
    fn dropping_the_cell_frees_current_and_retired() {
        let _serial = serialize();
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcCell::new(Arc::new(DropProbe(Arc::clone(&drops))));
        let _pinned = pin();
        cell.store(Arc::new(DropProbe(Arc::clone(&drops))));
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }
}
