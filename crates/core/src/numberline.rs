//! The number line `La` of Definition 4: a discretized ring partitioned
//! into `v` intervals of `k` units of length `a`.

use crate::SketchError;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The number line `La` with parameters `(a, k, v)`.
///
/// Points are the integers in the canonical range `(-kav/2, kav/2]`; the
/// line wraps around (Sec. IV-B, special case 2: "`La` can be considered
/// as a ring"). Interval boundaries sit at multiples of `ka`; each
/// interval's *identifier* is its midpoint, at `ka/2` past the boundary.
///
/// ```rust
/// use fe_core::NumberLine;
///
/// # fn main() -> Result<(), fe_core::SketchError> {
/// let line = NumberLine::new(100, 4, 500)?; // the paper's Table II line
/// assert_eq!(line.interval_len(), 400);
/// assert_eq!(line.period(), 200_000);
/// assert_eq!(line.half_range(), 100_000);
/// assert_eq!(line.identifier_of(250), 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NumberLine {
    a: u64,
    k: u64,
    v: u64,
}

impl NumberLine {
    /// Creates a number line.
    ///
    /// # Errors
    /// [`SketchError::BadParameters`] unless `a >= 1`, `k` is even and
    /// `>= 2`, `v >= 2`, and the period `k·a·v` fits comfortably in `i64`
    /// (below `2^62`, leaving headroom for wrap arithmetic).
    pub fn new(a: u64, k: u64, v: u64) -> Result<NumberLine, SketchError> {
        if a == 0 || k < 2 || !k.is_multiple_of(2) || v < 2 {
            return Err(SketchError::BadParameters);
        }
        let period = a
            .checked_mul(k)
            .and_then(|ka| ka.checked_mul(v))
            .ok_or(SketchError::BadParameters)?;
        if period >= (1u64 << 62) {
            return Err(SketchError::BadParameters);
        }
        Ok(NumberLine { a, k, v })
    }

    /// The unit length `a`.
    pub fn a(&self) -> u64 {
        self.a
    }

    /// Units per interval `k` (even, `>= 2`).
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Number of intervals `v`.
    pub fn v(&self) -> u64 {
        self.v
    }

    /// Interval length `ka`.
    pub fn interval_len(&self) -> u64 {
        self.k * self.a
    }

    /// Ring circumference `kav` (the number of points on the line).
    pub fn period(&self) -> u64 {
        self.k * self.a * self.v
    }

    /// Half the range, `kav/2`: points live in `(-kav/2, kav/2]`.
    pub fn half_range(&self) -> u64 {
        self.period() / 2
    }

    /// Maximum legal sketch threshold: `t` must satisfy `t < ka/2`.
    pub fn max_threshold(&self) -> u64 {
        self.interval_len() / 2 - 1
    }

    /// Wraps any integer onto the canonical range `(-kav/2, kav/2]`.
    pub fn wrap(&self, x: i64) -> i64 {
        let period = self.period() as i64;
        let half = self.half_range() as i64;
        let mut r = x.rem_euclid(period); // [0, period)
        if r > half {
            r -= period;
        }
        r
    }

    /// `true` if `x` is already canonical.
    pub fn contains(&self, x: i64) -> bool {
        let half = self.half_range() as i64;
        x > -half && x <= half
    }

    /// `true` if `x` sits on an interval boundary (an "even point" in the
    /// paper's terms — it belongs to no interval and triggers the coin
    /// flip in `SS`).
    pub fn is_boundary(&self, x: i64) -> bool {
        x.rem_euclid(self.interval_len() as i64) == 0
    }

    /// The identifier (midpoint) of the interval containing `x`.
    ///
    /// For boundary points, which belong to no interval, this returns the
    /// identifier of the interval to the *right*; callers that need the
    /// paper's coin-flip semantics handle boundaries separately.
    pub fn identifier_of(&self, x: i64) -> i64 {
        let ka = self.interval_len() as i64;
        let r = x.rem_euclid(ka); // [0, ka)
        self.wrap(x - r + ka / 2)
    }

    /// Distance from `x` to the identifier of its interval (cyclic,
    /// `<= ka/2`).
    pub fn distance_to_identifier(&self, x: i64) -> u64 {
        let ka = self.interval_len() as i64;
        let r = x.rem_euclid(ka); // [0, ka)
        (r - ka / 2).unsigned_abs()
    }

    /// Cyclic distance between two points on the ring.
    pub fn cyclic_distance(&self, x: i64, y: i64) -> u64 {
        let period = self.period();
        let diff = x.abs_diff(y) % period;
        diff.min(period - diff)
    }

    /// Chebyshev distance between two vectors *on the ring* (maximum of
    /// per-coordinate cyclic distances).
    ///
    /// # Panics
    /// Panics if the vectors have different lengths.
    pub fn chebyshev_distance(&self, x: &[i64], y: &[i64]) -> u64 {
        assert_eq!(x.len(), y.len(), "dimension mismatch");
        x.iter()
            .zip(y.iter())
            .map(|(&a, &b)| self.cyclic_distance(a, b))
            .max()
            .unwrap_or(0)
    }

    /// Draws one uniform point from the canonical range.
    pub fn random_point<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        let half = self.half_range() as i64;
        rng.gen_range((-half + 1)..=half)
    }

    /// Draws an `n`-dimensional uniform vector (a synthetic biometric
    /// encoding in the paper's experiments).
    pub fn random_vector<R: RngCore + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<i64> {
        (0..n).map(|_| self.random_point(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_line() -> NumberLine {
        NumberLine::new(100, 4, 500).unwrap()
    }

    #[test]
    fn paper_parameters() {
        let l = paper_line();
        assert_eq!(l.interval_len(), 400);
        assert_eq!(l.period(), 200_000);
        assert_eq!(l.half_range(), 100_000);
        assert_eq!(l.max_threshold(), 199);
    }

    #[test]
    fn parameter_validation() {
        assert!(NumberLine::new(0, 4, 500).is_err()); // a = 0
        assert!(NumberLine::new(100, 3, 500).is_err()); // k odd
        assert!(NumberLine::new(100, 0, 500).is_err()); // k < 2
        assert!(NumberLine::new(100, 4, 1).is_err()); // v < 2
        assert!(NumberLine::new(u64::MAX / 2, 4, 500).is_err()); // overflow
        assert!(NumberLine::new(1, 2, 2).is_ok()); // minimal legal line
    }

    #[test]
    fn wrap_canonical_range() {
        let l = paper_line();
        assert_eq!(l.wrap(0), 0);
        assert_eq!(l.wrap(100_000), 100_000);
        assert_eq!(l.wrap(-100_000), 100_000); // the two ends are the same point
        assert_eq!(l.wrap(100_001), -99_999);
        assert_eq!(l.wrap(200_000), 0);
        assert_eq!(l.wrap(-200_000), 0);
        assert_eq!(l.wrap(399_999), -1);
    }

    #[test]
    fn wrap_is_idempotent() {
        let l = paper_line();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let x = l.random_point(&mut rng);
            assert!(l.contains(x));
            assert_eq!(l.wrap(x), x);
        }
    }

    #[test]
    fn wrap_preserves_congruence() {
        let l = paper_line();
        for x in [-500_000i64, -123, 0, 7, 99_999, 100_001, 654_321] {
            let w = l.wrap(x);
            assert!(l.contains(w), "{x} wrapped to non-canonical {w}");
            assert_eq!(
                (x - w).rem_euclid(l.period() as i64),
                0,
                "wrap changed the residue of {x}"
            );
        }
    }

    #[test]
    fn boundaries_and_identifiers() {
        let l = paper_line();
        assert!(l.is_boundary(0));
        assert!(l.is_boundary(400));
        assert!(l.is_boundary(-400));
        assert!(!l.is_boundary(200));
        assert_eq!(l.identifier_of(1), 200);
        assert_eq!(l.identifier_of(399), 200);
        assert_eq!(l.identifier_of(401), 600);
        assert_eq!(l.identifier_of(-1), -200);
        assert_eq!(l.identifier_of(-399), -200);
    }

    #[test]
    fn identifier_distance() {
        let l = paper_line();
        assert_eq!(l.distance_to_identifier(200), 0); // at an identifier
        assert_eq!(l.distance_to_identifier(201), 1);
        assert_eq!(l.distance_to_identifier(399), 199);
        assert_eq!(l.distance_to_identifier(0), 200); // boundary: max distance
    }

    #[test]
    fn cyclic_distance_examples() {
        let l = paper_line();
        assert_eq!(l.cyclic_distance(99_999, -99_999), 2); // across the seam
        assert_eq!(l.cyclic_distance(0, 100_000), 100_000); // antipodal
        assert_eq!(l.cyclic_distance(-50, 50), 100);
    }

    #[test]
    fn chebyshev_vector_distance() {
        let l = paper_line();
        let d = l.chebyshev_distance(&[99_999, 0], &[-99_999, 30]);
        assert_eq!(d, 30);
    }

    #[test]
    fn random_vectors_canonical() {
        let l = paper_line();
        let mut rng = StdRng::seed_from_u64(11);
        let v = l.random_vector(1000, &mut rng);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| l.contains(x)));
        // Should cover a wide range.
        let min = *v.iter().min().unwrap();
        let max = *v.iter().max().unwrap();
        assert!(min < -50_000 && max > 50_000);
    }
}
