//! Durability and crash-recovery tests: a server journaled to disk,
//! killed at arbitrary points, and rebuilt via `recover()` must answer
//! identification queries exactly like the never-restarted original.

use fuzzy_id::core::{EpochIndex, ScanIndex};
use fuzzy_id::protocol::concurrent::SharedServer;
use fuzzy_id::protocol::store::{EnrollmentStore, FileStore, LogEventRef, MemoryStore};
use fuzzy_id::protocol::{
    AuthenticationServer, BiometricDevice, EnrollmentRecord, IndexConfig, ProtocolError,
    SystemParams,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per test case (proptest cases included).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fe-persistence-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Synthesizes an enrollment record with a *real* sketch but borrowed
/// public-key bytes — index/lookup behavior is identical to a real
/// enrollment, and no per-user DSA keygen is needed.
fn synthetic_record(
    params: &SystemParams,
    donor_pk: &[u8],
    id: &str,
    dim: usize,
    rng: &mut StdRng,
) -> (EnrollmentRecord, Vec<i64>) {
    use fuzzy_id::core::SecureSketch;
    let bio = params.sketch().line().random_vector(dim, rng);
    let sketch = params.sketch().sketch(&bio, rng).unwrap();
    let mut tag = vec![0u8; 32];
    rng.fill_bytes(&mut tag);
    let mut seed = vec![0u8; 16];
    rng.fill_bytes(&mut seed);
    let record = EnrollmentRecord {
        id: id.to_string(),
        public_key: donor_pk.to_vec(),
        helper: fuzzy_id::core::HelperData {
            sketch: fuzzy_id::core::RobustData { inner: sketch, tag },
            seed,
        },
    };
    (record, bio)
}

/// A genuine probe for an enrolled biometric: a fresh sketch of a
/// reading within Chebyshev distance `t`.
fn genuine_probe(params: &SystemParams, bio: &[i64], rng: &mut StdRng) -> Vec<i64> {
    use fuzzy_id::core::SecureSketch;
    let t = params.sketch().threshold() as i64;
    let reading: Vec<i64> = bio
        .iter()
        .map(|&x| params.sketch().line().wrap(x + rng.gen_range(-t..=t)))
        .collect();
    params.sketch().sketch(&reading, rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recovery equivalence (single server): after a random
    /// enroll/revoke history — optionally with a checkpoint in the
    /// middle — a server rebuilt from the on-disk store answers
    /// `lookup_probe` and `lookup_probe_batch` identically to the
    /// never-restarted original.
    #[test]
    fn recovered_server_answers_lookups_identically(
        users in 1usize..24,
        dim in 1usize..8,
        seed in any::<u64>(),
        removal_mask in any::<u32>(),
        checkpoint_mid in any::<bool>(),
    ) {
        let dir = scratch_dir("equiv-single");
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let donor = {
            let bio = params.sketch().line().random_vector(4, &mut rng);
            device.enroll("donor", &bio, &mut rng).unwrap().public_key
        };

        let mut original: AuthenticationServer =
            AuthenticationServer::recover(params.clone(), &dir).unwrap();
        let mut bios = Vec::new();
        for u in 0..users {
            let (record, bio) =
                synthetic_record(&params, &donor, &format!("user-{u}"), dim, &mut rng);
            original.enroll(record).unwrap();
            bios.push(bio);
        }
        // Random revocations; a mid-history checkpoint exercises the
        // snapshot + journal-tail replay path (and slot renumbering).
        for u in 0..users.min(16) {
            if removal_mask & (1 << u) != 0 {
                original.revoke(&format!("user-{u}")).unwrap();
            }
            if checkpoint_mid && u == users / 2 {
                original.checkpoint().unwrap();
            }
        }
        for u in 16..users {
            if removal_mask & (1 << (u % 16)) != 0 {
                // Second wave reuses mask bits; ignore already-revoked.
                let _ = original.revoke(&format!("user-{u}"));
            }
        }

        // Probes: one genuine per enrolled user + a few impostors.
        let mut probes: Vec<Vec<i64>> = bios
            .iter()
            .map(|bio| genuine_probe(&params, bio, &mut rng))
            .collect();
        for _ in 0..4 {
            let stranger = params.sketch().line().random_vector(dim, &mut rng);
            probes.push(genuine_probe(&params, &stranger, &mut rng));
        }
        // Capture the never-restarted server's answers, then "kill" it
        // (dropping releases the store lock; the on-disk state is
        // exactly what a SIGKILL would leave, since every append is
        // flushed before enroll/revoke returns).
        let expected_users = original.user_count();
        let expected_single: Vec<Option<usize>> =
            probes.iter().map(|p| original.lookup_probe(p)).collect();
        let expected_batch = original.lookup_probe_batch(&probes);
        drop(original);

        // Rebuild — into a *sharded* index config to prove recovery is
        // index-portable.
        let rebuilt = AuthenticationServer::<fuzzy_id::core::ShardedIndex<ScanIndex>>::recover(
            params
                .clone()
                .with_index_config(IndexConfig::ShardedScan { shards: 3 }),
            &dir,
        )
        .unwrap();

        prop_assert_eq!(expected_users, rebuilt.user_count());
        for (probe, expected) in probes.iter().zip(&expected_single) {
            prop_assert_eq!(*expected, rebuilt.lookup_probe(probe));
        }
        prop_assert_eq!(expected_batch, rebuilt.lookup_probe_batch(&probes));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Replay through a `MemoryStore` behaves exactly like the
    /// file-backed path: `recover_with_store` rebuilds the same
    /// population a straight re-application of the events would.
    #[test]
    fn memory_store_replay_matches_direct_application(
        users in 1usize..16,
        seed in any::<u64>(),
        removal_mask in any::<u16>(),
    ) {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let donor = {
            let bio = params.sketch().line().random_vector(4, &mut rng);
            device.enroll("donor", &bio, &mut rng).unwrap().public_key
        };

        let mut store = MemoryStore::new();
        let mut direct = AuthenticationServer::new(params.clone());
        for u in 0..users {
            let (record, _) =
                synthetic_record(&params, &donor, &format!("user-{u}"), 4, &mut rng);
            store.append(LogEventRef::Enroll(&record)).unwrap();
            direct.enroll(record).unwrap();
            if removal_mask & (1 << u) != 0 {
                store
                    .append(LogEventRef::Revoke(&format!("user-{u}")))
                    .unwrap();
                direct.revoke(&format!("user-{u}")).unwrap();
            }
        }
        let replayed: AuthenticationServer =
            AuthenticationServer::recover_with_store(params.clone(), Box::new(store)).unwrap();
        prop_assert_eq!(direct.user_count(), replayed.user_count());
        prop_assert_eq!(direct.record_slots(), replayed.record_slots());
        for _ in 0..8 {
            let probe = params.sketch().line().random_vector(4, &mut rng);
            prop_assert_eq!(direct.lookup_probe(&probe), replayed.lookup_probe(&probe));
        }
    }
}

/// The acceptance scenario: a `SharedServer` journaled to disk, "killed"
/// after N enrollments + M revocations (no checkpoint — everything lives
/// in the journal tails), recovered via `recover(path)`, and checked for
/// identical identification behavior against the unrestarted original.
#[test]
fn sharded_server_recovery_equivalence() {
    let dir = scratch_dir("equiv-sharded");
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x5AFE);

    let original = SharedServer::<EpochIndex>::durable(params.clone(), 3, &dir).unwrap();

    // N = 40 enrollments: 36 synthetic + 4 real (full-crypto) users.
    let donor = {
        let bio = params.sketch().line().random_vector(4, &mut rng);
        device.enroll("donor-x", &bio, &mut rng).unwrap().public_key
    };
    let mut bios = Vec::new();
    for u in 0..40 {
        if u % 10 == 0 {
            let bio = params.sketch().line().random_vector(24, &mut rng);
            original
                .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
                .unwrap();
            bios.push(bio);
        } else {
            let (record, bio) =
                synthetic_record(&params, &donor, &format!("user-{u}"), 24, &mut rng);
            original.enroll(record).unwrap();
            bios.push(bio);
        }
    }
    // M = 12 revocations (none of the full-crypto users 0/10/20/30).
    for u in [1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13] {
        original.revoke(&format!("user-{u}")).unwrap();
    }
    assert_eq!(original.user_count(), 28);
    assert_eq!(original.journal_len(), 52);

    // Equivalence over a probe batch covering everyone + impostors: the
    // same probes must match (Ok vs NoMatch pattern) and each matched
    // challenge must carry the same record's helper data. Capture the
    // never-restarted server's answers first…
    let mut probes: Vec<Vec<i64>> = bios
        .iter()
        .map(|bio| genuine_probe(&params, bio, &mut rng))
        .collect();
    for _ in 0..6 {
        let stranger = params.sketch().line().random_vector(24, &mut rng);
        probes.push(genuine_probe(&params, &stranger, &mut rng));
    }
    let a = original.identify_batch(&probes, &mut rng);

    // …then kill + recover: dropping releases the per-shard store locks
    // without any shutdown path, and the journal tails on disk are
    // exactly the state a SIGKILL would leave (appends are flushed
    // before each call returns).
    drop(original);
    let recovered = SharedServer::<EpochIndex>::recover(params.clone(), &dir).unwrap();
    assert_eq!(recovered.num_shards(), 3);
    assert_eq!(recovered.user_count(), 28);

    let b = recovered.identify_batch(&probes, &mut rng);
    assert_eq!(a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        match (ra, rb) {
            (Ok(ca), Ok(cb)) => {
                assert_eq!(ca.helper, cb.helper, "probe {i} matched different records");
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb, "probe {i}"),
            other => panic!("probe {i}: divergent outcomes {other:?}"),
        }
    }

    // The real users complete the full protocol against the recovered
    // server (fresh probes: the batch above consumed their sessions).
    for u in [0usize, 10, 20, 30] {
        use fuzzy_id::core::SecureSketch;
        let t = params.sketch().threshold() as i64;
        let reading: Vec<i64> = bios[u]
            .iter()
            .map(|&x| params.sketch().line().wrap(x + rng.gen_range(-t..=t)))
            .collect();
        let probe = params.sketch().sketch(&reading, &mut rng).unwrap();
        let chal = recovered.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            recovered.finish_identification(&resp).unwrap().identity(),
            Some(format!("user-{u}").as_str()),
            "real user {u} must survive recovery end-to-end"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill mid-journal-write: the torn final record is dropped, every
/// previously acknowledged enrollment survives, and the full protocol
/// (challenge + signature) still works after recovery.
#[test]
fn torn_tail_crash_recovery_end_to_end() {
    let dir = scratch_dir("torn-tail");
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0xDEAD);

    let mut server: AuthenticationServer =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    let mut bios = Vec::new();
    for u in 0..5 {
        let bio = params.sketch().line().random_vector(24, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }
    drop(server);

    // Tear the tail: the last enrollment's frame loses its final bytes,
    // as if the process died inside the write().
    let journal = dir.join("journal.fel");
    let len = std::fs::metadata(&journal).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&journal)
        .unwrap();
    file.set_len(len - 11).unwrap();
    drop(file);

    let mut server: AuthenticationServer =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    assert_eq!(server.user_count(), 4, "torn user-4 must be dropped");

    // Survivors identify end-to-end.
    for (u, bio) in bios.iter().take(4).enumerate() {
        let reading: Vec<i64> = bio.iter().map(|&x| x + 57).collect();
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap().identity(),
            Some(format!("user-{u}").as_str())
        );
    }
    // The torn user is gone — and can re-enroll cleanly.
    let reading: Vec<i64> = bios[4].iter().map(|&x| x + 57).collect();
    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
    assert_eq!(
        server.begin_identification(&probe, &mut rng).unwrap_err(),
        ProtocolError::NoMatch
    );
    server
        .enroll(device.enroll("user-4", &bios[4], &mut rng).unwrap())
        .unwrap();
    assert_eq!(server.user_count(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash between snapshot commit and journal reset: the journal tail
/// duplicates snapshot contents; idempotent replay must not double-count.
#[test]
fn snapshot_journal_overlap_replays_idempotently() {
    let dir = scratch_dir("overlap");
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x0F0F);
    let donor = {
        let bio = params.sketch().line().random_vector(4, &mut rng);
        device.enroll("donor", &bio, &mut rng).unwrap().public_key
    };

    // Build a store whose journal holds the same enrollments the
    // snapshot holds (what a crash between rename and journal reset
    // leaves behind).
    let mut store = FileStore::open(&dir, params.fingerprint()).unwrap();
    let mut records = Vec::new();
    for u in 0..6 {
        let (record, _) = synthetic_record(&params, &donor, &format!("user-{u}"), 6, &mut rng);
        store.append(LogEventRef::Enroll(&record)).unwrap();
        records.push(record);
    }
    drop(store);
    // Hand-write the snapshot while leaving the journal untouched.
    let mut store = FileStore::open(&dir, params.fingerprint()).unwrap();
    let journal_bytes = std::fs::read(dir.join("journal.fel")).unwrap();
    store.compact_records(&records).unwrap();
    std::fs::write(dir.join("journal.fel"), &journal_bytes).unwrap();
    drop(store);

    let server: AuthenticationServer = AuthenticationServer::recover(params.clone(), &dir).unwrap();
    assert_eq!(server.user_count(), 6, "overlap must not duplicate users");
    assert_eq!(server.record_slots(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Checkpoint + churn keeps the on-disk footprint and in-memory tables
/// bounded by the live population on the durable sharded server.
#[test]
fn shared_server_churn_with_checkpoints_stays_bounded() {
    let dir = scratch_dir("churn");
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0xC1C1);
    let donor = {
        let bio = params.sketch().line().random_vector(4, &mut rng);
        device.enroll("donor", &bio, &mut rng).unwrap().public_key
    };

    let server = SharedServer::<EpochIndex>::durable(params.clone(), 2, &dir).unwrap();
    // A persistent base population…
    for u in 0..5 {
        let (record, _) = synthetic_record(&params, &donor, &format!("base-{u}"), 8, &mut rng);
        server.enroll(record).unwrap();
    }
    // …plus heavy transient churn, checkpointing every few rounds.
    for round in 0..25 {
        let (record, _) = synthetic_record(&params, &donor, &format!("tmp-{round}"), 8, &mut rng);
        server.enroll(record).unwrap();
        server.revoke(&format!("tmp-{round}")).unwrap();
        if round % 5 == 4 {
            server.checkpoint().unwrap();
            assert_eq!(server.journal_len(), 0);
        }
    }
    server.checkpoint().unwrap();
    assert_eq!(server.user_count(), 5);

    // Recover and confirm the snapshot holds exactly the live records.
    drop(server);
    let recovered = SharedServer::<EpochIndex>::recover(params.clone(), &dir).unwrap();
    assert_eq!(recovered.user_count(), 5);
    assert_eq!(recovered.journal_len(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Columnar round-trip: enroll (+ random revocations) → checkpoint
    /// → recover — which bulk-loads the snapshot into a pre-sized
    /// arena — → `identify_batch` issues challenges for exactly the
    /// same probes, resolving to the same enrolled records.
    #[test]
    fn checkpoint_recover_preserves_identify_batch(
        users in 1usize..20,
        dim in 1usize..8,
        seed in any::<u64>(),
        removal_mask in any::<u32>(),
    ) {
        use fuzzy_id::core::CellWidth;

        let dir = scratch_dir("arena-roundtrip");
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let donor = {
            let bio = params.sketch().line().random_vector(4, &mut rng);
            device.enroll("donor", &bio, &mut rng).unwrap().public_key
        };

        let mut original: AuthenticationServer =
            AuthenticationServer::recover(params.clone(), &dir).unwrap();
        let mut bios = Vec::new();
        for u in 0..users {
            let (record, bio) =
                synthetic_record(&params, &donor, &format!("user-{u}"), dim, &mut rng);
            original.enroll(record).unwrap();
            bios.push(bio);
        }
        for u in 0..users {
            if removal_mask & (1 << (u % 32)) != 0 {
                original.revoke(&format!("user-{u}")).unwrap();
            }
        }
        // Checkpoint: compacts tombstones and writes the snapshot the
        // recovery below bulk-loads.
        original.checkpoint().unwrap();

        let mut probes: Vec<Vec<i64>> = bios
            .iter()
            .map(|bio| genuine_probe(&params, bio, &mut rng))
            .collect();
        let stranger = params.sketch().line().random_vector(dim, &mut rng);
        probes.push(genuine_probe(&params, &stranger, &mut rng));

        let expected_users = original.user_count();
        let expected: Vec<Option<_>> = original
            .identify_batch(&probes, &mut rng)
            .into_iter()
            .map(|r| r.ok().map(|c| c.helper))
            .collect();
        drop(original); // crash

        let mut recovered: AuthenticationServer =
            AuthenticationServer::recover(params.clone(), &dir).unwrap();
        // The paper-parameter ring (ka = 400) auto-selects i16 cells.
        prop_assert_eq!(recovered.index().arena().width(), CellWidth::I16);
        prop_assert_eq!(recovered.user_count(), expected_users);

        let got: Vec<Option<_>> = recovered
            .identify_batch(&probes, &mut rng)
            .into_iter()
            .map(|r| r.ok().map(|c| c.helper))
            .collect();
        // Same probes match, resolving to the same records (helper data
        // is unique per enrollment); session ids legitimately differ.
        prop_assert_eq!(expected, got);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Sealed-segment checkpoint sidecar (`segments.fsg`): recovery maps the
// columnar snapshot prefix straight into the epoch index instead of
// re-inserting row by row — and falls back to a full replay whenever
// the sidecar is missing, torn, or bound to a different snapshot.
// ---------------------------------------------------------------------------

/// An epoch-index server with tiny tier thresholds (freeze at 4 rows,
/// merge at 2 runs, seal at 8 rows) so small test populations actually
/// produce sealed segments — the default seal point is 65 536 rows.
fn small_epoch_server(params: &SystemParams) -> AuthenticationServer<EpochIndex> {
    let t = params.sketch().threshold();
    let ka = params.sketch().line().interval_len();
    AuthenticationServer::with_index(
        params.clone(),
        EpochIndex::with_thresholds(t, ka, params.filter_config(), 4, 2, 8),
    )
}

/// Checkpoint writes the sealed segments as a sidecar; recovery imports
/// them (visible as non-empty `segments()` on an index whose default
/// thresholds would have kept every row in staging) and answers lookups
/// exactly like the never-restarted original.
#[test]
fn segment_cache_round_trips_through_checkpoint() {
    let dir = scratch_dir("segcache");
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x5E6C);
    let donor = {
        let bio = params.sketch().line().random_vector(4, &mut rng);
        device.enroll("donor", &bio, &mut rng).unwrap().public_key
    };

    let mut server = small_epoch_server(&params);
    server
        .attach_store(Box::new(
            FileStore::open(&dir, params.fingerprint()).unwrap(),
        ))
        .unwrap();
    let mut bios = Vec::new();
    for u in 0..30 {
        let (record, bio) = synthetic_record(&params, &donor, &format!("user-{u}"), 6, &mut rng);
        server.enroll(record).unwrap();
        bios.push(bio);
    }
    server.checkpoint().unwrap();
    assert!(
        !server.index().segments().is_empty(),
        "tiny thresholds must have sealed at least one segment"
    );
    assert!(
        dir.join("segments.fsg").exists(),
        "checkpoint must write the segment sidecar"
    );

    let mut probes: Vec<Vec<i64>> = bios
        .iter()
        .map(|bio| genuine_probe(&params, bio, &mut rng))
        .collect();
    let stranger = params.sketch().line().random_vector(6, &mut rng);
    probes.push(genuine_probe(&params, &stranger, &mut rng));
    let expected: Vec<Option<usize>> = probes.iter().map(|p| server.lookup_probe(p)).collect();
    drop(server); // crash

    let recovered: AuthenticationServer<EpochIndex> =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    assert_eq!(recovered.user_count(), 30);
    // Proof the sidecar import ran: a default-threshold index seals at
    // 65 536 rows, so a row-by-row replay of 30 records would leave
    // `segments()` empty.
    assert!(
        !recovered.index().segments().is_empty(),
        "recovery must map sealed segments from the sidecar"
    );
    let got: Vec<Option<usize>> = probes.iter().map(|p| recovered.lookup_probe(p)).collect();
    assert_eq!(expected, got);
    assert_eq!(
        recovered.lookup_probe_batch(&probes),
        expected,
        "batch path must agree with the per-probe path after import"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A corrupt, torn, or stale sidecar is *ignored* — never an error:
/// recovery silently falls back to full journal replay and answers
/// identically.
#[test]
fn damaged_or_stale_segment_cache_falls_back_to_replay() {
    let dir = scratch_dir("segcache-damage");
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0xBADC);
    let donor = {
        let bio = params.sketch().line().random_vector(4, &mut rng);
        device.enroll("donor", &bio, &mut rng).unwrap().public_key
    };

    let mut server = small_epoch_server(&params);
    server
        .attach_store(Box::new(
            FileStore::open(&dir, params.fingerprint()).unwrap(),
        ))
        .unwrap();
    let mut bios = Vec::new();
    for u in 0..20 {
        let (record, bio) = synthetic_record(&params, &donor, &format!("user-{u}"), 6, &mut rng);
        server.enroll(record).unwrap();
        bios.push(bio);
    }
    server.checkpoint().unwrap();
    let sidecar = dir.join("segments.fsg");
    let pristine = std::fs::read(&sidecar).unwrap();
    let probes: Vec<Vec<i64>> = bios
        .iter()
        .map(|bio| genuine_probe(&params, bio, &mut rng))
        .collect();
    let expected: Vec<Option<usize>> = probes.iter().map(|p| server.lookup_probe(p)).collect();
    drop(server);

    // Torn sidecar (kill mid-write of the cache itself).
    std::fs::write(&sidecar, &pristine[..pristine.len() - 7]).unwrap();
    let recovered: AuthenticationServer<EpochIndex> =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    assert_eq!(recovered.user_count(), 20);
    let got: Vec<Option<usize>> = probes.iter().map(|p| recovered.lookup_probe(p)).collect();
    assert_eq!(expected, got, "torn sidecar must fall back to replay");
    drop(recovered);

    // Garbage sidecar (wrong magic entirely).
    std::fs::write(&sidecar, b"not a segment cache at all").unwrap();
    let recovered: AuthenticationServer<EpochIndex> =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    let got: Vec<Option<usize>> = probes.iter().map(|p| recovered.lookup_probe(p)).collect();
    assert_eq!(expected, got, "garbage sidecar must fall back to replay");
    drop(recovered);

    // Stale sidecar: restore the pristine cache, then advance the
    // snapshot underneath it — the CRC binding must reject the cache
    // because it describes rows the *old* snapshot numbered.
    std::fs::write(&sidecar, &pristine).unwrap();
    let mut server: AuthenticationServer<EpochIndex> =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    server.revoke("user-3").unwrap();
    server.revoke("user-7").unwrap();
    server.checkpoint().unwrap(); // rewrites the snapshot
                                  // The recovered server runs default seal thresholds, so this
                                  // checkpoint has no sealed prefix to export — and compact() must
                                  // have eagerly deleted the now-stale sidecar.
    assert!(
        !sidecar.exists(),
        "compact must delete a sidecar it did not rewrite"
    );
    let expected2: Vec<Option<usize>> = probes.iter().map(|p| server.lookup_probe(p)).collect();
    drop(server);
    // Resurrect the stale sidecar anyway (a crashed copy, a backup
    // restore): the CRC binding is the second line of defense.
    std::fs::write(&sidecar, &pristine).unwrap();
    let recovered: AuthenticationServer<EpochIndex> =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    assert_eq!(recovered.user_count(), 18);
    assert!(
        recovered.index().segments().is_empty(),
        "stale sidecar must be rejected by the snapshot CRC binding"
    );
    let got: Vec<Option<usize>> = probes.iter().map(|p| recovered.lookup_probe(p)).collect();
    assert_eq!(expected2, got, "stale sidecar must fall back to replay");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Kill *after* a checkpoint with a journal tail on top (enrolls and a
/// revocation of a sealed, cache-covered row): recovery imports the
/// sealed prefix, replays the tail over it, and the tombstone flip
/// lands on the imported segment.
#[test]
fn journal_tail_replays_over_imported_segments() {
    let dir = scratch_dir("segcache-tail");
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x7A11);
    let donor = {
        let bio = params.sketch().line().random_vector(4, &mut rng);
        device.enroll("donor", &bio, &mut rng).unwrap().public_key
    };

    let mut server = small_epoch_server(&params);
    server
        .attach_store(Box::new(
            FileStore::open(&dir, params.fingerprint()).unwrap(),
        ))
        .unwrap();
    let mut bios = Vec::new();
    for u in 0..16 {
        let (record, bio) = synthetic_record(&params, &donor, &format!("user-{u}"), 6, &mut rng);
        server.enroll(record).unwrap();
        bios.push(bio);
    }
    server.checkpoint().unwrap();
    // Journal tail: four more enrollments plus a revocation of user-2,
    // whose row lives inside a sealed (and cache-covered) segment.
    for u in 16..20 {
        let (record, bio) = synthetic_record(&params, &donor, &format!("user-{u}"), 6, &mut rng);
        server.enroll(record).unwrap();
        bios.push(bio);
    }
    server.revoke("user-2").unwrap();
    assert!(server.store().unwrap().journal_len() > 0);

    let probes: Vec<Vec<i64>> = bios
        .iter()
        .map(|bio| genuine_probe(&params, bio, &mut rng))
        .collect();
    let expected: Vec<Option<usize>> = probes.iter().map(|p| server.lookup_probe(p)).collect();
    let expected_users = server.user_count();
    drop(server); // crash with snapshot + sidecar + journal tail

    let recovered: AuthenticationServer<EpochIndex> =
        AuthenticationServer::recover(params.clone(), &dir).unwrap();
    assert_eq!(recovered.user_count(), expected_users);
    assert!(
        !recovered.index().segments().is_empty(),
        "sealed prefix must come from the sidecar"
    );
    let got: Vec<Option<usize>> = probes.iter().map(|p| recovered.lookup_probe(p)).collect();
    assert_eq!(expected, got);
    assert_eq!(
        got[2], None,
        "revoked user-2 must stay revoked on the imported segment"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
