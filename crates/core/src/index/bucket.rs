//! The LSH-style bucket index extension.

use super::{RecordId, SketchIndex};
use crate::conditions::sketches_match;
use std::collections::HashMap;

/// LSH-style bucket index with multi-probe lookup (extension).
///
/// Each sketch coordinate is normalized onto `[0, ka)` and the first
/// `prefix_dims` coordinates are quantized into cells of width `2t + 1`;
/// the resulting cell tuple keys a hash bucket. A probe within cyclic
/// distance `t` per coordinate can only land in the same or an adjacent
/// cell, so lookup probes the `3^prefix_dims` neighbouring cell tuples and
/// verifies candidates with the full conditions.
///
/// **Pruning power**: the candidate fraction is roughly
/// `(3·(2t+1)/ka)^prefix_dims`. At the paper's Table II parameters
/// (`ka = 400, t = 100`) each coordinate has only ~2 cells, so *no*
/// coordinate-level index can prune — the early-abort [`ScanIndex`] is
/// already optimal there. The bucket index pays off when `ka ≫ t` (small
/// relative noise), which the index ablation bench quantifies.
///
/// [`ScanIndex`]: super::ScanIndex
#[derive(Debug, Clone)]
pub struct BucketIndex {
    t: u64,
    ka: u64,
    prefix_dims: usize,
    cells: u64,
    buckets: HashMap<Vec<u32>, Vec<RecordId>>,
    entries: Vec<Option<Vec<i64>>>,
    live: usize,
}

impl BucketIndex {
    /// Creates a bucket index keyed on the first `prefix_dims`
    /// coordinates.
    ///
    /// # Panics
    /// Panics if `prefix_dims == 0` or `prefix_dims > 8` (probe count is
    /// `3^prefix_dims`; 8 ⇒ 6561 probes, a sane ceiling).
    pub fn new(t: u64, ka: u64, prefix_dims: usize) -> Self {
        assert!(
            (1..=8).contains(&prefix_dims),
            "prefix_dims must be in 1..=8"
        );
        // Cells must all be at least t+1 wide, or a move of ≤ t could skip
        // across a sliver cell and land two cells away: give the remainder
        // its own cell only when it is big enough, otherwise merge it into
        // the last full cell.
        let width = 2 * t + 1;
        let mut cells = ka / width;
        if ka % width > t {
            cells += 1;
        }
        let cells = cells.max(1);
        BucketIndex {
            t,
            ka,
            prefix_dims,
            cells,
            buckets: HashMap::new(),
            entries: Vec::new(),
            live: 0,
        }
    }

    fn cell_of(&self, coord: i64) -> u32 {
        let norm = coord.rem_euclid(self.ka as i64) as u64;
        ((norm / (2 * self.t + 1)).min(self.cells - 1)) as u32
    }

    fn key_of(&self, sketch: &[i64]) -> Vec<u32> {
        sketch
            .iter()
            .take(self.prefix_dims)
            .map(|&c| self.cell_of(c))
            .collect()
    }

    /// Enumerates the `3^prefix_dims` neighbouring keys of a probe key.
    fn probe_keys(&self, probe: &[i64]) -> Vec<Vec<u32>> {
        let base = self.key_of(probe);
        let mut keys = vec![Vec::new()];
        for &cell in &base {
            let mut next = Vec::with_capacity(keys.len() * 3);
            let neighbours = [
                (cell as u64 + self.cells - 1) % self.cells,
                cell as u64,
                (cell as u64 + 1) % self.cells,
            ];
            // Dedup (cells can collapse when the ring is tiny).
            let mut uniq: Vec<u64> = neighbours.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            for prefix in &keys {
                for &n in &uniq {
                    let mut k = prefix.clone();
                    k.push(n as u32);
                    next.push(k);
                }
            }
            keys = next;
        }
        keys
    }

    /// Candidate records sharing a probed bucket (before full
    /// verification) — exposed for the ablation bench.
    pub fn candidates(&self, probe: &[i64]) -> Vec<RecordId> {
        let mut out = Vec::new();
        for key in self.probe_keys(probe) {
            if let Some(ids) = self.buckets.get(&key) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl SketchIndex for BucketIndex {
    fn insert(&mut self, sketch: Vec<i64>) -> RecordId {
        assert!(
            sketch.len() >= self.prefix_dims,
            "sketch shorter than prefix_dims"
        );
        let id = self.entries.len();
        let key = self.key_of(&sketch);
        self.buckets.entry(key).or_default().push(id);
        self.entries.push(Some(sketch));
        self.live += 1;
        id
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        self.candidates(probe).into_iter().find(|&id| {
            self.entries[id].as_ref().is_some_and(|s| {
                s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
            })
        })
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        self.candidates(probe)
            .into_iter()
            .filter(|&id| {
                self.entries[id].as_ref().is_some_and(|s| {
                    s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
                })
            })
            .collect()
    }

    fn remove(&mut self, id: RecordId) -> bool {
        let Some(slot) = self.entries.get_mut(id) else {
            return false;
        };
        let Some(sketch) = slot.take() else {
            return false;
        };
        self.live -= 1;
        let key = self.key_of(&sketch);
        if let Some(ids) = self.buckets.get_mut(&key) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.buckets.remove(&key);
            }
        }
        true
    }

    fn len(&self) -> usize {
        self.live
    }

    fn slots(&self) -> usize {
        self.entries.len()
    }

    fn live_records(&self) -> Vec<(RecordId, Vec<i64>)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(id, s)| s.as_ref().map(|s| (id, s.clone())))
            .collect()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.buckets.clear();
        self.live = 0;
    }
    // `compact` uses the default clear-and-reinsert, which also rebuilds
    // the hash buckets with dense ids.
}
