//! Server-side sketch lookup for the identification protocol.
//!
//! Given an incoming probe sketch `s'`, the server must find the enrolled
//! record whose sketch matches under conditions (1)–(4). Three strategies:
//!
//! * [`ScanIndex`] — the paper-faithful approach: scan records, applying
//!   the cheap integer conditions with early abort. At the paper's
//!   parameters a non-matching record fails after ~2 coordinates in
//!   expectation (pass probability per coordinate ≈ (2t+1)/ka ≈ ½), so the
//!   scan is orders of magnitude cheaper than one signature operation —
//!   the observed "constant" identification cost.
//! * [`BucketIndex`] — an engineering extension: an LSH-style hash index
//!   on a coarse quantization of the leading coordinates, with multi-probe
//!   lookup. Genuinely sublinear in the number of records; documented as
//!   an extension in DESIGN.md and quantified in the index ablation bench.
//! * [`ShardedIndex`] — a horizontal-scaling wrapper: records are
//!   partitioned round-robin across N inner indexes and looked up on all
//!   shards in parallel, with stable *global* record ids. Any
//!   [`SketchIndex`] (scan, bucket, or epoch) can serve as the shard
//!   backend.
//! * [`EpochIndex`] — the read-mostly production engine: a mutable head
//!   arena plus immutable sealed segments, published through an
//!   epoch-reclaimed snapshot so identification scans never take a lock
//!   even while enroll/revoke/compact churn runs (see [`epoch`]).
//!
//! All three store their rows in the columnar [`store::SketchArena`]:
//! one contiguous width-adaptive buffer (`i16` cells at the paper's
//! `ka = 400`) with a tombstone bitmap and an in-place compactor, so
//! the conditions (1)–(4) scan streams through memory instead of
//! chasing one heap pointer per record. See [`store`] for the layout
//! and the blocked early-abort match kernel.
//!
//! The trade-offs between the three — and the early-abort cost model that
//! makes the plain scan so strong at the paper's parameters — are worked
//! through in `DESIGN.md` at the repository root.

mod bucket;
pub mod epoch;
mod scan;
mod sharded;
pub mod store;

pub use bucket::BucketIndex;
pub use epoch::{EpochIndex, EpochRead, EpochReader, IndexReader, Segment, SegmentBacking};
pub use scan::ScanIndex;
pub use sharded::{ShardedIndex, ShardedReader};
pub use store::{
    CellWidth, Combine, FilterConfig, FilterKernel, PairedArena, ParallelConfig, PlaneDepth,
    PlaneWidth, RowMask, SketchArena,
};

/// A unique record handle assigned by the index.
///
/// Ids are **stable**: once assigned they are never renumbered or reused,
/// even across [`SketchIndex::remove`] — so they can be stored in
/// server-side records and session state. The one sanctioned exception
/// is [`SketchIndex::compact`], which reclaims tombstone slots and
/// returns the old → new renumbering so callers can remap their own
/// references; stability holds *between* compactions.
pub type RecordId = usize;

/// A lookup structure over enrolled sketches.
///
/// # Dimension contract
///
/// All sketches in one index share a dimension, stamped by the first
/// [`SketchIndex::insert`]: inserting a sketch of a different dimension
/// **panics** (enrolling mixed dimensions is an integration bug — the
/// dimension `n` is a published system parameter), while a *probe* of a
/// different dimension simply **matches nothing** (a remote peer
/// controls probe shape, so lookup must not panic). Every
/// implementation honours both halves identically.
///
/// ```rust
/// use fe_core::{ScanIndex, SketchIndex};
///
/// let mut index = ScanIndex::new(100, 400); // threshold t, ring ka
/// let a = index.insert(&[10, -20, 30]);
/// let b = index.insert(&[180, 180, -180]);
/// assert_eq!(index.lookup(&[15, -25, 35]), Some(a)); // within t = 100
///
/// // Revocation tombstones the slot; ids stay stable…
/// assert!(index.remove(a));
/// assert_eq!(index.lookup(&[15, -25, 35]), None);
/// assert_eq!(index.len(), 1);
///
/// // …until an explicit compaction reclaims the dead slots and reports
/// // the renumbering (b moves to slot 0).
/// let mapping = index.compact();
/// assert_eq!(mapping, vec![(b, 0)]);
/// assert_eq!(index.lookup(&[185, 175, -185]), Some(0));
/// # assert_eq!(index.len(), 1);
/// ```
pub trait SketchIndex {
    /// Inserts a sketch, returning its record id. Borrowed: columnar
    /// storage copies the coordinates into its own buffer, so handing
    /// over an owned `Vec` (as the pre-arena API did) would force every
    /// caller to clone for nothing — the enroll hot path passes the
    /// sketch straight out of the record it is storing.
    ///
    /// # Panics
    /// Panics if the sketch's dimension differs from the index's
    /// stamped dimension (see the trait-level dimension contract).
    fn insert(&mut self, sketch: &[i64]) -> RecordId;

    /// Finds the first record matching the probe under conditions
    /// (1)–(4), if any. "First" means the lowest live [`RecordId`], i.e.
    /// earliest-enrolled-wins, for every implementation. A probe whose
    /// dimension differs from the stamped one matches nothing.
    fn lookup(&self, probe: &[i64]) -> Option<RecordId>;

    /// Finds *all* matching records (used to measure false-close rates).
    /// Implementations return ids in ascending order.
    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId>;

    /// The `budget` lowest matching records, ascending — the
    /// count-bounded lookup behind reset-style decisions: with
    /// `budget = 2` the caller can distinguish 0 / exactly-1 / ≥2
    /// matches without the index scanning past the second hit.
    ///
    /// The default delegates to [`SketchIndex::lookup_all`] and
    /// truncates; scan-backed implementations override it with the
    /// arena's bounded sweep so the scan actually stops at the
    /// `budget`-th match.
    fn lookup_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        let mut all = self.lookup_all(probe);
        all.truncate(budget);
        all
    }

    /// The `budget` lowest matching records **among `subset`**,
    /// ascending — the primitive behind local-uniqueness checks over a
    /// caller-supplied id set. Ids in `subset` that are dead or unknown
    /// simply never match; duplicates are redundant.
    ///
    /// The default intersects [`SketchIndex::lookup_all`] with the
    /// subset; scan-backed implementations override it by compiling the
    /// subset into a row-mask overlay so the sweep only touches masked
    /// rows.
    fn lookup_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        if budget == 0 || subset.is_empty() {
            return Vec::new();
        }
        let set: std::collections::HashSet<RecordId> = subset.iter().copied().collect();
        let mut out: Vec<RecordId> = self
            .lookup_all(probe)
            .into_iter()
            .filter(|id| set.contains(id))
            .collect();
        out.truncate(budget);
        out
    }

    /// Resolves a batch of probes in one call, returning the first match
    /// per probe (position-aligned with `probes`).
    ///
    /// The default implementation is a sequential loop over
    /// [`SketchIndex::lookup`]; implementations with internal parallelism
    /// ([`ShardedIndex`]) override it to fan the batch out across worker
    /// threads. Batch entry points exist so a server can amortize one
    /// lock acquisition over many concurrent identification requests.
    fn lookup_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        probes.iter().map(|p| self.lookup(p)).collect()
    }

    /// Removes a record (revocation). Record ids are stable: removal
    /// never renumbers other records. Returns `false` if the id was
    /// unknown or already removed.
    fn remove(&mut self, id: RecordId) -> bool;

    /// Number of live (non-removed) sketches.
    fn len(&self) -> usize;

    /// `true` when no sketches are enrolled.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total record slots held, live **and** tombstoned. The gap
    /// `slots() - len()` is the memory a [`SketchIndex::compact`] pass
    /// would reclaim.
    fn slots(&self) -> usize;

    /// The stamped sketch dimension (`None` until the first insert or
    /// reserve). Callers that must not panic — e.g. a server validating
    /// an enrollment *before* journaling it — check against this
    /// instead of letting [`SketchIndex::insert`] assert.
    fn dim(&self) -> Option<usize>;

    /// Would [`SketchIndex::insert`] accept a sketch of this dimension
    /// without panicking? The complete non-panicking preflight: it
    /// covers the dimension stamp *and* any implementation-specific
    /// constraint (the bucket index additionally requires
    /// `dim >= prefix_dims`).
    fn sketch_dim_ok(&self, dim: usize) -> bool {
        self.dim().is_none_or(|stamped| stamped == dim)
    }

    /// Copies a live record's sketch into `out` (cleared first),
    /// returning `false` — and leaving `out` empty — for dead or
    /// unknown ids. The allocation-free row access primitive behind
    /// [`SketchIndex::for_each_live`]: callers reuse one scratch buffer
    /// across a whole streaming pass. Values are the canonical ring
    /// representatives the storage holds (see
    /// [`store::SketchArena::push`]).
    fn copy_row_into(&self, id: RecordId, out: &mut Vec<i64>) -> bool;

    /// Streams every live record, in ascending id order, through a
    /// borrowed row — the zero-clone iteration primitive snapshot and
    /// compaction passes use instead of [`SketchIndex::live_records`].
    /// The `&[i64]` row is only valid for the duration of the call.
    fn for_each_live(&self, f: &mut dyn FnMut(RecordId, &[i64])) {
        let mut scratch = Vec::new();
        for id in 0..self.slots() {
            if self.copy_row_into(id, &mut scratch) {
                f(id, &scratch);
            }
        }
    }

    /// Every live record as `(id, sketch)` pairs in ascending id order.
    /// Clones every sketch — prefer [`SketchIndex::for_each_live`] on
    /// hot paths; this remains for small populations and tests.
    fn live_records(&self) -> Vec<(RecordId, Vec<i64>)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_live(&mut |id, row| out.push((id, row.to_vec())));
        out
    }

    /// Pre-sizes the index for `additional` more sketches of `dim`
    /// coordinates (the bulk-load hint recovery uses to build a
    /// pre-sized arena instead of growing it row by row). A no-op by
    /// default.
    fn reserve(&mut self, additional: usize, dim: usize) {
        let _ = (additional, dim);
    }

    /// Heap bytes held by the index's storage (buffers, bitmaps, and —
    /// for hashed indexes — an estimate of table overhead). The
    /// storage-ablation bench divides this by [`SketchIndex::len`] to
    /// report bytes/record.
    fn heap_bytes(&self) -> usize;

    /// Drops every record — live and tombstoned — and resets id
    /// assignment to zero, as if freshly constructed (tuning parameters
    /// are retained). Ids *are* reused after a clear; this is a
    /// compaction/rebuild primitive, not a bulk [`SketchIndex::remove`].
    fn clear(&mut self);

    /// Reclaims tombstone slots: live records are renumbered densely
    /// (`0..len()`) preserving their relative order, and the old → new
    /// id mapping is returned so callers can remap stored [`RecordId`]s.
    ///
    /// This is the fix for unbounded growth under enroll/revoke churn:
    /// without it, [`ScanIndex`]/[`BucketIndex`] entry tables (and every
    /// shard of a [`ShardedIndex`]) grow with the number of enrollments
    /// *ever*, not the number currently live. Servers expose it through
    /// their snapshot-compaction pass, where record slots are being
    /// rewritten anyway.
    fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        let live = self.live_records();
        self.clear();
        live.into_iter()
            .map(|(old, sketch)| (old, self.insert(&sketch)))
            .collect()
    }

    /// Makes every pending write visible to detached readers (see
    /// [`epoch::EpochRead::reader`]) and ends any bulk-load deferral a
    /// [`SketchIndex::reserve`] hint began. A no-op for indexes without
    /// a publication step — their writes are immediately visible.
    fn flush(&mut self) {}

    /// Monotone *structural* generation: bumped whenever record ids are
    /// renumbered ([`SketchIndex::compact`]) or reset
    /// ([`SketchIndex::clear`]). Lock-free readers capture it before a
    /// scan and revalidate under the write path's lock — a changed
    /// generation means the scanned ids may name different records now.
    /// Implementations without renumber-aware readers report `0`.
    fn generation(&self) -> u64 {
        0
    }

    /// Serializes the index's sealed, fully-live, dense-from-zero
    /// segment prefix as a checkpoint sidecar blob, or `None` when the
    /// index holds no such prefix (or does not segment its storage).
    /// See [`SketchIndex::import_segments`] for the recovery half.
    fn export_segments(&self) -> Option<Vec<u8>> {
        None
    }

    /// Installs a blob from [`SketchIndex::export_segments`] into this
    /// **empty** index, returning how many leading records (ids
    /// `0..n`) it covers so recovery can skip re-inserting them; `None`
    /// (leaving the index unchanged) when the blob does not fit this
    /// index. The default refuses every blob — callers fall back to a
    /// full replay.
    fn import_segments(&mut self, blob: &[u8]) -> Option<usize> {
        let _ = blob;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChebyshevSketch, SecureSketch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const T: u64 = 100;
    const KA: u64 = 400;

    /// Builds (enrolled sketches, genuine probes) pairs from the real
    /// sketch scheme so index tests exercise realistic data.
    fn make_population(
        users: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        let scheme = ChebyshevSketch::paper_defaults();
        let mut sketches = Vec::new();
        let mut probes = Vec::new();
        for _ in 0..users {
            let x = scheme.line().random_vector(dim, rng);
            let s = scheme.sketch(&x, rng).unwrap();
            let noisy: Vec<i64> = x
                .iter()
                .map(|&v| {
                    use rand::Rng;
                    scheme
                        .line()
                        .wrap(v + rng.gen_range(-(T as i64)..=T as i64))
                })
                .collect();
            let sp = scheme.sketch(&noisy, rng).unwrap();
            sketches.push(s);
            probes.push(sp);
        }
        (sketches, probes)
    }

    fn check_index<I: SketchIndex>(mut index: I, rng: &mut StdRng) {
        let (sketches, probes) = make_population(50, 32, rng);
        for s in &sketches {
            index.insert(s);
        }
        assert_eq!(index.len(), 50);
        // Every genuine probe finds its own record.
        for (uid, probe) in probes.iter().enumerate() {
            let found = index.lookup(probe).expect("genuine probe must match");
            assert_eq!(found, uid, "probe {uid} matched the wrong record");
        }
        // The batch path agrees with the one-at-a-time path.
        let batch = index.lookup_batch(&probes);
        assert_eq!(batch.len(), probes.len());
        for (uid, found) in batch.iter().enumerate() {
            assert_eq!(*found, Some(uid));
        }
        // Random junk probes (fresh users) almost surely match nothing.
        let scheme = ChebyshevSketch::paper_defaults();
        for _ in 0..20 {
            let x = scheme.line().random_vector(32, rng);
            let s = scheme.sketch(&x, rng).unwrap();
            assert_eq!(index.lookup(&s), None, "impostor matched");
        }
    }

    #[test]
    fn scan_index_end_to_end() {
        let mut rng = StdRng::seed_from_u64(900);
        check_index(ScanIndex::new(T, KA), &mut rng);
    }

    #[test]
    fn bucket_index_end_to_end() {
        let mut rng = StdRng::seed_from_u64(901);
        check_index(BucketIndex::new(T, KA, 4), &mut rng);
    }

    #[test]
    fn sharded_scan_end_to_end() {
        let mut rng = StdRng::seed_from_u64(904);
        check_index(ShardedIndex::scan(4, T, KA), &mut rng);
    }

    #[test]
    fn sharded_bucket_end_to_end() {
        let mut rng = StdRng::seed_from_u64(905);
        check_index(ShardedIndex::bucket(3, T, KA, 4), &mut rng);
    }

    #[test]
    fn sharded_single_shard_end_to_end() {
        let mut rng = StdRng::seed_from_u64(906);
        check_index(ShardedIndex::scan(1, T, KA), &mut rng);
    }

    /// Tiny epoch thresholds so a 50-record population exercises
    /// freeze/merge/seal, not just the staging arena.
    fn small_epoch() -> EpochIndex {
        EpochIndex::with_thresholds(T, KA, FilterConfig::default(), 8, 2, 32)
    }

    #[test]
    fn epoch_index_end_to_end() {
        let mut rng = StdRng::seed_from_u64(914);
        check_index(EpochIndex::new(T, KA), &mut rng);
    }

    #[test]
    fn epoch_index_segmented_end_to_end() {
        let mut rng = StdRng::seed_from_u64(915);
        check_index(small_epoch(), &mut rng);
    }

    #[test]
    fn sharded_epoch_end_to_end() {
        let mut rng = StdRng::seed_from_u64(916);
        check_index(ShardedIndex::from_fn(3, |_| small_epoch()), &mut rng);
    }

    #[test]
    fn bucket_index_agrees_with_scan() {
        let mut rng = StdRng::seed_from_u64(902);
        let (sketches, probes) = make_population(100, 16, &mut rng);
        let mut scan = ScanIndex::new(T, KA);
        let mut bucket = BucketIndex::new(T, KA, 3);
        for s in &sketches {
            scan.insert(s);
            bucket.insert(s);
        }
        for probe in &probes {
            assert_eq!(scan.lookup_all(probe), bucket.lookup_all(probe));
        }
    }

    #[test]
    fn sharded_agrees_with_scan_including_removals() {
        let mut rng = StdRng::seed_from_u64(907);
        let (sketches, probes) = make_population(120, 16, &mut rng);
        let mut scan = ScanIndex::new(T, KA);
        let mut sharded = ShardedIndex::scan(5, T, KA);
        for s in &sketches {
            let a = scan.insert(s);
            let b = sharded.insert(s);
            assert_eq!(a, b, "global ids must mirror single-index ids");
        }
        // Remove every seventh record from both.
        for id in (0..120).step_by(7) {
            assert!(scan.remove(id));
            assert!(sharded.remove(id));
        }
        assert_eq!(scan.len(), sharded.len());
        for probe in &probes {
            assert_eq!(scan.lookup_all(probe), sharded.lookup_all(probe));
            assert_eq!(scan.lookup(probe), sharded.lookup(probe));
        }
    }

    #[test]
    fn bucket_candidates_are_pruned_when_noise_is_small() {
        // Pruning requires ka >> t (see type docs): use t = 25 on the
        // paper's line, where each coordinate has 7 cells.
        let t = 25u64;
        let scheme = ChebyshevSketch::new(*ChebyshevSketch::paper_defaults().line(), t).unwrap();
        let mut rng = StdRng::seed_from_u64(903);
        let mut bucket = BucketIndex::new(t, KA, 4);
        let mut probes = Vec::new();
        for _ in 0..500 {
            let x = scheme.line().random_vector(16, &mut rng);
            bucket.insert(&scheme.sketch(&x, &mut rng).unwrap());
            let noisy: Vec<i64> = x
                .iter()
                .map(|&v| {
                    use rand::Rng;
                    scheme
                        .line()
                        .wrap(v + rng.gen_range(-(t as i64)..=t as i64))
                })
                .collect();
            probes.push(scheme.sketch(&noisy, &mut rng).unwrap());
        }
        // Every genuine probe still matches its record…
        for (uid, probe) in probes.iter().enumerate() {
            assert_eq!(bucket.lookup(probe), Some(uid));
        }
        // …and candidate sets are far smaller than the population:
        // expected fraction (3/7)^4 ≈ 3.4% → ~17 of 500.
        let total: usize = probes.iter().map(|p| bucket.candidates(p).len()).sum();
        let avg = total as f64 / probes.len() as f64;
        assert!(
            avg < 100.0,
            "bucket index barely prunes: avg candidates {avg}"
        );
    }

    #[test]
    fn lookup_all_finds_duplicates() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(&[10, 20, 30]);
        scan.insert(&[15, 25, 35]); // within t of the first
        scan.insert(&[300, 20, 30]); // far in coordinate 0
        let matches = scan.lookup_all(&[12, 22, 32]);
        assert_eq!(matches, vec![0, 1]);
    }

    #[test]
    fn empty_index_finds_nothing() {
        let scan = ScanIndex::new(T, KA);
        assert!(scan.is_empty());
        assert_eq!(scan.lookup(&[1, 2, 3]), None);
        let bucket = BucketIndex::new(T, KA, 2);
        assert_eq!(bucket.lookup(&[1, 2, 3]), None);
        let sharded = ShardedIndex::scan(4, T, KA);
        assert!(sharded.is_empty());
        assert_eq!(sharded.lookup(&[1, 2, 3]), None);
        assert_eq!(sharded.lookup_batch(&[vec![1, 2, 3]]), vec![None]);
    }

    /// The trait-level dimension contract, on every implementation: a
    /// probe of the wrong dimension matches nothing (no panic — probes
    /// come from the network), across every lookup entry point.
    fn check_probe_dimension_contract<I: SketchIndex>(mut index: I) {
        index.insert(&[1, 2, 3]);
        index.insert(&[100, -100, 50]);
        for probe in [vec![1, 2], vec![1, 2, 3, 4], vec![]] {
            assert_eq!(index.lookup(&probe), None);
            assert_eq!(index.lookup_all(&probe), Vec::<RecordId>::new());
            assert_eq!(index.lookup_batch(std::slice::from_ref(&probe)), vec![None]);
        }
        // A well-dimensioned probe still works afterwards.
        assert_eq!(index.lookup(&[2, 3, 4]), Some(0));
    }

    #[test]
    fn dimension_mismatch_is_no_match() {
        check_probe_dimension_contract(ScanIndex::new(T, KA));
        check_probe_dimension_contract(BucketIndex::new(T, KA, 2));
        check_probe_dimension_contract(ShardedIndex::scan(3, T, KA));
        check_probe_dimension_contract(ShardedIndex::bucket(2, T, KA, 2));
        check_probe_dimension_contract(EpochIndex::new(T, KA));
        check_probe_dimension_contract(ShardedIndex::from_fn(2, |_| small_epoch()));
    }

    /// The other half of the contract: mixed-dimension *inserts* panic,
    /// identically for every implementation.
    #[test]
    #[should_panic(expected = "stamped dimension")]
    fn scan_insert_dimension_mismatch_panics() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(&[1, 2, 3]);
        scan.insert(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "stamped dimension")]
    fn bucket_insert_dimension_mismatch_panics() {
        let mut bucket = BucketIndex::new(T, KA, 2);
        bucket.insert(&[1, 2, 3]);
        bucket.insert(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "stamped dimension")]
    fn sharded_insert_dimension_mismatch_panics() {
        let mut sharded = ShardedIndex::scan(2, T, KA);
        sharded.insert(&[1, 2, 3]);
        sharded.insert(&[1, 2, 3]);
        sharded.insert(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "prefix_dims")]
    fn bucket_prefix_validation() {
        BucketIndex::new(T, KA, 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn sharded_rejects_zero_shards() {
        ShardedIndex::scan(0, T, KA);
    }

    #[test]
    fn scan_removal_keeps_ids_stable() {
        let mut scan = ScanIndex::new(T, KA);
        let a = scan.insert(&[10, 20, 30]);
        let b = scan.insert(&[150, -150, 90]);
        assert_eq!(scan.len(), 2);
        assert!(scan.remove(a));
        assert!(!scan.remove(a), "double removal must report false");
        assert_eq!(scan.len(), 1);
        // a no longer matches; b keeps its id and still matches.
        assert_eq!(scan.lookup(&[10, 20, 30]), None);
        assert_eq!(scan.lookup(&[150, -150, 90]), Some(b));
        assert_eq!(scan.sketch(a), None);
        // New inserts get fresh ids, never recycling a's.
        let c = scan.insert(&[1, 2, 3]);
        assert_ne!(c, a);
        assert!(!scan.remove(999), "unknown id");
    }

    #[test]
    fn sharded_removal_keeps_ids_stable() {
        let mut sharded = ShardedIndex::scan(3, T, KA);
        let a = sharded.insert(&[10, 20, 30]);
        let b = sharded.insert(&[150, -150, 90]);
        let c = sharded.insert(&[-120, 60, 10]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert!(sharded.remove(b));
        assert!(!sharded.remove(b), "double removal must report false");
        assert_eq!(sharded.len(), 2);
        assert_eq!(sharded.lookup(&[150, -150, 90]), None);
        assert_eq!(sharded.lookup(&[10, 20, 30]), Some(a));
        assert_eq!(sharded.lookup(&[-120, 60, 10]), Some(c));
        // New inserts continue the global sequence.
        let d = sharded.insert(&[77, 77, 77]);
        assert_eq!(d, 3);
        assert!(!sharded.remove(999), "unknown id");
    }

    /// Shared churn scenario: heavy enroll/revoke cycles must not grow
    /// the slot table without bound once compaction runs.
    fn check_compaction<I: SketchIndex>(mut index: I, rng: &mut StdRng) {
        let (sketches, probes) = make_population(40, 16, rng);
        for s in &sketches {
            index.insert(s);
        }
        // Revoke 3 of every 4 records.
        for id in 0..40 {
            if id % 4 != 0 {
                assert!(index.remove(id));
            }
        }
        assert_eq!(index.len(), 10);
        assert_eq!(index.slots(), 40);

        let mapping = index.compact();
        // Survivors renumber densely, preserving order.
        let expected: Vec<(RecordId, RecordId)> = (0..10).map(|i| (i * 4, i)).collect::<Vec<_>>();
        assert_eq!(mapping, expected);
        assert_eq!(index.len(), 10);
        assert_eq!(index.slots(), 10, "tombstones must be reclaimed");

        // Genuine probes for survivors resolve at their *new* ids; the
        // revoked ones stay gone.
        for (old, probe) in probes.iter().enumerate() {
            match index.lookup(probe) {
                Some(found) => {
                    assert_eq!(old % 4, 0, "revoked record {old} matched");
                    assert_eq!(found, old / 4);
                }
                None => assert_ne!(old % 4, 0, "survivor {old} lost"),
            }
        }

        // Sustained churn with periodic compaction keeps memory
        // proportional to live records, not total enrollments ever.
        let (more, _) = make_population(60, 16, rng);
        for s in &more {
            let id = index.insert(s);
            assert!(index.remove(id));
            index.compact();
        }
        assert_eq!(index.len(), 10);
        assert_eq!(index.slots(), 10);
    }

    #[test]
    fn scan_compaction_reclaims_tombstones() {
        let mut rng = StdRng::seed_from_u64(910);
        check_compaction(ScanIndex::new(T, KA), &mut rng);
    }

    #[test]
    fn bucket_compaction_reclaims_tombstones() {
        let mut rng = StdRng::seed_from_u64(911);
        check_compaction(BucketIndex::new(T, KA, 4), &mut rng);
    }

    #[test]
    fn sharded_compaction_reclaims_tombstones() {
        let mut rng = StdRng::seed_from_u64(912);
        check_compaction(ShardedIndex::scan(3, T, KA), &mut rng);
    }

    #[test]
    fn epoch_compaction_reclaims_tombstones() {
        let mut rng = StdRng::seed_from_u64(918);
        check_compaction(small_epoch(), &mut rng);
    }

    #[test]
    fn sharded_compaction_rebalances_and_stays_consistent() {
        // Remove a skewed subset (everything on shard 0), compact, and
        // verify the rebuilt sharded index agrees with a compacted scan.
        let mut rng = StdRng::seed_from_u64(913);
        let (sketches, probes) = make_population(60, 16, &mut rng);
        let mut scan = ScanIndex::new(T, KA);
        let mut sharded = ShardedIndex::scan(4, T, KA);
        for s in &sketches {
            scan.insert(s);
            sharded.insert(s);
        }
        for id in (0..60).step_by(4) {
            // Global ids ≡ 0 (mod 4) all live on shard 0.
            assert!(scan.remove(id));
            assert!(sharded.remove(id));
        }
        assert_eq!(scan.compact(), sharded.compact());
        assert_eq!(scan.len(), sharded.len());
        for probe in &probes {
            assert_eq!(scan.lookup(probe), sharded.lookup(probe));
            assert_eq!(scan.lookup_all(probe), sharded.lookup_all(probe));
        }
        // Fresh inserts continue dense after compaction.
        let a = scan.insert(&[0; 16]);
        let b = sharded.insert(&[0; 16]);
        assert_eq!(a, b);
        assert_eq!(a, 45);
    }

    #[test]
    fn clear_resets_id_assignment() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(&[1, 2, 3]);
        scan.insert(&[4, 5, 6]);
        scan.clear();
        assert!(scan.is_empty());
        assert_eq!(scan.slots(), 0);
        assert_eq!(scan.insert(&[7, 8, 9]), 0, "ids restart after clear");

        let mut sharded = ShardedIndex::scan(2, T, KA);
        sharded.insert(&[1, 2]);
        sharded.clear();
        assert_eq!(sharded.insert(&[3, 4]), 0);
    }

    #[test]
    fn live_records_are_ascending_and_live_only() {
        let mut sharded = ShardedIndex::scan(3, T, KA);
        for i in 0..9 {
            sharded.insert(&[i, i, i]);
        }
        sharded.remove(4);
        let live = sharded.live_records();
        let ids: Vec<RecordId> = live.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 5, 6, 7, 8]);
        assert_eq!(live[4].1, vec![5, 5, 5]);
    }

    #[test]
    fn bucket_removal_works() {
        let mut bucket = BucketIndex::new(T, KA, 2);
        let a = bucket.insert(&[10, 20, 30]);
        let b = bucket.insert(&[12, 22, 32]);
        assert_eq!(bucket.lookup_all(&[11, 21, 31]), vec![a, b]);
        assert!(bucket.remove(a));
        assert_eq!(bucket.lookup_all(&[11, 21, 31]), vec![b]);
        assert_eq!(bucket.len(), 1);
        assert!(!bucket.remove(a));
    }
}
