//! System setup (`SysSetup`): the public parameters shared by every
//! party.

use fe_core::codec::{Fingerprint, Writer};
use fe_core::{ChebyshevSketch, FilterConfig};
use fe_crypto::dsa::{Dsa, DsaParams};

/// Which sketch-lookup structure the authentication server should build,
/// with its tunables.
///
/// The server type is generic over the index
/// ([`AuthenticationServer<I>`](crate::AuthenticationServer)); this knob
/// travels with [`SystemParams`] so deployments can publish their index
/// choice alongside the sketch parameters, and so index builders
/// ([`BuildIndex`](crate::BuildIndex)) can pick up the tunables without
/// extra plumbing. Irrelevant fields are ignored by backends that do not
/// use them (e.g. a plain [`ScanIndex`](fe_core::ScanIndex) ignores
/// everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexConfig {
    /// Paper-faithful early-abort linear scan (the default).
    #[default]
    Scan,
    /// LSH-style bucket index keyed on the first `prefix_dims`
    /// coordinates.
    Bucket {
        /// Coordinates used for the bucket key (1..=8).
        prefix_dims: usize,
    },
    /// Round-robin sharding over scan backends.
    ShardedScan {
        /// Number of shards (≥ 1).
        shards: usize,
    },
    /// Round-robin sharding over bucket backends.
    ShardedBucket {
        /// Number of shards (≥ 1).
        shards: usize,
        /// Coordinates used for the bucket key (1..=8).
        prefix_dims: usize,
    },
}

impl IndexConfig {
    /// Default bucket key width when the config does not specify one.
    pub const DEFAULT_PREFIX_DIMS: usize = 4;

    /// The configured shard count (`1` for unsharded configs).
    pub fn shards(&self) -> usize {
        match *self {
            IndexConfig::Scan | IndexConfig::Bucket { .. } => 1,
            IndexConfig::ShardedScan { shards } | IndexConfig::ShardedBucket { shards, .. } => {
                shards.max(1)
            }
        }
    }

    /// The configured bucket key width (defaulted for scan configs).
    pub fn prefix_dims(&self) -> usize {
        match *self {
            IndexConfig::Bucket { prefix_dims }
            | IndexConfig::ShardedBucket { prefix_dims, .. } => prefix_dims,
            _ => Self::DEFAULT_PREFIX_DIMS,
        }
    }
}

/// What a plain [`enroll`](crate::AuthenticationServer::enroll) does
/// when the new record's sketch already matches an enrolled record
/// (the *same biometric* re-enrolling under a fresh id — a different
/// situation from [`DuplicateUser`](crate::ProtocolError::DuplicateUser),
/// which is about the id string).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupPolicy {
    /// Accept it (the paper's behavior): every enrollment is an
    /// independent record, and the same biometric may exist under
    /// several ids as unlinked duplicates.
    #[default]
    Permissive,
    /// Refuse it with
    /// [`DuplicateBiometric`](crate::ProtocolError::DuplicateBiometric),
    /// journaling the rejection: plain `enroll` gains
    /// [`enroll_unique`](crate::AuthenticationServer::enroll_unique)
    /// semantics, closing the dedup gap where one biometric silently
    /// double-enrolls.
    RejectMatching,
}

/// Public system parameters: the number line + threshold, the extracted
/// key length, the DSA domain parameters, and the server's index
/// configuration.
///
/// Produced once by the authentication server and published
/// (`params = (La, t, H, Ext)` in Sec. V, plus the signature group).
#[derive(Debug, Clone)]
pub struct SystemParams {
    sketch: ChebyshevSketch,
    key_len: usize,
    dsa: DsaParams,
    index: IndexConfig,
    filter: FilterConfig,
    dedup: DedupPolicy,
}

impl SystemParams {
    /// Assembles system parameters (with the default scan index; see
    /// [`SystemParams::with_index_config`]).
    pub fn new(sketch: ChebyshevSketch, key_len: usize, dsa: DsaParams) -> Self {
        SystemParams {
            sketch,
            key_len,
            dsa,
            index: IndexConfig::default(),
            filter: FilterConfig::default(),
            dedup: DedupPolicy::default(),
        }
    }

    /// Selects the server-side index structure.
    #[must_use]
    pub fn with_index_config(mut self, index: IndexConfig) -> Self {
        self.index = index;
        self
    }

    /// The configured server-side index structure.
    pub fn index_config(&self) -> &IndexConfig {
        &self.index
    }

    /// Tunes the server-side SWAR/SIMD prefilter plane and sweep
    /// policy for the conditions (1)–(4) scan (scan-backed indexes
    /// only; the bucket index verifies hashed candidates and ignores
    /// it). The default keeps the plane on at an adaptive depth chosen
    /// from the ring's rejection rate, with auto-dispatched SIMD and
    /// multi-core fan-out once an arena is large enough;
    /// [`FilterConfig::disabled`] restores the pure scalar kernel.
    #[must_use]
    pub fn with_filter_config(mut self, filter: FilterConfig) -> Self {
        self.filter = filter;
        self
    }

    /// The configured prefilter plane knob.
    pub fn filter_config(&self) -> FilterConfig {
        self.filter
    }

    /// Selects what plain
    /// [`enroll`](crate::AuthenticationServer::enroll) does when the
    /// new sketch already matches an enrolled record (see
    /// [`DedupPolicy`]).
    #[must_use]
    pub fn with_dedup_policy(mut self, dedup: DedupPolicy) -> Self {
        self.dedup = dedup;
        self
    }

    /// The configured enrollment dedup policy.
    pub fn dedup_policy(&self) -> DedupPolicy {
        self.dedup
    }

    /// The paper's Table II configuration with 1024-bit DSA (the classic
    /// strength of the paper's era).
    pub fn paper_defaults() -> Self {
        SystemParams::new(
            ChebyshevSketch::paper_defaults(),
            32,
            DsaParams::dsa_1024_160().clone(),
        )
    }

    /// Table II sketch parameters with **small, insecure** 512-bit DSA —
    /// fast enough for exhaustive test suites.
    pub fn insecure_test_defaults() -> Self {
        SystemParams::new(
            ChebyshevSketch::paper_defaults(),
            32,
            DsaParams::insecure_512().clone(),
        )
    }

    /// The sketch scheme (`La` and `t`).
    pub fn sketch(&self) -> &ChebyshevSketch {
        &self.sketch
    }

    /// Extracted key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// DSA domain parameters.
    pub fn dsa_params(&self) -> &DsaParams {
        &self.dsa
    }

    /// Instantiates the signature scheme.
    pub fn dsa(&self) -> Dsa {
        Dsa::new(self.dsa.clone())
    }

    /// Instantiates the fuzzy extractor (the paper's default stack).
    pub fn fuzzy_extractor(&self) -> fe_core::DefaultFuzzyExtractor {
        fe_core::FuzzyExtractor::with_defaults(self.sketch, self.key_len)
    }

    /// The durable-storage fingerprint of these parameters: an 8-byte
    /// digest over everything that affects how a stored enrollment
    /// record is *interpreted* — the number line `(a, k, v)`, the
    /// threshold `t`, the extracted key length, and the DSA domain
    /// `(p, q, g)`.
    ///
    /// Every on-disk artifact embeds this value; recovery under changed
    /// parameters fails with
    /// [`CodecError::FingerprintMismatch`](fe_core::codec::CodecError)
    /// instead of silently matching probes against a re-interpreted ring.
    /// The [`IndexConfig`], [`FilterConfig`] and [`DedupPolicy`] are
    /// deliberately **excluded**: index and prefilter are lookup
    /// accelerators rebuilt at recovery time, and the dedup policy
    /// governs *future* enrollments without changing how stored
    /// records are read — so snapshots stay portable across index
    /// backends, shard counts, prefilter settings and admission
    /// policies.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut w = Writer::new();
        w.put_u64(self.sketch.line().a());
        w.put_u64(self.sketch.line().k());
        w.put_u64(self.sketch.line().v());
        w.put_u64(self.sketch.threshold());
        w.put_u64(self.key_len as u64);
        w.put_bytes(&self.dsa.p().to_bytes_be());
        w.put_bytes(&self.dsa.q().to_bytes_be());
        w.put_bytes(&self.dsa.g().to_bytes_be());
        Fingerprint::of(w.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_defaults_shape() {
        let p = SystemParams::insecure_test_defaults();
        assert_eq!(p.sketch().line().a(), 100);
        assert_eq!(p.sketch().threshold(), 100);
        assert_eq!(p.key_len(), 32);
        assert_eq!(p.dsa_params().bits(), (512, 160));
    }

    #[test]
    fn fuzzy_extractor_instantiates() {
        let p = SystemParams::insecure_test_defaults();
        let fe = p.fuzzy_extractor();
        assert_eq!(fe.sketcher().threshold(), 100);
    }

    #[test]
    fn fingerprint_tracks_interpretation_not_index() {
        let p = SystemParams::insecure_test_defaults();
        let fp = p.fingerprint();
        // Stable across calls, index configs, and prefilter configs…
        assert_eq!(fp, p.fingerprint());
        assert_eq!(
            fp,
            p.clone()
                .with_index_config(IndexConfig::ShardedScan { shards: 8 })
                .fingerprint()
        );
        assert_eq!(
            fp,
            p.clone()
                .with_filter_config(FilterConfig::disabled())
                .fingerprint()
        );
        // …but sensitive to anything that changes record meaning.
        let other = SystemParams::new(*p.sketch(), p.key_len() + 1, p.dsa_params().clone());
        assert_ne!(fp, other.fingerprint());
        assert_ne!(fp, SystemParams::paper_defaults().fingerprint());
    }

    #[test]
    fn index_config_defaults_and_builder() {
        let p = SystemParams::insecure_test_defaults();
        assert_eq!(*p.index_config(), IndexConfig::Scan);
        assert_eq!(p.index_config().shards(), 1);
        assert_eq!(
            p.index_config().prefix_dims(),
            IndexConfig::DEFAULT_PREFIX_DIMS
        );

        let p = p.with_index_config(IndexConfig::ShardedBucket {
            shards: 8,
            prefix_dims: 3,
        });
        assert_eq!(p.index_config().shards(), 8);
        assert_eq!(p.index_config().prefix_dims(), 3);
        // Degenerate shard counts are clamped to 1.
        assert_eq!(IndexConfig::ShardedScan { shards: 0 }.shards(), 1);
    }

    #[test]
    fn dedup_policy_defaults_builder_and_fingerprint_neutrality() {
        let p = SystemParams::insecure_test_defaults();
        assert_eq!(p.dedup_policy(), DedupPolicy::Permissive);
        let fp = p.fingerprint();
        let p = p.with_dedup_policy(DedupPolicy::RejectMatching);
        assert_eq!(p.dedup_policy(), DedupPolicy::RejectMatching);
        // Admission policy never changes how stored records are read.
        assert_eq!(fp, p.fingerprint());
    }

    #[test]
    fn filter_config_defaults_and_builder() {
        use fe_core::{ParallelConfig, PlaneDepth};
        let p = SystemParams::insecure_test_defaults();
        assert_eq!(p.filter_config(), FilterConfig::default());
        assert_eq!(p.filter_config().depth, PlaneDepth::Adaptive);
        assert_eq!(p.filter_config().parallel, ParallelConfig::default());
        let p = p.with_filter_config(FilterConfig::disabled());
        assert_eq!(p.filter_config().depth, PlaneDepth::Fixed(0));
        // The whole sweep policy travels through SystemParams.
        let p =
            p.with_filter_config(FilterConfig::default().with_parallel(ParallelConfig::forced(2)));
        assert_eq!(p.filter_config().parallel.max_threads, 2);
        // The plane width knob rides along like the rest of the config.
        use fe_core::PlaneWidth;
        assert_eq!(p.filter_config().width, PlaneWidth::Auto);
        let p = p.with_filter_config(FilterConfig::default().with_width(PlaneWidth::U16));
        assert_eq!(p.filter_config().width, PlaneWidth::U16);
        let p = p.with_filter_config(FilterConfig::default().with_width(PlaneWidth::U8));
        assert_eq!(p.filter_config().width, PlaneWidth::U8);
    }
}
