//! The [`Digest`] trait abstracting over hash functions.

/// A cryptographic hash function with incremental input.
///
/// Implemented by [`crate::Sha256`] and [`crate::Sha512`]; consumed
/// generically by [`crate::Hmac`], [`crate::Hkdf`] and the robust-sketch
/// construction in `fe-core`.
///
/// ```rust
/// use fe_crypto::{Digest, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
pub trait Digest: Clone {
    /// Digest output length in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block length in bytes (needed by HMAC).
    const BLOCK_LEN: usize;

    /// Creates a fresh hasher state.
    fn new() -> Self;

    /// Absorbs input bytes.
    fn update(&mut self, data: &[u8]);

    /// Consumes the state and returns the digest
    /// (`OUTPUT_LEN` bytes).
    fn finalize(self) -> Vec<u8>;

    /// One-shot convenience: hash `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }
}
