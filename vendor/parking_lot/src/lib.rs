//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API:
//! a panic while holding a guard simply releases the lock for the next
//! acquirer instead of poisoning it (matching `parking_lot` semantics
//! closely enough for this workspace's servers and tests).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let lock = Arc::new(RwLock::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("die holding the lock");
        })
        .join();
        *lock.write() = 5; // must not panic on poisoning
        assert_eq!(*lock.read(), 5);
    }

    #[test]
    fn mutex_works() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
