//! Lp norms (Sec. II-B of the paper) on real-valued feature vectors.

use crate::Metric;

/// The general Lp distance `(Σ |x_i - y_i|^p)^(1/p)` for `p >= 1`.
///
/// The special cases have dedicated constants: [`L1`], [`L2`] and the
/// maximum norm [`LINF`] (the `p → ∞` limit, i.e. the continuous analogue
/// of the paper's Chebyshev distance).
///
/// ```rust
/// use fe_metrics::{LpNorm, Metric, L1, L2, LINF};
///
/// let a = [0.0, 0.0];
/// let b = [3.0, 4.0];
/// assert_eq!(L1.distance(&a[..], &b[..]), 7.0);
/// assert_eq!(L2.distance(&a[..], &b[..]), 5.0);
/// assert_eq!(LINF.distance(&a[..], &b[..]), 4.0);
/// assert!((LpNorm::new(3.0).distance(&a[..], &b[..]) - 4.497941).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpNorm {
    p: f64,
}

/// Manhattan distance (`p = 1`).
pub const L1: LpNorm = LpNorm { p: 1.0 };
/// Euclidean distance (`p = 2`).
pub const L2: LpNorm = LpNorm { p: 2.0 };
/// Maximum norm (`p = ∞`).
pub const LINF: LpNorm = LpNorm { p: f64::INFINITY };

impl LpNorm {
    /// Creates the Lp metric.
    ///
    /// # Panics
    /// Panics if `p < 1` (the triangle inequality fails for `p < 1`).
    pub fn new(p: f64) -> Self {
        assert!(p >= 1.0, "Lp norm requires p >= 1");
        LpNorm { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Metric<[f64]> for LpNorm {
    type Distance = f64;

    /// # Panics
    /// Panics if the vectors have different lengths.
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        if self.p.is_infinite() {
            return a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
        }
        let sum: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs().powf(self.p))
            .sum();
        sum.powf(1.0 / self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_345_triangle() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(L2.distance(&a[..], &b[..]), 5.0);
        assert_eq!(L1.distance(&a[..], &b[..]), 7.0);
        assert_eq!(LINF.distance(&a[..], &b[..]), 4.0);
    }

    #[test]
    fn lp_decreases_in_p() {
        // For fixed vectors, ||·||_p is non-increasing in p.
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 2.0, 3.0];
        let mut prev = f64::INFINITY;
        for p in [1.0, 1.5, 2.0, 3.0, 10.0] {
            let d = LpNorm::new(p).distance(&a[..], &b[..]);
            assert!(d <= prev + 1e-12, "p={p}");
            prev = d;
        }
        assert!(LINF.distance(&a[..], &b[..]) <= prev);
    }

    #[test]
    fn identity_and_symmetry() {
        let a = [1.5, -2.5];
        let b = [0.25, 8.0];
        assert_eq!(L2.distance(&a[..], &a[..]), 0.0);
        assert_eq!(L2.distance(&a[..], &b[..]), L2.distance(&b[..], &a[..]));
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn sub_one_p_rejected() {
        LpNorm::new(0.5);
    }
}
