//! Schnorr signatures over the DSA subgroup.
//!
//! Used by the crypto ablation benchmark: same group, different signing
//! equation — one fewer modular inversion than DSA on the signing path.

use crate::dsa::DsaParams;
use crate::sig::SignatureScheme;
use crate::{Digest, Sha256};
use fe_bigint::Natural;
use std::fmt;

/// Schnorr signature scheme over `(p, q, g)` domain parameters.
///
/// Signing: `k ← H(x, m)`-derived nonce, `r = g^k mod p`,
/// `e = H(r ‖ m) mod q`, `s = k + x·e mod q`; signature is `(e, s)`.
/// Verification recomputes `r' = g^s · y^{-e} mod p` and accepts iff
/// `H(r' ‖ m) mod q == e`.
///
/// ```rust
/// use fe_crypto::dsa::DsaParams;
/// use fe_crypto::schnorr::Schnorr;
/// use fe_crypto::sig::SignatureScheme;
///
/// let scheme = Schnorr::new(DsaParams::insecure_512().clone());
/// let (sk, vk) = scheme.keypair_from_seed(b"R");
/// let sig = scheme.sign(&sk, b"challenge");
/// assert!(scheme.verify(&vk, b"challenge", &sig));
/// ```
#[derive(Debug, Clone)]
pub struct Schnorr {
    params: DsaParams,
}

/// Schnorr signing key (secret scalar `x`).
#[derive(Clone)]
pub struct SchnorrSigningKey {
    x: Natural,
}

impl fmt::Debug for SchnorrSigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchnorrSigningKey").finish_non_exhaustive()
    }
}

/// Schnorr verification key (`y = g^x mod p`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchnorrVerifyingKey {
    y: Natural,
}

/// A Schnorr signature `(e, s)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchnorrSignature {
    e: Natural,
    s: Natural,
}

impl SchnorrSignature {
    /// Serializes as `e || s`, each padded to the scalar width.
    pub fn to_bytes(&self, params: &DsaParams) -> Vec<u8> {
        let len = params.scalar_len();
        let mut out = self.e.to_bytes_be_padded(len);
        out.extend(self.s.to_bytes_be_padded(len));
        out
    }

    /// Parses `e || s`; `None` if the length is wrong.
    pub fn from_bytes(bytes: &[u8], params: &DsaParams) -> Option<SchnorrSignature> {
        let len = params.scalar_len();
        if bytes.len() != 2 * len {
            return None;
        }
        Some(SchnorrSignature {
            e: Natural::from_bytes_be(&bytes[..len]),
            s: Natural::from_bytes_be(&bytes[len..]),
        })
    }
}

impl Schnorr {
    /// Creates the scheme from DSA-style domain parameters.
    pub fn new(params: DsaParams) -> Schnorr {
        Schnorr { params }
    }

    /// Borrows the domain parameters.
    pub fn params(&self) -> &DsaParams {
        &self.params
    }

    fn challenge(&self, r: &Natural, msg: &[u8]) -> Natural {
        let mut h = Sha256::new();
        h.update(&r.to_bytes_be_padded(self.params.element_len()));
        h.update(msg);
        Natural::from_bytes_be(&h.finalize()).rem_nat(self.params.q())
    }
}

impl SignatureScheme for Schnorr {
    type SigningKey = SchnorrSigningKey;
    type VerifyingKey = SchnorrVerifyingKey;
    type Signature = SchnorrSignature;

    fn keypair_from_seed(&self, seed: &[u8]) -> (SchnorrSigningKey, SchnorrVerifyingKey) {
        let x = self.params.scalar_from_seed(seed, b"fe-schnorr-keygen");
        let y = self.params.g().mod_pow(&x, self.params.p());
        (SchnorrSigningKey { x }, SchnorrVerifyingKey { y })
    }

    fn sign(&self, key: &SchnorrSigningKey, msg: &[u8]) -> SchnorrSignature {
        let q = self.params.q();
        // Deterministic nonce from (x, H(m)).
        let mut seed = key.x.to_bytes_be_padded(self.params.scalar_len());
        seed.extend(Sha256::digest(msg));
        let k = self.params.scalar_from_seed(&seed, b"fe-schnorr-nonce");
        let r = self.params.g().mod_pow(&k, self.params.p());
        let e = self.challenge(&r, msg);
        let s = k.mod_add(&key.x.mod_mul(&e, q), q);
        SchnorrSignature { e, s }
    }

    fn verify(&self, key: &SchnorrVerifyingKey, msg: &[u8], sig: &SchnorrSignature) -> bool {
        let p = self.params.p();
        let q = self.params.q();
        if &sig.e >= q || &sig.s >= q {
            return false;
        }
        if key.y.is_zero() || key.y.is_one() || &key.y >= p {
            return false;
        }
        // r' = g^s * y^{-e} = g^s * y^(q-e) mod p.
        let neg_e = if sig.e.is_zero() {
            Natural::zero()
        } else {
            q.checked_sub(&sig.e).expect("e < q")
        };
        let r = self
            .params
            .g()
            .mod_pow(&sig.s, p)
            .mod_mul(&key.y.mod_pow(&neg_e, p), p);
        self.challenge(&r, msg) == sig.e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> Schnorr {
        Schnorr::new(DsaParams::insecure_512().clone())
    }

    #[test]
    fn sign_verify_roundtrip() {
        let s = scheme();
        let (sk, vk) = s.keypair_from_seed(b"seed");
        let sig = s.sign(&sk, b"msg");
        assert!(s.verify(&vk, b"msg", &sig));
    }

    #[test]
    fn rejects_wrong_message_and_key() {
        let s = scheme();
        let (sk, vk) = s.keypair_from_seed(b"seed");
        let (_, vk2) = s.keypair_from_seed(b"other");
        let sig = s.sign(&sk, b"msg");
        assert!(!s.verify(&vk, b"other msg", &sig));
        assert!(!s.verify(&vk2, b"msg", &sig));
    }

    #[test]
    fn rejects_malleated_signature() {
        let s = scheme();
        let (sk, vk) = s.keypair_from_seed(b"seed");
        let sig = s.sign(&sk, b"msg");
        let tampered = SchnorrSignature {
            e: sig.e.clone(),
            s: sig.s.mod_add(&Natural::one(), s.params().q()),
        };
        assert!(!s.verify(&vk, b"msg", &tampered));
    }

    #[test]
    fn deterministic_in_seed_and_message() {
        let s = scheme();
        let (sk1, vk1) = s.keypair_from_seed(b"seed");
        let (_sk2, vk2) = s.keypair_from_seed(b"seed");
        assert_eq!(vk1, vk2);
        assert_eq!(s.sign(&sk1, b"m"), s.sign(&sk1, b"m"));
    }

    #[test]
    fn bytes_roundtrip() {
        let s = scheme();
        let (sk, vk) = s.keypair_from_seed(b"seed");
        let sig = s.sign(&sk, b"msg");
        let bytes = sig.to_bytes(s.params());
        let back = SchnorrSignature::from_bytes(&bytes, s.params()).unwrap();
        assert!(s.verify(&vk, b"msg", &back));
    }

    #[test]
    fn out_of_range_rejected() {
        let s = scheme();
        let (sk, vk) = s.keypair_from_seed(b"seed");
        let sig = s.sign(&sk, b"msg");
        let bad = SchnorrSignature {
            e: s.params().q().clone(),
            s: sig.s,
        };
        assert!(!s.verify(&vk, b"msg", &bad));
    }
}
