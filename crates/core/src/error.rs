//! Error types for the fuzzy-extractor core.

use std::error::Error;
use std::fmt;

/// Errors from sketch construction, generation and recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchError {
    /// Number line / sketch parameters are invalid (e.g. `k` odd,
    /// `t >= ka/2`, zero unit).
    BadParameters,
    /// Input vector length differs from what the helper data expects.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Received dimension.
        got: usize,
    },
    /// The reading is farther than the threshold `t` from the enrolled
    /// value: recovery aborted (the paper's `⊥`).
    OutOfRange,
    /// The robust sketch's hash check failed: helper data was corrupted or
    /// tampered with, or recovery produced a wrong value.
    TagMismatch,
    /// Baseline-specific decoding failure (BCH/vault could not correct).
    DecodeFailure,
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::BadParameters => write!(f, "invalid sketch parameters"),
            SketchError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            SketchError::OutOfRange => {
                write!(f, "reading exceeds the acceptance threshold")
            }
            SketchError::TagMismatch => {
                write!(f, "helper data integrity check failed")
            }
            SketchError::DecodeFailure => write!(f, "error correction failed"),
        }
    }
}

impl Error for SketchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SketchError::BadParameters.to_string().contains("invalid"));
        assert!(SketchError::OutOfRange.to_string().contains("threshold"));
        assert!(SketchError::TagMismatch.to_string().contains("integrity"));
        assert_eq!(
            SketchError::DimensionMismatch {
                expected: 3,
                got: 4
            }
            .to_string(),
            "dimension mismatch: expected 3, got 4"
        );
    }

    #[test]
    fn error_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SketchError>();
    }
}
