//! Cross-crate property-based tests: the paper's theorems as proptest
//! properties over randomized configurations.

use fuzzy_id::core::conditions::{cyclic_close, paper_conditions_hold, sketches_match};
use fuzzy_id::core::{
    ChebyshevSketch, FuzzyExtractor, NumberLine, ScanIndex, SecureSketch, ShardedIndex, SketchIndex,
};
use fuzzy_id::metrics::{Metric, RingChebyshev};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random but always-valid (line, threshold) configurations.
/// `a >= 2` keeps the interval length `ka >= 4`, so a threshold
/// `1 <= t < ka/2` always exists.
fn line_and_t() -> impl Strategy<Value = (NumberLine, u64)> {
    (2u64..50, 1u64..6, 2u64..40).prop_flat_map(|(a, half_k, v)| {
        let k = half_k * 2;
        let line = NumberLine::new(a, k, v).expect("valid by construction");
        let t_max = line.interval_len() / 2 - 1;
        (Just(line), 1..=t_max)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 (forward direction): any reading within cyclic Chebyshev
    /// distance t recovers the enrolled vector exactly.
    #[test]
    fn theorem1_recovery_within_t(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..20,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        prop_assert_eq!(scheme.recover(&noisy, &sketch).unwrap(), x);
    }

    /// Theorem 1 (converse): a reading farther than t in some coordinate
    /// either fails or recovers a *different* vector — never silently the
    /// right one.
    #[test]
    fn theorem1_no_false_recovery(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..10,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let mut bad = x.clone();
        // Push one coordinate strictly beyond t (cyclically).
        let delta = (t + 1).min(line.period() / 2) as i64;
        bad[0] = line.wrap(bad[0] + delta);
        let ring = RingChebyshev::new(line.period());
        prop_assume!(ring.distance(&x[..], &bad[..]) > t);
        match scheme.recover(&bad, &sketch) {
            Err(_) => {}
            Ok(recovered) => prop_assert_ne!(recovered, x),
        }
    }

    /// The sketch never stores anything but bounded movements:
    /// |s_i| ≤ ka/2 — the Theorem 3 storage accounting assumption.
    #[test]
    fn sketch_values_bounded(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..20,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let half = (line.interval_len() / 2) as i64;
        prop_assert!(sketch.iter().all(|&s| -half <= s && s <= half));
    }

    /// Theorem 2 equivalence: the paper's four conditions equal the
    /// cyclic-distance test for all legal sketch pairs.
    #[test]
    fn conditions_equal_cyclic(
        ka_half in 2i64..500,
        t_raw in 1u64..500,
        s in -500i64..=500,
        sp in -500i64..=500,
    ) {
        let ka = (2 * ka_half) as u64;
        let t = t_raw % (ka / 2);
        prop_assume!(t >= 1);
        let s = s.clamp(-ka_half, ka_half);
        let sp = sp.clamp(-ka_half, ka_half);
        prop_assert_eq!(
            paper_conditions_hold(s, sp, t, ka),
            cyclic_close(s, sp, t, ka)
        );
    }

    /// Theorem 2 (completeness): sketches of close readings always match.
    #[test]
    fn close_readings_always_match(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..16,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        let sx = scheme.sketch(&x, &mut rng).unwrap();
        let sy = scheme.sketch(&noisy, &mut rng).unwrap();
        prop_assert!(sketches_match(&sx, &sy, t, line.interval_len()));
    }

    /// Full fuzzy extractor roundtrip under random configurations.
    #[test]
    fn fuzzy_extractor_roundtrip(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..12,
        key_len in 16usize..48,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let fe = FuzzyExtractor::with_defaults(scheme, key_len);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let (key, helper) = fe.generate(&x, &mut rng).unwrap();
        prop_assert_eq!(key.len(), key_len);
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        prop_assert_eq!(fe.reproduce(&noisy, &helper).unwrap(), key);
    }

    /// Sharding is transparent: on a random sketch population,
    /// `ShardedIndex<ScanIndex>` and a plain `ScanIndex` assign the same
    /// record ids and return identical `lookup` / `lookup_all` /
    /// `lookup_batch` results — including after random removals, which
    /// must leave the surviving ids stable.
    #[test]
    fn sharded_index_equivalent_to_scan(
        shards in 1usize..=6,
        users in 1usize..60,
        dim in 1usize..8,
        seed in any::<u64>(),
        removal_mask in any::<u64>(),
    ) {
        const T: u64 = 100;
        const KA: u64 = 400;
        let mut rng = StdRng::seed_from_u64(seed);
        let half = (KA / 2) as i64;

        // Random sketch population (coordinates span the legal sketch
        // range [-ka/2, ka/2]; duplicates and near-duplicates arise
        // naturally, which is exactly what lookup_all must agree on).
        let sketches: Vec<Vec<i64>> = (0..users)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        use rand::Rng;
                        rng.gen_range(-half..=half)
                    })
                    .collect()
            })
            .collect();

        let mut scan = ScanIndex::new(T, KA);
        let mut sharded = ShardedIndex::scan(shards, T, KA);
        for s in &sketches {
            let a = scan.insert(s.clone());
            let b = sharded.insert(s.clone());
            prop_assert_eq!(a, b, "ids must be assigned identically");
        }

        // Random removals (bit u of the mask removes user u).
        for u in 0..users.min(64) {
            if removal_mask & (1 << u) != 0 {
                prop_assert_eq!(scan.remove(u), sharded.remove(u));
            }
        }
        prop_assert_eq!(scan.len(), sharded.len());

        // Probes: every enrolled sketch plus a perturbed copy.
        let mut probes = sketches.clone();
        probes.extend(sketches.iter().map(|s| {
            s.iter()
                .map(|&c| {
                    use rand::Rng;
                    (c + rng.gen_range(-(T as i64)..=T as i64)).clamp(-half, half)
                })
                .collect::<Vec<i64>>()
        }));

        for probe in &probes {
            prop_assert_eq!(scan.lookup(probe), sharded.lookup(probe));
            prop_assert_eq!(scan.lookup_all(probe), sharded.lookup_all(probe));
        }
        prop_assert_eq!(scan.lookup_batch(&probes), sharded.lookup_batch(&probes));
    }

    /// Ring-wrap invariance: shifting the whole input by one full period
    /// leaves the sketch-recovered value unchanged.
    #[test]
    fn period_shift_invariance(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..10,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let shifted: Vec<i64> = x.iter().map(|&v| v + line.period() as i64).collect();
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        prop_assert_eq!(
            scheme.recover(&shifted, &sketch).unwrap(),
            x
        );
    }
}
