//! Offline, API-compatible subset of `rayon`.
//!
//! Provides `par_iter()` over slices with `map` / `filter_map` /
//! `enumerate` / `for_each` / `collect` / `find_map_first`, executed on
//! a **persistent pooled executor** (one lazily-spawned helper thread
//! per hardware thread beyond the first; the calling thread always
//! participates). Unlike real rayon the adaptors are **eager** — each
//! stage materializes its results — which is equivalent for this
//! workspace's usage (coarse-grained shard and batch fan-out) and keeps
//! the shim tiny.
//!
//! `map`/`collect` preserve input order, and `find_map_first` returns
//! the match with the lowest index (cancelling workers that can no
//! longer win), matching rayon's semantics.
//!
//! Shim-specific extensions used by `fe-core`'s parallel block-sweep:
//! [`scope_for_each`] (index-addressed fan-out over the pool),
//! [`current_num_threads`], [`ensure_threads`] (test hook to exercise
//! real multi-threading on small hosts), and [`in_pool_worker`]
//! (nested-fan-out suppression).

#![deny(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use pool::{current_num_threads, ensure_threads, in_pool_worker, scope_for_each};

/// The persistent worker pool behind every adaptor.
///
/// This is the only module in the shim (and the workspace's vendor
/// tree) that needs `unsafe`: a fan-out hands workers a borrow of the
/// caller's closure, and the borrow's lifetime is erased so jobs can
/// sit in a `'static` queue. Soundness rests on one invariant, enforced
/// by [`scope_for_each`]: the submitting frame blocks until every call
/// has finished, so the erased borrow outlives every dereference.
#[allow(unsafe_code)]
mod pool {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

    /// One fan-out: `n` index-addressed calls into a lifetime-erased
    /// task.
    struct Job {
        /// The caller's task with its borrow lifetime erased.
        ///
        /// Only dereferenced after a successful claim (`i < n`), which
        /// can only happen while the owning [`scope_for_each`] frame is
        /// still blocked on the latch; exhausted jobs are pruned from
        /// the queue and never dereferenced again.
        task: *const (dyn Fn(usize) + Sync + 'static),
        n: usize,
        /// Next unclaimed call index (claims may overshoot `n`).
        next: AtomicUsize,
        /// Completed calls; the job is finished when this reaches `n`.
        done: AtomicUsize,
        finished: Mutex<bool>,
        latch: Condvar,
    }

    // SAFETY: the erased task is `Sync` (shared calls from many
    // threads are its contract) and is only dereferenced while the
    // submitting frame keeps the pointee alive (see `Job::task`).
    unsafe impl Send for Job {}
    unsafe impl Sync for Job {}

    struct State {
        /// Pending fan-outs, oldest first. Jobs whose claim cursor has
        /// passed `n` are pruned on the next worker wakeup.
        jobs: Vec<Arc<Job>>,
        /// Helper threads spawned so far (process-lifetime).
        helpers: usize,
    }

    struct Pool {
        state: Mutex<State>,
        work: Condvar,
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    fn pool() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State {
                jobs: Vec::new(),
                helpers: 0,
            }),
            work: Condvar::new(),
        })
    }

    thread_local! {
        static IS_WORKER: Cell<bool> = const { Cell::new(false) };
    }

    /// True on pool helper threads. Parallel kernels use this to stay
    /// sequential when they are already running *inside* a fan-out, so
    /// nested parallelism cannot multiply threads.
    pub fn in_pool_worker() -> bool {
        IS_WORKER.get()
    }

    fn hardware_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Grows the pool so at least `n` threads (helpers plus the caller)
    /// can serve a fan-out concurrently. Helpers persist for the
    /// process lifetime and park on a condvar when idle. Called lazily
    /// with the hardware thread count; tests call it explicitly to
    /// exercise real multi-threading on small hosts.
    pub fn ensure_threads(n: usize) {
        let p = pool();
        let mut st = lock(&p.state);
        while st.helpers + 1 < n {
            let name = format!("fe-rayon-{}", st.helpers);
            st.helpers += 1;
            std::thread::Builder::new()
                .name(name)
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
    }

    /// Threads that participate in a fan-out: the persistent helpers
    /// plus the calling thread itself.
    pub fn current_num_threads() -> usize {
        ensure_threads(hardware_threads());
        lock(&pool().state).helpers + 1
    }

    fn worker_loop() {
        IS_WORKER.set(true);
        let p = pool();
        loop {
            let job = {
                let mut st = lock(&p.state);
                loop {
                    st.jobs.retain(|j| j.next.load(Ordering::Relaxed) < j.n);
                    if let Some(j) = st.jobs.first() {
                        break Arc::clone(j);
                    }
                    st = p.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            run(&job);
        }
    }

    /// Claims and runs calls from `job` until the cursor passes `n`.
    fn run(job: &Job) {
        loop {
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.n {
                return;
            }
            // SAFETY: `i < n`, so the submitting frame is still blocked
            // on the latch and the erased borrow is live.
            let task = unsafe { &*job.task };
            task(i);
            if job.done.fetch_add(1, Ordering::AcqRel) + 1 == job.n {
                *lock(&job.finished) = true;
                job.latch.notify_all();
            }
        }
    }

    /// Runs `task(0)..task(n-1)` across the pool — the calling thread
    /// included — returning once every call has finished. Calls are
    /// claimed in index order. Nested use is fine: the caller claims
    /// work itself before waiting, so a fan-out from inside a pool
    /// worker cannot deadlock (it merely runs on fewer threads).
    pub fn scope_for_each(n: usize, task: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        let threads = current_num_threads();
        if n == 1 || threads <= 1 {
            for i in 0..n {
                task(i);
            }
            return;
        }
        // SAFETY: erases the borrow lifetime so the job can sit in the
        // 'static queue; the latch wait below keeps this frame — and
        // thus the borrow — alive until `done == n`.
        let task: *const (dyn Fn(usize) + Sync + 'static) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync + 'static)>(
                task,
            )
        };
        let job = Arc::new(Job {
            task,
            n,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            finished: Mutex::new(false),
            latch: Condvar::new(),
        });
        let p = pool();
        lock(&p.state).jobs.push(Arc::clone(&job));
        p.work.notify_all();
        run(&job);
        let mut fin = lock(&job.finished);
        while !*fin {
            fin = job.latch.wait(fin).unwrap_or_else(|e| e.into_inner());
        }
        drop(fin);
        lock(&p.state).jobs.retain(|j| !Arc::ptr_eq(j, &job));
    }
}

/// Splits `len` items into at most `chunks` contiguous ranges.
fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let per = len.div_ceil(chunks.max(1));
    (0..chunks.max(1))
        .map(|w| (w * per, ((w + 1) * per).min(len)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// An eager parallel iterator holding its items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Splits the owned items into per-chunk vectors matching `bounds`.
    fn split_chunks(items: Vec<I>, bounds: &[(usize, usize)]) -> Vec<Mutex<Vec<I>>> {
        let mut rest = items;
        let mut chunks: Vec<Mutex<Vec<I>>> = Vec::with_capacity(bounds.len());
        for &(lo, _hi) in bounds.iter().rev() {
            chunks.push(Mutex::new(rest.split_off(lo)));
        }
        chunks.reverse();
        chunks
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let n = self.items.len();
        let threads = pool::current_num_threads();
        if threads <= 1 || n <= 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let bounds = chunk_bounds(n, threads.min(n));
        let chunks = Self::split_chunks(self.items, &bounds);
        let slots: Vec<Mutex<Vec<R>>> = bounds.iter().map(|_| Mutex::new(Vec::new())).collect();
        pool::scope_for_each(bounds.len(), &|ci| {
            let chunk = std::mem::take(&mut *lock(&chunks[ci]));
            *lock(&slots[ci]) = chunk.into_iter().map(&f).collect();
        });
        let mut items = Vec::with_capacity(n);
        for slot in slots {
            items.append(&mut lock(&slot));
        }
        ParIter { items }
    }

    /// `map` + drop `None` results, preserving order.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> Option<R> + Sync,
    {
        let mapped = self.map(f);
        ParIter {
            items: mapped.items.into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        self.map(f).items.clear();
    }

    /// Collects the (already materialized) items.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// The minimum item, if any (items are already materialized, so
    /// this is a plain reduction).
    pub fn min(self) -> Option<I>
    where
        I: Ord,
    {
        self.items.into_iter().min()
    }

    /// Returns `f`'s result for the lowest-indexed item where it is
    /// `Some`, cancelling workers whose remaining indices cannot win.
    pub fn find_map_first<R, F>(self, f: F) -> Option<R>
    where
        R: Send,
        F: Fn(I) -> Option<R> + Sync,
    {
        let n = self.items.len();
        let threads = pool::current_num_threads();
        if threads <= 1 || n <= 1 {
            return self.items.into_iter().find_map(f);
        }
        let bounds = chunk_bounds(n, threads.min(n));
        let chunks = Self::split_chunks(self.items, &bounds);
        let best_idx = AtomicUsize::new(usize::MAX);
        let best: Mutex<Option<(usize, R)>> = Mutex::new(None);
        pool::scope_for_each(bounds.len(), &|ci| {
            let lo = bounds[ci].0;
            let chunk = std::mem::take(&mut *lock(&chunks[ci]));
            for (off, item) in chunk.into_iter().enumerate() {
                let idx = lo + off;
                if best_idx.load(Ordering::Acquire) < idx {
                    return; // an earlier match already won
                }
                if let Some(r) = f(item) {
                    best_idx.fetch_min(idx, Ordering::AcqRel);
                    let mut guard = lock(&best);
                    match guard.as_ref() {
                        Some((cur, _)) if *cur <= idx => {}
                        _ => *guard = Some((idx, r)),
                    }
                    return;
                }
            }
        });
        let winner = lock(&best).take();
        winner.map(|(_, r)| r)
    }
}

/// `.par_iter()` on shared slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'data> {
    /// The per-item reference type.
    type Item: Send;
    /// Starts a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Consuming parallel iteration over owned collections.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;
    /// Starts a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map() {
        let input = ["a", "b", "c"];
        let out: Vec<String> = input
            .par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn find_map_first_returns_lowest_index() {
        let input: Vec<u64> = (0..100_000).collect();
        // Many items qualify; the first (index 17) must win every time.
        for _ in 0..20 {
            let found = input.par_iter().find_map_first(|&x| (x >= 17).then_some(x));
            assert_eq!(found, Some(17));
        }
    }

    #[test]
    fn find_map_first_none_when_absent() {
        let input: Vec<u64> = (0..1000).collect();
        assert_eq!(
            input
                .par_iter()
                .find_map_first(|&x| (x > 5000).then_some(x)),
            None
        );
    }

    #[test]
    fn filter_map_drops_none() {
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = input
            .par_iter()
            .filter_map(|&x| (x % 10 == 0).then_some(x))
            .collect();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn into_par_iter_owned() {
        let out: Vec<u64> = vec![3u64, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        assert_eq!(empty.par_iter().find_map_first(|&x| Some(x)), None);
    }

    #[test]
    fn ensure_threads_grows_the_pool() {
        super::ensure_threads(4);
        assert!(super::current_num_threads() >= 4);
    }

    #[test]
    fn scope_for_each_runs_every_index_exactly_once() {
        super::ensure_threads(4);
        // Repeated fan-outs reuse the persistent pool; every index must
        // run exactly once per fan-out.
        for n in [1usize, 2, 3, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            super::scope_for_each(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        super::ensure_threads(4);
        let total = AtomicUsize::new(0);
        super::scope_for_each(8, &|_| {
            super::scope_for_each(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn in_pool_worker_is_false_on_callers() {
        assert!(!super::in_pool_worker());
    }
}
