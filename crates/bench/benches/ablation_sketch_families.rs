//! **Ablation A (ours)**: the paper's Chebyshev sketch vs the classical
//! constructions from its related-work section — code-offset over BCH
//! (Hamming metric) and the fuzzy vault (set metric) — comparing
//! `Gen`/`Rep` cost at comparable security levels.

use criterion::{criterion_group, criterion_main, Criterion};
use fe_core::baselines::{BinaryFuzzyExtractor, FuzzyVault};
use fe_core::{ChebyshevSketch, FuzzyExtractor};
use fe_ecc::Bch;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::time::Duration;

fn bench_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sketch_families");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xAB1A);

    // --- Chebyshev (the paper), n = 5000 ---
    let cheb = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32);
    let bio = cheb.sketcher().line().random_vector(5000, &mut rng);
    group.bench_function("chebyshev_gen_n5000", |b| {
        b.iter(|| cheb.generate(std::hint::black_box(&bio), &mut rng).unwrap())
    });
    let (_, helper) = cheb.generate(&bio, &mut rng).unwrap();
    let noisy: Vec<i64> = bio.iter().map(|x| x + 50).collect();
    group.bench_function("chebyshev_rep_n5000", |b| {
        b.iter(|| {
            cheb.reproduce(std::hint::black_box(&noisy), &helper)
                .unwrap()
        })
    });

    // --- Code-offset BCH(1023, ·, 12): iris-code scale ---
    let binary = BinaryFuzzyExtractor::new(Bch::new(10, 12).unwrap(), 32);
    let code_bits = binary.sketcher().input_len();
    let w = fe_metrics::BitVec::from_fn(code_bits, |_| rng.gen_bool(0.5));
    group.bench_function("code_offset_gen_1023b", |b| {
        b.iter(|| binary.generate(std::hint::black_box(&w), &mut rng).unwrap())
    });
    let (_, bhelper) = binary.generate(&w, &mut rng).unwrap();
    let mut wn = w.clone();
    for i in [5usize, 100, 400, 800, 1000] {
        wn.flip(i);
    }
    group.bench_function("code_offset_rep_1023b_5err", |b| {
        b.iter(|| {
            binary
                .reproduce(std::hint::black_box(&wn), &bhelper)
                .unwrap()
        })
    });

    // --- Fuzzy vault: 24 features, degree-8 secret, 200 chaff ---
    let vault_scheme = FuzzyVault::new(8, 8, 200).unwrap();
    let features: BTreeSet<u16> = (1..=24).collect();
    let secret: Vec<u16> = (40..48).collect();
    group.bench_function("fuzzy_vault_lock", |b| {
        b.iter(|| {
            vault_scheme
                .lock(std::hint::black_box(&features), &secret, &mut rng)
                .unwrap()
        })
    });
    let vault = vault_scheme.lock(&features, &secret, &mut rng).unwrap();
    let reading: BTreeSet<u16> = (3..=26).collect(); // 22-feature overlap
    group.bench_function("fuzzy_vault_unlock", |b| {
        b.iter(|| {
            let got = vault_scheme
                .unlock(std::hint::black_box(&vault), &reading)
                .unwrap();
            assert_eq!(got, secret);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
