//! The columnar sketch storage engine behind every index.
//!
//! # Why not `Vec<Option<Vec<i64>>>`
//!
//! The paper's identification cost is dominated by the per-record integer
//! scan over conditions (1)–(4); at scale that scan is *memory-bound*,
//! not compute-bound. Row-of-pointers storage fights the hardware three
//! ways: one heap allocation and one pointer chase per record, 8 bytes
//! per coordinate when the ring (`ka = 400` at the paper's parameters)
//! fits in 2, and a cloned copy of every sketch on each snapshot or
//! compaction pass. [`SketchArena`] fixes all three:
//!
//! * **One contiguous buffer.** All sketches live in a single
//!   dimension-stamped column buffer (`rows × dim` cells, row-major), so
//!   the early-abort scan walks memory linearly and the prefetcher wins.
//! * **Width-adaptive cells.** Every stored coordinate is the canonical
//!   ring representative (minimal signed residue mod `ka`), so the cell
//!   type — `i16`, `i32` or `i64` — is chosen from `ka` at construction:
//!   paper parameters take 2 bytes/coordinate instead of 8, quadrupling
//!   the number of records per cache line.
//! * **Tombstone bitmap.** Liveness is one bit per row (not an `Option`
//!   discriminant per record), removal is O(1), and
//!   [`SketchArena::compact`] reclaims dead rows in place by sliding
//!   live rows down the same buffer.
//! * **Borrowing iteration.** [`SketchArena::for_each_live`] streams
//!   rows through a caller-visible `&[i64]` scratch row, so snapshot and
//!   compaction passes never clone the whole population.
//!
//! The per-coordinate test itself lives here too, as a slice kernel
//! (`rows_match`) dispatched per cell width: normalization makes the
//! cyclic-distance check branch-free (`min(d, ka − d) ≤ t` with no
//! `%`), which is exactly the [`crate::conditions::cyclic_close`]
//! predicate — the equivalence is property-tested in
//! `tests/properties.rs`.

use super::RecordId;

/// Cell type a [`SketchArena`] stores coordinates in, chosen from the
/// ring circumference `ka` at construction (see
/// [`CellWidth::for_ring`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellWidth {
    /// 2-byte cells: `ka < 2¹⁵` (the paper's `ka = 400` lands here).
    I16,
    /// 4-byte cells: `ka < 2³¹`.
    I32,
    /// 8-byte cells: everything else.
    I64,
}

impl CellWidth {
    /// The narrowest cell that can hold every canonical representative
    /// of `Z_ka` (values in `[−ka/2, ka/2]`).
    pub fn for_ring(ka: u64) -> CellWidth {
        if ka < 1 << 15 {
            CellWidth::I16
        } else if ka < 1 << 31 {
            CellWidth::I32
        } else {
            CellWidth::I64
        }
    }

    /// Bytes per stored coordinate.
    pub fn cell_bytes(self) -> usize {
        match self {
            CellWidth::I16 => 2,
            CellWidth::I32 => 4,
            CellWidth::I64 => 8,
        }
    }
}

/// A coordinate cell: the width-generic bound of the match kernel.
trait Cell: Copy {
    fn widen(self) -> i64;
    fn narrow(v: i64) -> Self;
    /// `|a − b|` as a `u64`, exact for every canonical value of this
    /// width. Narrow cells cannot overflow an `i64` subtraction; `i64`
    /// cells can (canonical values reach `±(2⁶³ − 1)` when
    /// `ka > 2⁶³`), so only that width pays for an `i128` widen.
    fn abs_diff_cells(a: Self, b: Self) -> u64;
}

impl Cell for i16 {
    fn widen(self) -> i64 {
        i64::from(self)
    }
    fn narrow(v: i64) -> i16 {
        v as i16
    }
    fn abs_diff_cells(a: i16, b: i16) -> u64 {
        (i64::from(a) - i64::from(b)).unsigned_abs()
    }
}

impl Cell for i32 {
    fn widen(self) -> i64 {
        i64::from(self)
    }
    fn narrow(v: i64) -> i32 {
        v as i32
    }
    fn abs_diff_cells(a: i32, b: i32) -> u64 {
        (i64::from(a) - i64::from(b)).unsigned_abs()
    }
}

impl Cell for i64 {
    fn widen(self) -> i64 {
        self
    }
    fn narrow(v: i64) -> i64 {
        v
    }
    fn abs_diff_cells(a: i64, b: i64) -> u64 {
        (i128::from(a) - i128::from(b)).unsigned_abs() as u64
    }
}

/// The one column buffer, typed by the arena's cell width.
#[derive(Debug, Clone)]
enum Cells {
    I16(Vec<i16>),
    I32(Vec<i32>),
    I64(Vec<i64>),
}

impl Cells {
    fn with_capacity(width: CellWidth, cells: usize) -> Cells {
        match width {
            CellWidth::I16 => Cells::I16(Vec::with_capacity(cells)),
            CellWidth::I32 => Cells::I32(Vec::with_capacity(cells)),
            CellWidth::I64 => Cells::I64(Vec::with_capacity(cells)),
        }
    }

    fn capacity_bytes(&self) -> usize {
        match self {
            Cells::I16(v) => v.capacity() * 2,
            Cells::I32(v) => v.capacity() * 4,
            Cells::I64(v) => v.capacity() * 8,
        }
    }

    fn reserve(&mut self, cells: usize) {
        match self {
            Cells::I16(v) => v.reserve(cells),
            Cells::I32(v) => v.reserve(cells),
            Cells::I64(v) => v.reserve(cells),
        }
    }

    fn clear(&mut self) {
        match self {
            Cells::I16(v) => v.clear(),
            Cells::I32(v) => v.clear(),
            Cells::I64(v) => v.clear(),
        }
    }

    fn truncate(&mut self, cells: usize) {
        match self {
            Cells::I16(v) => v.truncate(cells),
            Cells::I32(v) => v.truncate(cells),
            Cells::I64(v) => v.truncate(cells),
        }
    }
}

/// A probe sketch pre-normalized into an arena's cell width, so a
/// multi-candidate lookup (the bucket index verifies many rows per
/// probe) converts the probe exactly once.
#[derive(Debug, Clone)]
pub struct NormalizedProbe {
    cells: Cells,
}

/// The canonical ring representative of `v` in `Z_ka`: the minimal
/// signed residue, in `[−(ka−1)/2, ka/2]`. Conditions (1)–(4) are a
/// cyclic distance on `Z_ka`, so they cannot distinguish `v` from
/// `v ± ka` — storing the canonical form loses nothing and is what lets
/// the cell width follow `ka` instead of `i64`.
fn canonical(v: i64, ka: u64) -> i64 {
    // i128: `ka` is a u64, so `v.rem_euclid(ka as i64)` could overflow
    // for ka > i64::MAX; widen once instead of trusting the caller.
    let ka = i128::from(ka);
    let r = i128::from(v).rem_euclid(ka); // r ∈ [0, ka)
    let r = if 2 * r > ka { r - ka } else { r }; // r ∈ [−(ka−1)/2, ka/2]
    r as i64
}

/// The closed interval of already-canonical values for `Z_ka`, clamped
/// to `i64`. Real sketches always land inside it, so the bulk-load hot
/// path reduces canonicalization to two compares per coordinate
/// ([`canonical`]'s `i128` division only runs for out-of-range input).
fn canonical_range(ka: u64) -> (i64, i64) {
    let hi = (ka / 2).min(i64::MAX as u64) as i64;
    let lo = -(((ka - 1) / 2).min(i64::MAX as u64) as i64);
    (lo, hi)
}

/// [`canonical`] with the fast path hoisted out (see
/// [`canonical_range`]).
#[inline]
fn canonical_fast(v: i64, lo: i64, hi: i64, ka: u64) -> i64 {
    if (lo..=hi).contains(&v) {
        v
    } else {
        canonical(v, ka)
    }
}

/// The early-abort slice kernel: does the contiguous row `s` match the
/// normalized probe under conditions (1)–(4)?
///
/// Both sides hold canonical representatives, so `|a − b| ≤ ka − 1` and
/// the cyclic distance is `min(d, ka − d)` with no `%` in the loop —
/// cheaper per coordinate than [`crate::conditions::cyclic_close`] and
/// exactly equivalent to it on canonical values.
#[inline]
fn rows_match<C: Cell>(s: &[C], probe: &[C], t: u64, ka: u64) -> bool {
    s.iter().zip(probe.iter()).all(|(&a, &b)| {
        let d = C::abs_diff_cells(a, b);
        d.min(ka - d) <= t
    })
}

/// A borrowed view of one typed column buffer plus its liveness bitmap:
/// what the blocked scan kernel walks.
struct ColumnView<'a, C> {
    cells: &'a [C],
    live: &'a [u64],
    rows: usize,
    dim: usize,
}

/// Scans the live rows of a column view from `from_row`, calling
/// `on_match` for every matching row until it returns `false`.
///
/// The scan is *blocked* on the liveness bitmap: rows are visited one
/// 64-row word at a time, wholly-dead blocks are skipped with a single
/// load, and within a block each live row is a contiguous `dim`-cell
/// slice — so the early-abort inner loop streams through the column
/// buffer in order.
fn scan_blocks<C: Cell>(
    col: ColumnView<'_, C>,
    probe: &[C],
    t: u64,
    ka: u64,
    from_row: usize,
    on_match: &mut dyn FnMut(RecordId) -> bool,
) {
    let mut word_idx = from_row / 64;
    let Some(&first) = col.live.get(word_idx) else {
        return;
    };
    // Mask off rows below `from_row` in the first word.
    let mut word = first & (u64::MAX << (from_row % 64));
    loop {
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            let row = word_idx * 64 + bit;
            if row >= col.rows {
                return;
            }
            let s = &col.cells[row * col.dim..(row + 1) * col.dim];
            if rows_match(s, probe, t, ka) && !on_match(row) {
                return;
            }
        }
        word_idx += 1;
        match col.live.get(word_idx) {
            Some(&w) => word = w,
            None => return,
        }
    }
}

/// Scans the live rows of a column view **once** on behalf of many
/// probes: every live row is tested against each still-unresolved probe
/// (`active` holds their indices into `results`), and a probe leaves
/// the active set at its first match — so per-probe results equal what
/// `from`-0 [`scan_blocks`] would have returned, while the column
/// buffer is streamed through memory exactly one time instead of once
/// per probe.
///
/// This is the batch kernel behind request scheduling: the scan is
/// memory-bound at scale, so amortizing one pass over N concurrent
/// queries is the whole win. The scan aborts as soon as every probe is
/// resolved.
fn scan_blocks_multi<C: Cell>(
    col: ColumnView<'_, C>,
    probes: &[C],
    t: u64,
    ka: u64,
    active: &mut Vec<usize>,
    results: &mut [Option<RecordId>],
) {
    let mut word_idx = 0usize;
    let Some(&first) = col.live.get(word_idx) else {
        return;
    };
    let mut word = first;
    loop {
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            word &= word - 1;
            let row = word_idx * 64 + bit;
            if row >= col.rows {
                return;
            }
            let s = &col.cells[row * col.dim..(row + 1) * col.dim];
            let mut i = 0;
            while i < active.len() {
                let p = active[i];
                let probe = &probes[p * col.dim..(p + 1) * col.dim];
                if rows_match(s, probe, t, ka) {
                    results[p] = Some(row);
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if active.is_empty() {
                return;
            }
        }
        word_idx += 1;
        match col.live.get(word_idx) {
            Some(&w) => word = w,
            None => return,
        }
    }
}

/// Contiguous, width-adaptive columnar storage for sketches — the
/// storage engine shared by [`ScanIndex`](super::ScanIndex),
/// [`BucketIndex`](super::BucketIndex) and the shards of a
/// [`ShardedIndex`](super::ShardedIndex).
///
/// Rows are assigned densely in insertion order and never renumbered;
/// [`SketchArena::remove`] flips a liveness bit, and
/// [`SketchArena::compact`] slides live rows down in place, returning
/// the renumbering. The arena's dimension is stamped by the first
/// [`SketchArena::push`]; pushing a different dimension panics, and
/// probes of a different dimension match nothing.
///
/// ```rust
/// use fe_core::index::store::{CellWidth, SketchArena};
///
/// let mut arena = SketchArena::new(100, 400); // t, ka
/// assert_eq!(arena.width(), CellWidth::I16);  // chosen from ka
/// let a = arena.push(&[10, -20, 30]);
/// let b = arena.push(&[180, 180, -180]);
/// assert_eq!(arena.find_first(&[15, -25, 35]), Some(a));
/// assert_eq!(arena.find_first(&[185, 175, -185]), Some(b));
/// assert!(arena.remove(a));
/// assert_eq!(arena.find_first(&[15, -25, 35]), None);
/// assert_eq!(arena.compact(), vec![(b, 0)]);
/// assert_eq!(arena.row(0), Some(vec![180, 180, -180]));
/// ```
#[derive(Debug, Clone)]
pub struct SketchArena {
    t: u64,
    ka: u64,
    width: CellWidth,
    /// Stamped by the first push (`None` while empty-and-unstamped).
    dim: Option<usize>,
    cells: Cells,
    /// Liveness bitmap, one bit per row (1 = live).
    live_bits: Vec<u64>,
    rows: usize,
    live: usize,
}

impl SketchArena {
    /// Creates an empty arena for sketches over a ring of circumference
    /// `ka` with threshold `t`. The cell width is fixed here, from `ka`.
    pub fn new(t: u64, ka: u64) -> SketchArena {
        assert!(ka >= 1, "ring circumference must be at least 1");
        let width = CellWidth::for_ring(ka);
        SketchArena {
            t,
            ka,
            width,
            dim: None,
            cells: Cells::with_capacity(width, 0),
            live_bits: Vec::new(),
            rows: 0,
            live: 0,
        }
    }

    /// An empty arena pre-sized for `rows` sketches of `dim` coordinates
    /// (the bulk-load path: snapshot recovery knows both up front).
    pub fn with_capacity(t: u64, ka: u64, rows: usize, dim: usize) -> SketchArena {
        let mut arena = SketchArena::new(t, ka);
        arena.cells.reserve(rows * dim);
        arena.live_bits.reserve(rows.div_ceil(64));
        arena.dim = Some(dim);
        arena
    }

    /// Pre-sizes for `additional` more rows of `dim` coordinates.
    ///
    /// # Panics
    /// Panics if the arena is already stamped with a different
    /// dimension.
    pub fn reserve(&mut self, additional: usize, dim: usize) {
        match self.dim {
            None => self.dim = Some(dim),
            Some(stamped) => {
                assert_eq!(dim, stamped, "reserve dimension must match the stamp")
            }
        }
        self.cells.reserve(additional * dim);
        self.live_bits
            .reserve((self.rows + additional).div_ceil(64) - self.live_bits.len());
    }

    /// The match threshold `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The ring circumference `ka`.
    pub fn ka(&self) -> u64 {
        self.ka
    }

    /// The cell width chosen from `ka`.
    pub fn width(&self) -> CellWidth {
        self.width
    }

    /// The stamped sketch dimension (`None` until the first push).
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total rows, live and tombstoned.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Heap bytes held by the arena: the column buffer plus the
    /// liveness bitmap (capacities, not lengths — this is what the
    /// allocator has actually handed out).
    pub fn heap_bytes(&self) -> usize {
        self.cells.capacity_bytes() + self.live_bits.capacity() * 8
    }

    /// Appends a sketch, returning its row id (dense, insertion order).
    ///
    /// Coordinates are stored as canonical ring representatives —
    /// indistinguishable from the originals under conditions (1)–(4).
    ///
    /// # Panics
    /// Panics if `sketch`'s dimension differs from the stamped one.
    pub fn push(&mut self, sketch: &[i64]) -> RecordId {
        let dim = *self.dim.get_or_insert(sketch.len());
        assert_eq!(
            sketch.len(),
            dim,
            "sketch dimension {} does not match the arena's stamped dimension {dim}",
            sketch.len()
        );
        let ka = self.ka;
        let (lo, hi) = canonical_range(ka);
        match &mut self.cells {
            Cells::I16(v) => v.extend(
                sketch
                    .iter()
                    .map(|&c| i16::narrow(canonical_fast(c, lo, hi, ka))),
            ),
            Cells::I32(v) => v.extend(
                sketch
                    .iter()
                    .map(|&c| i32::narrow(canonical_fast(c, lo, hi, ka))),
            ),
            Cells::I64(v) => v.extend(sketch.iter().map(|&c| canonical_fast(c, lo, hi, ka))),
        }
        let row = self.rows;
        if row / 64 == self.live_bits.len() {
            self.live_bits.push(0);
        }
        self.live_bits[row / 64] |= 1 << (row % 64);
        self.rows += 1;
        self.live += 1;
        row
    }

    /// Is this row live (assigned and not tombstoned)?
    pub fn is_live(&self, id: RecordId) -> bool {
        id < self.rows && self.live_bits[id / 64] & (1 << (id % 64)) != 0
    }

    /// Tombstones a row. Returns `false` for unknown or already-dead
    /// ids. O(1): one bitmap bit flips; the cells stay until
    /// [`SketchArena::compact`].
    pub fn remove(&mut self, id: RecordId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.live_bits[id / 64] &= !(1 << (id % 64));
        self.live -= 1;
        true
    }

    /// Materializes a live row as an owned `Vec<i64>` (`None` for dead
    /// or unknown ids). Prefer [`SketchArena::copy_row_into`] /
    /// [`SketchArena::for_each_live`] on hot paths.
    pub fn row(&self, id: RecordId) -> Option<Vec<i64>> {
        let mut out = Vec::new();
        self.copy_row_into(id, &mut out).then_some(out)
    }

    /// Copies a live row into `out` (cleared first), widening to `i64`.
    /// Returns `false` — leaving `out` empty — for dead or unknown ids.
    /// This is the allocation-free row access primitive: callers reuse
    /// one scratch buffer across an entire streaming pass.
    pub fn copy_row_into(&self, id: RecordId, out: &mut Vec<i64>) -> bool {
        out.clear();
        if !self.is_live(id) {
            return false;
        }
        let dim = self.dim.expect("live rows imply a stamped dimension");
        let range = id * dim..(id + 1) * dim;
        match &self.cells {
            Cells::I16(v) => out.extend(v[range].iter().map(|&c| c.widen())),
            Cells::I32(v) => out.extend(v[range].iter().map(|&c| c.widen())),
            Cells::I64(v) => out.extend_from_slice(&v[range]),
        }
        true
    }

    /// Streams every live row in ascending id order through one reused
    /// scratch buffer — the zero-clone alternative to materializing
    /// `Vec<(RecordId, Vec<i64>)>` for snapshot and compaction passes.
    pub fn for_each_live(&self, mut f: impl FnMut(RecordId, &[i64])) {
        let mut scratch = Vec::new();
        for id in 0..self.rows {
            if self.copy_row_into(id, &mut scratch) {
                f(id, &scratch);
            }
        }
    }

    /// Normalizes a probe into this arena's cell width, or `None` when
    /// its dimension cannot match any stored row (the trait-level
    /// "mismatched probes match nothing" contract).
    pub fn normalize_probe(&self, probe: &[i64]) -> Option<NormalizedProbe> {
        if self.dim != Some(probe.len()) {
            return None;
        }
        let ka = self.ka;
        let (lo, hi) = canonical_range(ka);
        let cells = match self.width {
            CellWidth::I16 => Cells::I16(
                probe
                    .iter()
                    .map(|&c| i16::narrow(canonical_fast(c, lo, hi, ka)))
                    .collect(),
            ),
            CellWidth::I32 => Cells::I32(
                probe
                    .iter()
                    .map(|&c| i32::narrow(canonical_fast(c, lo, hi, ka)))
                    .collect(),
            ),
            CellWidth::I64 => Cells::I64(
                probe
                    .iter()
                    .map(|&c| canonical_fast(c, lo, hi, ka))
                    .collect(),
            ),
        };
        Some(NormalizedProbe { cells })
    }

    /// Does the (live) row match the pre-normalized probe under
    /// conditions (1)–(4)? Dead and unknown rows never match.
    pub fn row_matches(&self, id: RecordId, probe: &NormalizedProbe) -> bool {
        if !self.is_live(id) {
            return false;
        }
        let dim = self.dim.expect("live rows imply a stamped dimension");
        let range = id * dim..(id + 1) * dim;
        match (&self.cells, &probe.cells) {
            (Cells::I16(v), Cells::I16(p)) => rows_match(&v[range], p, self.t, self.ka),
            (Cells::I32(v), Cells::I32(p)) => rows_match(&v[range], p, self.t, self.ka),
            (Cells::I64(v), Cells::I64(p)) => rows_match(&v[range], p, self.t, self.ka),
            _ => unreachable!("probe was normalized for this arena's width"),
        }
    }

    /// First live row matching the probe (lowest id), scanning with the
    /// blocked early-abort kernel. `None` for no match or a
    /// dimension-mismatched probe.
    pub fn find_first(&self, probe: &[i64]) -> Option<RecordId> {
        self.find_from(probe, 0)
    }

    /// Like [`SketchArena::find_first`], but starts the scan at row
    /// `from` (resumable scans for candidate pruning).
    pub fn find_from(&self, probe: &[i64], from: RecordId) -> Option<RecordId> {
        let normalized = self.normalize_probe(probe)?;
        let mut found = None;
        self.dispatch_scan(&normalized, from, &mut |row| {
            found = Some(row);
            false
        });
        found
    }

    /// Resolves a whole batch of probes with **one pass** over the
    /// column buffer: every live row is tested against each
    /// still-unresolved probe, so N concurrent queries share a single
    /// memory sweep instead of issuing N sweeps (the scan at scale is
    /// memory-bound, making this the amortization that turns batched
    /// service into a throughput win — see `scheduler_throughput` in
    /// `fe-bench`).
    ///
    /// Results are position-aligned with `probes` and identical to
    /// calling [`SketchArena::find_first`] per probe: each probe
    /// resolves to its lowest-id live match. Probes whose dimension
    /// differs from the stamped one resolve to `None`, as everywhere
    /// else.
    pub fn find_first_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        let mut results = vec![None; probes.len()];
        let Some(dim) = self.dim else {
            return results;
        };
        if self.live == 0 || dim == 0 {
            // `dim == 0` would make every per-row slice empty (matching
            // everything vacuously is what find_first does too, via
            // rows_match on empty slices) — fall back to the per-probe
            // path rather than special-casing zero-width rows here.
            for (slot, probe) in results.iter_mut().zip(probes) {
                *slot = self.find_first(probe);
            }
            return results;
        }
        let mut active: Vec<usize> = (0..probes.len())
            .filter(|&p| probes[p].len() == dim)
            .collect();
        if active.is_empty() {
            return results;
        }
        let ka = self.ka;
        let (lo, hi) = canonical_range(ka);
        // One flattened, canonicalized probe matrix in the arena's cell
        // width: wrong-dimension probes (never active) occupy a zeroed
        // row so the `p * dim` indexing stays uniform.
        macro_rules! run {
            ($cells:expr, $c:ty) => {{
                let mut flat: Vec<$c> = Vec::with_capacity(probes.len() * dim);
                for probe in probes {
                    if probe.len() == dim {
                        flat.extend(
                            probe
                                .iter()
                                .map(|&v| <$c as Cell>::narrow(canonical_fast(v, lo, hi, ka))),
                        );
                    } else {
                        flat.resize(flat.len() + dim, <$c as Cell>::narrow(0));
                    }
                }
                scan_blocks_multi(
                    ColumnView {
                        cells: $cells,
                        live: &self.live_bits,
                        rows: self.rows,
                        dim,
                    },
                    &flat,
                    self.t,
                    ka,
                    &mut active,
                    &mut results,
                );
            }};
        }
        match &self.cells {
            Cells::I16(v) => run!(v, i16),
            Cells::I32(v) => run!(v, i32),
            Cells::I64(v) => run!(v, i64),
        }
        results
    }

    /// Every live row matching the probe, ascending.
    pub fn find_all(&self, probe: &[i64]) -> Vec<RecordId> {
        let Some(normalized) = self.normalize_probe(probe) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        self.dispatch_scan(&normalized, 0, &mut |row| {
            out.push(row);
            true
        });
        out
    }

    /// Width-dispatches one blocked scan over the column buffer.
    fn dispatch_scan(
        &self,
        probe: &NormalizedProbe,
        from: RecordId,
        on_match: &mut dyn FnMut(RecordId) -> bool,
    ) {
        let Some(dim) = self.dim else { return };
        let (t, ka, rows, live) = (self.t, self.ka, self.rows, self.live_bits.as_slice());
        macro_rules! scan {
            ($cells:expr, $probe:expr) => {
                scan_blocks(
                    ColumnView {
                        cells: $cells,
                        live,
                        rows,
                        dim,
                    },
                    $probe,
                    t,
                    ka,
                    from,
                    on_match,
                )
            };
        }
        match (&self.cells, &probe.cells) {
            (Cells::I16(v), Cells::I16(p)) => scan!(v, p),
            (Cells::I32(v), Cells::I32(p)) => scan!(v, p),
            (Cells::I64(v), Cells::I64(p)) => scan!(v, p),
            _ => unreachable!("probe was normalized for this arena's width"),
        }
    }

    /// Drops every row and resets id assignment; the width, `t`, `ka`
    /// and dimension stamp are retained, as is the allocated capacity.
    pub fn clear(&mut self) {
        self.cells.clear();
        self.live_bits.clear();
        self.rows = 0;
        self.live = 0;
    }

    /// Reclaims tombstoned rows **in place**: live rows slide down the
    /// same column buffer (preserving order), the bitmap is rebuilt
    /// dense, and the old → new renumbering is returned. No row data is
    /// cloned and no new buffer is allocated.
    pub fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        let dim = match self.dim {
            Some(dim) if self.live < self.rows => dim,
            // Nothing stored, or nothing tombstoned: identity mapping.
            _ => {
                return (0..self.rows).map(|id| (id, id)).collect();
            }
        };
        let mut mapping = Vec::with_capacity(self.live);
        let mut next = 0usize;
        for id in 0..self.rows {
            if !self.is_live(id) {
                continue;
            }
            if next != id {
                match &mut self.cells {
                    Cells::I16(v) => v.copy_within(id * dim..(id + 1) * dim, next * dim),
                    Cells::I32(v) => v.copy_within(id * dim..(id + 1) * dim, next * dim),
                    Cells::I64(v) => v.copy_within(id * dim..(id + 1) * dim, next * dim),
                }
            }
            mapping.push((id, next));
            next += 1;
        }
        self.rows = next;
        self.cells.truncate(next * dim);
        self.live_bits.clear();
        self.live_bits.resize(next.div_ceil(64), 0);
        for id in 0..next {
            self.live_bits[id / 64] |= 1 << (id % 64);
        }
        self.live = next;
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_follows_ring() {
        assert_eq!(CellWidth::for_ring(400), CellWidth::I16);
        assert_eq!(CellWidth::for_ring((1 << 15) - 1), CellWidth::I16);
        assert_eq!(CellWidth::for_ring(1 << 15), CellWidth::I32);
        assert_eq!(CellWidth::for_ring((1 << 31) - 1), CellWidth::I32);
        assert_eq!(CellWidth::for_ring(1 << 31), CellWidth::I64);
        assert_eq!(CellWidth::for_ring(u64::MAX), CellWidth::I64);
    }

    #[test]
    fn canonical_is_minimal_residue() {
        assert_eq!(canonical(0, 400), 0);
        assert_eq!(canonical(200, 400), 200);
        assert_eq!(canonical(201, 400), -199);
        assert_eq!(canonical(-200, 400), 200);
        assert_eq!(canonical(400, 400), 0);
        assert_eq!(canonical(300, 400), -100);
        assert_eq!(canonical(-300, 400), 100);
        assert_eq!(canonical(i64::MIN, 400), canonical(i64::MIN % 400, 400));
        // Odd ring: residues span [−(ka−1)/2, (ka−1)/2].
        for v in -20..20 {
            let c = canonical(v, 7);
            assert!((-3..=3).contains(&c), "canonical({v}, 7) = {c}");
            assert_eq!((v - c).rem_euclid(7), 0);
        }
    }

    #[test]
    fn kernel_matches_cyclic_close_on_canonical_values() {
        use crate::conditions::cyclic_close;
        let ka = 40u64;
        for t in [1u64, 5, 19] {
            for a in -60i64..60 {
                for b in -60i64..60 {
                    let ca = canonical(a, ka);
                    let cb = canonical(b, ka);
                    let d = (ca - cb).unsigned_abs();
                    assert_eq!(
                        d.min(ka - d) <= t,
                        cyclic_close(a, b, t, ka),
                        "a={a} b={b} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn push_remove_compact_roundtrip() {
        let mut arena = SketchArena::new(100, 400);
        for i in 0..130i64 {
            assert_eq!(arena.push(&[i, -i, 2 * i]), i as usize);
        }
        assert_eq!((arena.len(), arena.rows()), (130, 130));
        for id in (0..130).step_by(3) {
            assert!(arena.remove(id));
            assert!(!arena.remove(id), "double remove");
        }
        assert_eq!(arena.len(), 130 - 44);
        let mapping = arena.compact();
        assert_eq!(mapping.len(), 86);
        assert_eq!((arena.len(), arena.rows()), (86, 86));
        // Survivors keep their data (in canonical ring form) under new
        // dense ids.
        for &(old, new) in &mapping {
            let old = old as i64;
            let expect: Vec<i64> = [old, -old, 2 * old]
                .iter()
                .map(|&v| canonical(v, 400))
                .collect();
            assert_eq!(arena.row(new), Some(expect));
        }
        // A compacted arena accepts fresh rows at the next dense id.
        assert_eq!(arena.push(&[1, 2, 3]), 86);
    }

    #[test]
    fn compact_without_tombstones_is_identity() {
        let mut arena = SketchArena::new(10, 400);
        arena.push(&[1, 2]);
        arena.push(&[3, 4]);
        assert_eq!(arena.compact(), vec![(0, 0), (1, 1)]);
        assert_eq!(arena.row(1), Some(vec![3, 4]));
    }

    #[test]
    fn probe_dimension_mismatch_matches_nothing() {
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[1, 2, 3]);
        assert_eq!(arena.find_first(&[1, 2]), None);
        assert_eq!(arena.find_all(&[1, 2, 3, 4]), Vec::<RecordId>::new());
        assert!(arena.normalize_probe(&[1, 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "stamped dimension")]
    fn insert_dimension_mismatch_panics() {
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[1, 2, 3]);
        arena.push(&[1, 2]);
    }

    #[test]
    fn out_of_range_coordinates_match_cyclically() {
        // 300 ≡ −100 (mod 400); the arena stores the canonical form and
        // conditions (1)–(4) cannot tell the difference.
        let mut arena = SketchArena::new(100, 400);
        let id = arena.push(&[300, 20]);
        assert_eq!(arena.find_first(&[-100, 20]), Some(id));
        assert_eq!(arena.find_first(&[300 + 400, 20 - 400]), Some(id));
        assert_eq!(arena.row(id), Some(vec![-100, 20]));
    }

    #[test]
    fn huge_ring_kernel_does_not_overflow() {
        // ka > 2⁶³: canonical values span nearly the whole i64 range, so
        // the kernel's subtraction must widen (regression: i64 overflow).
        let ka = u64::MAX;
        let mut arena = SketchArena::new(1 << 40, ka);
        let (lo, hi) = canonical_range(ka);
        let a = arena.push(&[hi, lo]);
        // Distance from (hi, lo) to (lo, hi) is 1 step around the ring
        // in each coordinate — within t.
        assert_eq!(arena.find_first(&[lo, hi]), Some(a));
        // The antipode is ~ka/2 away — far outside t.
        assert_eq!(arena.find_first(&[0, 0]), None);
    }

    #[test]
    fn wide_rings_use_wide_cells() {
        for ka in [1u64 << 20, 1 << 40] {
            let half = (ka / 2) as i64;
            let mut arena = SketchArena::new(1000, ka);
            let a = arena.push(&[half - 5, -half + 5]);
            assert_eq!(arena.find_first(&[half - 900, -half + 900]), Some(a));
            assert_eq!(arena.find_first(&[0, 0]), None);
            assert_eq!(arena.row(a), Some(vec![half - 5, -half + 5]));
        }
    }

    #[test]
    fn heap_bytes_tracks_width() {
        let mut narrow = SketchArena::with_capacity(100, 400, 64, 8);
        let mut wide = SketchArena::with_capacity(100, 1 << 40, 64, 8);
        for i in 0..64i64 {
            narrow.push(&[i; 8]);
            wide.push(&[i; 8]);
        }
        assert!(narrow.heap_bytes() >= 64 * 8 * 2 + 8);
        assert!(
            narrow.heap_bytes() * 3 < wide.heap_bytes(),
            "i16 cells must be ~4× smaller than i64: {} vs {}",
            narrow.heap_bytes(),
            wide.heap_bytes()
        );
    }

    #[test]
    fn for_each_live_streams_in_order() {
        let mut arena = SketchArena::new(100, 400);
        for i in 0..9i64 {
            arena.push(&[i, i]);
        }
        arena.remove(4);
        let mut seen = Vec::new();
        arena.for_each_live(|id, row| seen.push((id, row.to_vec())));
        assert_eq!(seen.len(), 8);
        assert_eq!(seen[4], (5, vec![5, 5]));
    }

    #[test]
    fn batch_scan_agrees_with_per_probe_scan() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        for ka in [400u64, 1 << 20, 1 << 40] {
            let t = ka / 4;
            let mut arena = SketchArena::new(t, ka);
            let half = (ka / 2) as i64;
            let rows: Vec<Vec<i64>> = (0..300)
                .map(|_| (0..8).map(|_| rng.gen_range(-half..=half)).collect())
                .collect();
            for row in &rows {
                arena.push(row);
            }
            for id in (0..300).step_by(5) {
                arena.remove(id);
            }
            // Genuine probes (noise within t), impostors, and a
            // wrong-dimension probe in one batch.
            let mut probes: Vec<Vec<i64>> = rows
                .iter()
                .step_by(7)
                .map(|row| {
                    row.iter()
                        .map(|&v| v + rng.gen_range(-(t as i64)..=t as i64))
                        .collect()
                })
                .collect();
            probes.push(vec![0; 8]);
            probes.push(vec![1, 2, 3]);
            let batch = arena.find_first_batch(&probes);
            let single: Vec<Option<RecordId>> =
                probes.iter().map(|p| arena.find_first(p)).collect();
            assert_eq!(batch, single, "ka = {ka}");
        }
    }

    #[test]
    fn batch_scan_on_empty_and_unstamped_arena() {
        let arena = SketchArena::new(100, 400);
        assert_eq!(arena.find_first_batch(&[vec![1, 2]]), vec![None]);
        let mut arena = SketchArena::new(100, 400);
        let a = arena.push(&[5, 5]);
        arena.remove(a);
        assert_eq!(arena.find_first_batch(&[vec![5, 5]]), vec![None]);
        assert_eq!(arena.find_first_batch(&[]), Vec::<Option<RecordId>>::new());
    }

    #[test]
    fn find_from_resumes_past_matches() {
        let mut arena = SketchArena::new(100, 400);
        arena.push(&[10, 10]);
        arena.push(&[500, 500]); // stored as its canonical form, 100
        arena.push(&[15, 15]);
        let first = arena.find_first(&[12, 12]).unwrap();
        assert_eq!(first, 0);
        let next = arena.find_from(&[12, 12], first + 1);
        // Row 1 stores canonical(500) = 100: distance to 12 is 88 ≤ t,
        // so it genuinely matches too.
        assert_eq!(next, Some(1));
        assert_eq!(arena.find_from(&[12, 12], 3), None);
    }
}
