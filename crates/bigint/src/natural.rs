//! The [`Natural`] type: an unsigned arbitrary-precision integer.

use std::cmp::Ordering;

/// An unsigned arbitrary-precision integer.
///
/// Stored as little-endian 64-bit limbs with the invariant that the most
/// significant limb is non-zero (zero is the empty limb vector). All
/// arithmetic is implemented in safe Rust using `u128` intermediate values.
///
/// # Example
///
/// ```rust
/// use fe_bigint::Natural;
///
/// let a = Natural::from(10u64);
/// let b = Natural::from(4u64);
/// assert_eq!(&a + &b, Natural::from(14u64));
/// assert_eq!(&a * &b, Natural::from(40u64));
/// assert_eq!(a.checked_sub(&b), Some(Natural::from(6u64)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    pub(crate) limbs: Vec<u64>,
}

impl Natural {
    /// The value `0`.
    pub const fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// The value `2`.
    pub fn two() -> Self {
        Natural { limbs: vec![2] }
    }

    /// Builds a natural from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Borrows the little-endian limb representation.
    ///
    /// The most significant limb is non-zero unless the value is `0`, in
    /// which case the slice is empty.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of limbs (zero for the value `0`).
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Returns `true` if the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns `true` if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[0] as u128) | ((self.limbs[1] as u128) << 64)),
            _ => None,
        }
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        if v == 0 {
            Natural::zero()
        } else {
            Natural { limbs: vec![v] }
        }
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from(v as u64)
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq<u64> for Natural {
    fn eq(&self, other: &u64) -> bool {
        self.to_u64() == Some(*other)
    }
}

impl PartialOrd<u64> for Natural {
    fn partial_cmp(&self, other: &u64) -> Option<Ordering> {
        match self.limbs.len() {
            0 => 0u64.partial_cmp(other),
            1 => self.limbs[0].partial_cmp(other),
            _ => Some(Ordering::Greater),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_even() {
        let z = Natural::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert!(!z.is_odd());
        assert_eq!(z.to_u64(), Some(0));
        assert_eq!(z.limb_len(), 0);
    }

    #[test]
    fn from_limbs_normalizes() {
        let n = Natural::from_limbs(vec![5, 0, 0]);
        assert_eq!(n.limbs(), &[5]);
        assert_eq!(n, Natural::from(5u64));
    }

    #[test]
    fn u128_roundtrip() {
        let v = 0x1234_5678_9abc_def0_1111_2222_3333_4444u128;
        let n = Natural::from(v);
        assert_eq!(n.to_u128(), Some(v));
        assert_eq!(n.to_u64(), None);
    }

    #[test]
    fn ordering_by_magnitude() {
        let small = Natural::from(u64::MAX);
        let big = Natural::from(u64::MAX as u128 + 1);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big.clone()), Ordering::Equal);
    }

    #[test]
    fn compare_with_u64() {
        let n = Natural::from(42u64);
        assert!(n == 42u64);
        assert!(n > 41u64);
        assert!(n < 43u64);
        let big = Natural::from(u128::MAX);
        assert!(big > u64::MAX);
    }

    #[test]
    fn parity() {
        assert!(Natural::from(2u64).is_even());
        assert!(Natural::from(3u64).is_odd());
        assert!(Natural::one().is_odd());
    }
}
