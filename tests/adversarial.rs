//! Adversarial integration tests exercising the paper's threat model
//! (Sec. VI-B): channel tampering, helper-data modification, replay,
//! session confusion and signature forgery.

use fuzzy_id::protocol::transport::{Link, Tamper};
use fuzzy_id::protocol::{
    AuthenticationServer, BiometricDevice, IdentChallenge, IdentOutcome, ProtocolError,
    SystemParams,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

struct World {
    device: BiometricDevice,
    server: AuthenticationServer,
    bios: Vec<Vec<i64>>,
    rng: StdRng,
}

fn setup(users: usize, dim: usize, seed: u64) -> World {
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut server = AuthenticationServer::new(params.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(dim, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }
    World {
        device,
        server,
        bios,
        rng,
    }
}

fn genuine_reading(w: &mut World, u: usize) -> Vec<i64> {
    let bio = w.bios[u].clone();
    bio.iter()
        .map(|&x| x + w.rng.gen_range(-90i64..=90))
        .collect()
}

#[test]
fn helper_data_tamper_in_flight_detected() {
    let mut w = setup(3, 200, 10);
    let reading = genuine_reading(&mut w, 0);
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    let challenge = w.server.begin_identification(&probe, &mut w.rng).unwrap();

    let mut link: Link<IdentChallenge> = Link::new().with_adversary(Box::new(|mut m| {
        m.helper.sketch.inner[3] -= 6;
        Tamper::Modify(m)
    }));
    link.send(challenge).unwrap();
    let tampered = link.recv(Duration::from_secs(1)).unwrap();
    assert!(w.device.respond(&reading, &tampered, &mut w.rng).is_err());
}

#[test]
fn tag_tamper_detected() {
    let mut w = setup(3, 200, 11);
    let reading = genuine_reading(&mut w, 1);
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    let mut challenge = w.server.begin_identification(&probe, &mut w.rng).unwrap();
    challenge.helper.sketch.tag[0] ^= 0x01;
    assert!(w.device.respond(&reading, &challenge, &mut w.rng).is_err());
}

#[test]
fn extractor_seed_tamper_breaks_signature() {
    // Flipping the seed does not break Rec (the seed is outside the
    // robust hash in the paper's P = (s, r)), but the reproduced key —
    // and thus the derived signing key — changes, so the server's
    // verification fails.
    let mut w = setup(3, 200, 12);
    let reading = genuine_reading(&mut w, 1);
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    let mut challenge = w.server.begin_identification(&probe, &mut w.rng).unwrap();
    challenge.helper.seed[0] ^= 0xff;
    let response = w.device.respond(&reading, &challenge, &mut w.rng).unwrap();
    assert_eq!(
        w.server.finish_identification(&response).unwrap(),
        IdentOutcome::Rejected
    );
}

#[test]
fn response_replay_rejected() {
    let mut w = setup(3, 200, 13);
    let reading = genuine_reading(&mut w, 2);
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    let challenge = w.server.begin_identification(&probe, &mut w.rng).unwrap();
    let response = w.device.respond(&reading, &challenge, &mut w.rng).unwrap();
    assert!(w
        .server
        .finish_identification(&response)
        .unwrap()
        .is_identified());
    assert_eq!(
        w.server.finish_identification(&response).unwrap_err(),
        ProtocolError::UnknownSession
    );
}

#[test]
fn cross_session_response_rejected() {
    // A response signed for session A must not complete session B.
    let mut w = setup(3, 200, 14);
    let reading_a = genuine_reading(&mut w, 0);
    let reading_b = genuine_reading(&mut w, 1);
    let probe_a = w.device.probe_sketch(&reading_a, &mut w.rng).unwrap();
    let probe_b = w.device.probe_sketch(&reading_b, &mut w.rng).unwrap();
    let chal_a = w.server.begin_identification(&probe_a, &mut w.rng).unwrap();
    let chal_b = w.server.begin_identification(&probe_b, &mut w.rng).unwrap();
    let mut response_a = w.device.respond(&reading_a, &chal_a, &mut w.rng).unwrap();
    // Adversary redirects A's response at session B.
    response_a.session = chal_b.session;
    assert_eq!(
        w.server.finish_identification(&response_a).unwrap(),
        IdentOutcome::Rejected
    );
}

#[test]
fn stolen_helper_data_without_biometric_is_useless() {
    // Insider adversary reads all stored helper data; without a close
    // biometric, Rep fails for every record.
    let mut w = setup(5, 200, 15);
    let params = w.server.params().clone();
    let fe = params.fuzzy_extractor();
    let fake_bio = params.sketch().line().random_vector(200, &mut w.rng);
    for (_, helper) in w.server.all_helpers() {
        assert!(fe.reproduce(&fake_bio, &helper).is_err());
    }
}

#[test]
fn sketch_leak_does_not_reveal_biometric_interval_offsets_only() {
    // The sketch reveals each coordinate's offset within its interval but
    // not which interval: enumerate the preimages consistent with one
    // sketch coordinate and confirm there are exactly v of them.
    let w = setup(1, 4, 16);
    let params = w.server.params().clone();
    let line = *params.sketch().line();
    let (_, helper) = w.server.all_helpers().pop().unwrap();
    let s0 = helper.sketch.inner[0];
    let mut consistent = 0u64;
    let half = line.half_range() as i64;
    for x in (-half + 1)..=half {
        // x is consistent with s0 iff moving x by s0 lands on an
        // identifier (boundary points are consistent with ±ka/2 only).
        let target = line.wrap(x + s0);
        if line.distance_to_identifier(target) == 0 {
            consistent += 1;
        }
    }
    assert_eq!(consistent, line.v(), "exactly one preimage per interval");
}

#[test]
fn forged_public_key_enrollment_does_not_impersonate_existing_user() {
    // Mallory enrolls under her own id with her own biometric; she still
    // cannot be identified as anyone else.
    let mut w = setup(2, 200, 17);
    let mallory_bio = w
        .server
        .params()
        .sketch()
        .line()
        .random_vector(200, &mut w.rng);
    let record = w
        .device
        .enroll("mallory", &mallory_bio, &mut w.rng)
        .unwrap();
    w.server.enroll(record).unwrap();
    let reading: Vec<i64> = mallory_bio.iter().map(|&x| x + 10).collect();
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    let chal = w.server.begin_identification(&probe, &mut w.rng).unwrap();
    let resp = w.device.respond(&reading, &chal, &mut w.rng).unwrap();
    let outcome = w.server.finish_identification(&resp).unwrap();
    assert_eq!(outcome.identity(), Some("mallory"));
}

#[test]
fn two_user_matching_probe_cannot_reset() {
    // An adversary who engineers a biometric close to *two* enrolled
    // users (here: a duplicate enrollment admitted under the permissive
    // policy) must not be able to trigger account reset — the exactly-
    // one rule refuses the ambiguous probe instead of picking a victim.
    let mut w = setup(3, 200, 19);
    let twin_bio = genuine_reading(&mut w, 0);
    let dup = w
        .device
        .enroll("user-0-twin", &twin_bio, &mut w.rng)
        .unwrap();
    w.server.enroll(dup).unwrap();
    let reading = w.bios[0].clone();
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    assert_eq!(
        w.server.reset(&probe).unwrap_err(),
        ProtocolError::AmbiguousMatch
    );
    // A probe near a *unique* user still resets — the refusal above is
    // the ambiguity, not the mode being broken.
    let reading = genuine_reading(&mut w, 2);
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    assert_eq!(w.server.reset(&probe).unwrap(), "user-2");
}

#[test]
fn cross_user_claim_fails_targeted_authentication() {
    // Mallory presents her own (enrolled) biometric while claiming to
    // be someone else: the claim is verified against exactly the
    // claimed record, so matching *some* user gains nothing.
    let mut w = setup(3, 200, 20);
    let reading = genuine_reading(&mut w, 0);
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    assert!(w.server.authenticate_claimed("user-0", &probe).unwrap());
    assert!(!w.server.authenticate_claimed("user-1", &probe).unwrap());
    assert!(!w.server.authenticate_claimed("user-2", &probe).unwrap());
    // Claiming an unenrolled id is an error, not a silent false.
    assert_eq!(
        w.server.authenticate_claimed("ghost", &probe).unwrap_err(),
        ProtocolError::UnknownUser("ghost".into())
    );
}

#[test]
fn dropped_messages_leave_no_exploitable_state() {
    let mut w = setup(2, 200, 18);
    let reading = genuine_reading(&mut w, 0);
    let probe = w.device.probe_sketch(&reading, &mut w.rng).unwrap();
    let challenge = w.server.begin_identification(&probe, &mut w.rng).unwrap();
    let session = challenge.session;
    let mut black_hole: Link<IdentChallenge> =
        Link::new().with_adversary(Box::new(|_| Tamper::Drop));
    black_hole.send(challenge).unwrap();
    assert!(black_hole.recv(Duration::from_millis(20)).is_none());
    // An attacker who saw the session id on the wire cannot finish the
    // session without a valid signature.
    let forged = fuzzy_id::protocol::IdentResponse {
        session,
        signature: vec![0u8; 40],
        nonce: 1,
    };
    assert_eq!(
        w.server.finish_identification(&forged).unwrap(),
        IdentOutcome::Rejected
    );
}
