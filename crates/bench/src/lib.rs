//! Shared harness code for the paper-reproduction benchmarks and the
//! `experiments` binary.
//!
//! The conventions:
//!
//! * every experiment gets a deterministic seed so runs are reproducible;
//! * populations are built with the paper's Table II parameters unless an
//!   experiment sweeps them;
//! * results can be dumped as CSV under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod netload;
pub mod smoke;

use fe_core::SecureSketch;
use fe_protocol::{BiometricDevice, EnrollmentRecord, ProtocolRunner, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::Write;
use std::path::PathBuf;

/// A ready-to-measure population: a protocol runner with `users` enrolled
/// and their enrolled biometrics (for generating genuine readings).
pub struct Population {
    /// The runner holding the enrolled server.
    pub runner: ProtocolRunner,
    /// Enrolled biometric templates, by user index.
    pub bios: Vec<Vec<i64>>,
    /// Deterministic RNG to continue drawing readings from.
    pub rng: StdRng,
    /// System parameters used.
    pub params: SystemParams,
}

impl Population {
    /// Builds a population of `users` enrolled users with `dim`-dimensional
    /// biometrics under the given parameters.
    pub fn build(params: SystemParams, users: usize, dim: usize, seed: u64) -> Population {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut runner = ProtocolRunner::new(params.clone());
        let mut bios = Vec::with_capacity(users);
        for u in 0..users {
            let bio = params.sketch().line().random_vector(dim, &mut rng);
            runner
                .enroll_user(&format!("user-{u}"), &bio, &mut rng)
                .expect("enrollment succeeds");
            bios.push(bio);
        }
        Population {
            runner,
            bios,
            rng,
            params,
        }
    }

    /// A genuine reading of user `u`: bounded-uniform noise within the
    /// acceptance threshold (the paper's performance-experiment model).
    pub fn genuine_reading(&mut self, u: usize) -> Vec<i64> {
        let t = self.params.sketch().threshold() as i64;
        let line = *self.params.sketch().line();
        self.bios[u]
            .iter()
            .map(|&x| line.wrap(x + self.rng.gen_range(-t..=t)))
            .collect()
    }

    /// An impostor reading: a fresh uniform vector.
    pub fn impostor_reading(&mut self) -> Vec<i64> {
        let dim = self.bios.first().map_or(0, |b| b.len());
        self.params
            .sketch()
            .line()
            .random_vector(dim, &mut self.rng)
    }
}

/// A synthesized enrolled population for *server-side* benches: real
/// Chebyshev sketches (so the early-abort profile matches production
/// data) under one shared donor key pair — recovery, journaling and
/// sketch lookup never run per-record asymmetric crypto, so reusing the
/// key bytes changes nothing about the measured paths while making a
/// 10⁵-record setup tractable. The biometrics are kept so benches can
/// draw genuine probe sketches.
pub struct SynthPopulation {
    /// Ready-to-enroll records, `user-0 … user-{n-1}`.
    pub records: Vec<EnrollmentRecord>,
    /// The biometric each record was sketched from, by user index.
    pub bios: Vec<Vec<i64>>,
}

impl SynthPopulation {
    /// Synthesizes `users` records of `dim`-dimensional sketches.
    pub fn build(params: &SystemParams, users: usize, dim: usize, rng: &mut StdRng) -> Self {
        // One real enrollment donates plausibly-shaped public-key bytes.
        let device = BiometricDevice::new(params.clone());
        let bio = params.sketch().line().random_vector(dim, rng);
        let donor = device.enroll("donor", &bio, rng).unwrap();

        let scheme = params.sketch();
        let mut records = Vec::with_capacity(users);
        let mut bios = Vec::with_capacity(users);
        for u in 0..users {
            let x = scheme.line().random_vector(dim, rng);
            let mut helper = donor.helper.clone();
            helper.sketch.inner = scheme.sketch(&x, rng).unwrap();
            rng.fill_bytes(&mut helper.sketch.tag);
            records.push(EnrollmentRecord {
                id: format!("user-{u}"),
                public_key: donor.public_key.clone(),
                helper,
            });
            bios.push(x);
        }
        SynthPopulation { records, bios }
    }

    /// A genuine probe sketch for user `u`: the sketch of a reading
    /// within the acceptance threshold of the enrolled biometric.
    pub fn genuine_probe(&self, params: &SystemParams, u: usize, rng: &mut StdRng) -> Vec<i64> {
        let scheme = params.sketch();
        let t = scheme.threshold() as i64;
        let noisy: Vec<i64> = self.bios[u]
            .iter()
            .map(|&x| scheme.line().wrap(x + rng.gen_range(-t..=t)))
            .collect();
        scheme.sketch(&noisy, rng).unwrap()
    }
}

/// Where experiment CSVs are written (`target/experiments/`).
pub fn experiments_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // repo root
    dir.push("target");
    dir.push("experiments");
    dir
}

/// Writes a CSV file under `target/experiments/`, creating directories as
/// needed. Returns the full path.
///
/// # Panics
/// Panics on I/O errors — experiments should fail loudly.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    path
}

/// Times a closure, returning (result, seconds).
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Times `iters ≥ 1` runs of a closure and returns the last result with
/// the **best** (minimum) duration in seconds — the noise-robust point
/// estimate smoke reports use on shared CI runners, where a single
/// sample can absorb a scheduler hiccup and flip a perf comparison.
pub fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(iters >= 1, "need at least one timing iteration");
    let (mut out, mut best) = time_it(&mut f);
    for _ in 1..iters {
        let (next, secs) = time_it(&mut f);
        out = next;
        best = best.min(secs);
    }
    (out, best)
}

/// Formats seconds as engineering-friendly milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:8.3} ms", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_builds_and_identifies() {
        let params = SystemParams::insecure_test_defaults();
        let mut pop = Population::build(params, 3, 64, 42);
        let reading = pop.genuine_reading(2);
        let (outcome, _) = pop.runner.identify(&reading, &mut pop.rng).unwrap();
        assert_eq!(outcome.identity(), Some("user-2"));
    }

    #[test]
    fn impostor_reading_does_not_match() {
        let params = SystemParams::insecure_test_defaults();
        let mut pop = Population::build(params, 3, 64, 43);
        let reading = pop.impostor_reading();
        assert!(pop.runner.identify(&reading, &mut pop.rng).is_err());
    }

    #[test]
    fn csv_written() {
        let path = write_csv(
            "unit-test.csv",
            "a,b",
            &["1,2".to_string(), "3,4".to_string()],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn time_it_returns_value() {
        let (v, secs) = time_it(|| 7u32);
        assert_eq!(v, 7);
        assert!(secs >= 0.0);
    }
}
