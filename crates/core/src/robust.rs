//! The robust secure sketch of Sec. IV-C: the generic hash-binding
//! construction of Boyen et al. (EUROCRYPT 2005) applied to any secure
//! sketch.
//!
//! An active adversary can modify public helper data in storage or in
//! transit; a plain sketch gives no guarantee in that case. The robust
//! wrapper appends `h = H(x, s)`; `Rec` recomputes the hash over the
//! recovered value and rejects on mismatch, detecting both tampering and
//! silent mis-recovery.

use crate::encode::encode_i64_vector;
use crate::sketch::SecureSketch;
use crate::SketchError;
use fe_crypto::ct::ct_eq;
use fe_crypto::{Digest, Sha256};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::marker::PhantomData;

/// Sketch data produced by [`RobustSketch`]: the inner sketch plus the
/// binding hash tag.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RobustData<S> {
    /// The wrapped sketch `s'`.
    pub inner: S,
    /// `h = H(x ‖ s')`.
    pub tag: Vec<u8>,
}

/// A sketch whose helper data can be byte-encoded canonically (needed to
/// feed the binding hash).
pub trait SketchBytes {
    /// Canonical, injective byte encoding.
    fn sketch_bytes(&self) -> Vec<u8>;
}

impl SketchBytes for Vec<i64> {
    fn sketch_bytes(&self) -> Vec<u8> {
        encode_i64_vector(self)
    }
}

/// The robust wrapper: `SS(x) = (s', H(x ‖ s'))`,
/// `Rec(y, (s', h))` = inner recover, then hash check.
///
/// ```rust
/// use fe_core::{ChebyshevSketch, RobustSketch, SecureSketch, SketchError};
/// use fe_crypto::Sha256;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), SketchError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let robust = RobustSketch::<_, Sha256>::new(ChebyshevSketch::paper_defaults());
/// let x = robust.inner().line().random_vector(8, &mut rng);
/// let mut data = robust.sketch(&x, &mut rng)?;
///
/// // Honest recovery works …
/// assert!(robust.recover(&x, &data).is_ok());
///
/// // … but helper-data tampering is detected.
/// data.inner[0] += 2;
/// assert!(matches!(
///     robust.recover(&x, &data),
///     Err(SketchError::TagMismatch) | Err(SketchError::OutOfRange)
/// ));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RobustSketch<S, D = Sha256> {
    inner: S,
    _digest: PhantomData<D>,
}

impl<S, D> RobustSketch<S, D>
where
    S: SecureSketch,
    S::Sketch: SketchBytes,
    D: Digest,
{
    /// Wraps an inner secure sketch.
    pub fn new(inner: S) -> Self {
        RobustSketch {
            inner,
            _digest: PhantomData,
        }
    }

    /// Borrows the wrapped sketch scheme.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Checks the binding tag for an already-recovered value (constant
    /// time). Exposed for callers that run the inner recovery themselves
    /// (e.g. the exhaustive-scan baseline).
    pub fn verify_tag(&self, recovered: &[i64], sketch: &RobustData<S::Sketch>) -> bool {
        ct_eq(&Self::tag(recovered, &sketch.inner), &sketch.tag)
    }

    fn tag(x: &[i64], sketch: &S::Sketch) -> Vec<u8> {
        let mut h = D::new();
        h.update(b"fe-robust-sketch-v1");
        h.update(&encode_i64_vector(x));
        h.update(&sketch.sketch_bytes());
        h.finalize()
    }
}

impl<S, D> SecureSketch for RobustSketch<S, D>
where
    S: SecureSketch,
    S::Sketch: SketchBytes,
    D: Digest,
{
    type Sketch = RobustData<S::Sketch>;

    fn sketch<R: RngCore + ?Sized>(
        &self,
        input: &[i64],
        rng: &mut R,
    ) -> Result<Self::Sketch, SketchError> {
        let inner = self.inner.sketch(input, rng)?;
        // Hash the canonical representative — what recover() will return.
        let canonical = self.inner.recover(input, &inner)?;
        let tag = Self::tag(&canonical, &inner);
        Ok(RobustData { inner, tag })
    }

    fn recover(&self, reading: &[i64], sketch: &Self::Sketch) -> Result<Vec<i64>, SketchError> {
        let recovered = self.inner.recover(reading, &sketch.inner)?;
        let expected = Self::tag(&recovered, &sketch.inner);
        if !ct_eq(&expected, &sketch.tag) {
            return Err(SketchError::TagMismatch);
        }
        Ok(recovered)
    }

    fn expected_dim(&self) -> Option<usize> {
        self.inner.expected_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChebyshevSketch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type Robust = RobustSketch<ChebyshevSketch, Sha256>;

    fn scheme() -> Robust {
        RobustSketch::new(ChebyshevSketch::paper_defaults())
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn honest_roundtrip() {
        let s = scheme();
        let mut r = rng();
        let x = s.inner().line().random_vector(32, &mut r);
        let data = s.sketch(&x, &mut r).unwrap();
        assert_eq!(data.tag.len(), 32); // SHA-256
        let noisy: Vec<i64> = x.iter().map(|v| v - 77).collect();
        assert_eq!(s.recover(&noisy, &data).unwrap(), x);
    }

    #[test]
    fn tampered_movement_detected() {
        let s = scheme();
        let mut r = rng();
        let x = s.inner().line().random_vector(32, &mut r);
        let mut data = s.sketch(&x, &mut r).unwrap();
        data.inner[7] += 2; // small shift keeps Rec succeeding but wrong
        match s.recover(&x, &data) {
            Err(SketchError::TagMismatch) | Err(SketchError::OutOfRange) => {}
            other => panic!("tampering not detected: {other:?}"),
        }
    }

    #[test]
    fn tampered_tag_detected() {
        let s = scheme();
        let mut r = rng();
        let x = s.inner().line().random_vector(8, &mut r);
        let mut data = s.sketch(&x, &mut r).unwrap();
        data.tag[0] ^= 0x80;
        assert_eq!(s.recover(&x, &data), Err(SketchError::TagMismatch));
    }

    #[test]
    fn swapped_helper_data_rejected() {
        // Helper data of user A must not verify for user B's reading even
        // if B happens to be within range of A's intervals.
        let s = scheme();
        let mut r = rng();
        let xa = s.inner().line().random_vector(16, &mut r);
        let xb = s.inner().line().random_vector(16, &mut r);
        let data_a = s.sketch(&xa, &mut r).unwrap();
        match s.recover(&xb, &data_a) {
            Err(_) => {}
            Ok(recovered) => assert_eq!(recovered, xa, "robust Rec must return A's value or fail"),
        }
    }

    #[test]
    fn out_of_range_reading_still_bottom() {
        let s = scheme();
        let mut r = rng();
        let x = s.inner().line().random_vector(8, &mut r);
        let data = s.sketch(&x, &mut r).unwrap();
        let far: Vec<i64> = x.iter().map(|v| s.inner().line().wrap(v + 199)).collect();
        assert!(s.recover(&far, &data).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let s = scheme();
        let mut r = rng();
        let x = s.inner().line().random_vector(4, &mut r);
        let data = s.sketch(&x, &mut r).unwrap();
        // serde_* crates are not dependencies; check the Serialize bound
        // compiles by round-tripping through the fields manually.
        let copy = RobustData {
            inner: data.inner.clone(),
            tag: data.tag.clone(),
        };
        assert_eq!(copy, data);
    }
}
