//! Quickstart: generate a key from a (simulated) biometric, reproduce it
//! from a noisy reading, and watch it fail for an impostor.
//!
//! Run with: `cargo run --release --example quickstart`

use fuzzy_id::core::{ChebyshevSketch, FuzzyExtractor, NumberLine};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    // The paper's Table II parameters: unit a = 100, k = 4 units per
    // interval, v = 500 intervals, threshold t = 100.
    let line = NumberLine::new(100, 4, 500)?;
    let sketch = ChebyshevSketch::new(line, 100)?;
    let fe = FuzzyExtractor::with_defaults(sketch, 32);

    // A synthetic biometric: n-dimensional integer features on the line.
    let n = 5000; // the paper's headline dimension
    let enrolled = fe.sketcher().line().random_vector(n, &mut rng);

    // Gen(x) → (R, P): a 32-byte key plus public helper data.
    let (key, helper) = fe.generate(&enrolled, &mut rng)?;
    println!("enrolled a {n}-dimensional biometric");
    println!("extracted key:      {} bytes", key.len());
    println!(
        "helper data:        {} movements + {}-byte tag + {}-byte seed",
        helper.sketch.inner.len(),
        helper.sketch.tag.len(),
        helper.seed.len()
    );

    // A genuine presentation: same biometric within Chebyshev distance t.
    let genuine: Vec<i64> = enrolled.iter().map(|x| x + 87).collect();
    let reproduced = fe.reproduce(&genuine, &helper)?;
    assert_eq!(reproduced, key);
    println!("genuine reading:    key reproduced ✓");

    // An impostor presentation: an unrelated biometric.
    let impostor = fe.sketcher().line().random_vector(n, &mut rng);
    match fe.reproduce(&impostor, &helper) {
        Err(e) => println!("impostor reading:   rejected ({e}) ✓"),
        Ok(_) => unreachable!("impostor must not reproduce the key"),
    }

    Ok(())
}
