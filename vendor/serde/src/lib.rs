//! Offline, API-compatible subset of `serde`.
//!
//! The workspace's own wire codec (`fe-protocol::wire`) is
//! serde-independent; the `#[derive(Serialize, Deserialize)]` on message
//! and helper-data types exists so downstream users with a real serde
//! stack can plug in their own format. Offline, those derives resolve to
//! this shim: [`Serialize`] / [`Deserialize`] are **marker traits** and
//! the derives emit empty impls. Swapping in the real `serde` crate
//! (same major version) requires no source changes.

#![forbid(unsafe_code)]

// Lets the derives' generated `::serde::...` paths resolve inside this
// crate's own tests as well as in downstream crates.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized (upstream: `serde::Serialize`).
pub trait Serialize {}

/// Marker for types that can be deserialized from a borrowed buffer
/// (upstream: `serde::Deserialize<'de>`).
pub trait Deserialize<'de> {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}

impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize + ?Sized> Serialize for &T {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _a: u32,
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<S> {
        _inner: S,
    }

    #[derive(Serialize, Deserialize)]
    enum Mixed {
        _A(String),
        _B,
    }

    #[test]
    fn derives_produce_marker_impls() {
        assert_serialize::<Plain>();
        assert_serialize::<Generic<Vec<i64>>>();
        assert_serialize::<Mixed>();
        assert_deserialize::<Plain>();
        assert_deserialize::<Generic<Vec<i64>>>();
        assert_deserialize::<Mixed>();
        assert_serialize::<Vec<Option<[u8; 4]>>>();
    }
}
