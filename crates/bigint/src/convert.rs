//! String and byte conversions for [`Natural`].

use crate::{Natural, ParseNaturalError};
use std::fmt;
use std::str::FromStr;

impl Natural {
    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    /// Returns [`ParseNaturalError`] if the string is empty or contains a
    /// non-hex character.
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// # fn main() -> Result<(), fe_bigint::ParseNaturalError> {
    /// let n = Natural::from_hex("ff")?;
    /// assert_eq!(n, Natural::from(255u64));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_hex(s: &str) -> Result<Natural, ParseNaturalError> {
        if s.is_empty() {
            return Err(ParseNaturalError::Empty);
        }
        let mut limbs: Vec<u64> = Vec::with_capacity(s.len() / 16 + 1);
        let bytes = s.as_bytes();
        let mut pos = bytes.len();
        while pos > 0 {
            let start = pos.saturating_sub(16);
            let chunk = &s[start..pos];
            let limb =
                u64::from_str_radix(chunk, 16).map_err(|_| ParseNaturalError::InvalidDigit)?;
            limbs.push(limb);
            pos = start;
        }
        Ok(Natural::from_limbs(limbs))
    }

    /// Parses a decimal string.
    ///
    /// # Errors
    /// Returns [`ParseNaturalError`] if the string is empty or contains a
    /// non-decimal character.
    pub fn from_decimal(s: &str) -> Result<Natural, ParseNaturalError> {
        if s.is_empty() {
            return Err(ParseNaturalError::Empty);
        }
        let mut acc = Natural::zero();
        for chunk in s.as_bytes().chunks(19) {
            let chunk_str =
                std::str::from_utf8(chunk).map_err(|_| ParseNaturalError::InvalidDigit)?;
            let v: u64 = chunk_str
                .parse()
                .map_err(|_| ParseNaturalError::InvalidDigit)?;
            acc = acc.mul_u64(10u64.pow(chunk.len() as u32)).add_u64(v);
        }
        Ok(acc)
    }

    /// Lowercase hexadecimal representation (no leading zeros; `"0"` for 0).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limbs.len() * 16);
        let mut iter = self.limbs.iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&format!("{top:x}"));
        }
        for l in iter {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Decimal representation.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(10_000_000_000_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        let mut iter = chunks.iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&top.to_string());
        }
        for c in iter {
            s.push_str(&format!("{c:019}"));
        }
        s
    }

    /// Big-endian byte representation (minimal length; empty for `0`).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Big-endian byte representation left-padded with zeros to `len` bytes.
    ///
    /// # Panics
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Builds a natural from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Natural {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Natural::from_limbs(limbs)
    }
}

impl FromStr for Natural {
    type Err = ParseNaturalError;

    /// Parses decimal by default, or hex with a `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            Natural::from_hex(hex)
        } else {
            Natural::from_decimal(s)
        }
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Natural(0x{})", self.to_hex())
    }
}

impl fmt::LowerHex for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let n = Natural::from_hex(s).unwrap();
            assert_eq!(n.to_hex(), s);
        }
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211455",
            "99999999999999999999999999999999999999999999",
        ] {
            let n = Natural::from_decimal(s).unwrap();
            assert_eq!(n.to_decimal(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn hex_decimal_agree() {
        let n = Natural::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        assert_eq!(n.to_decimal(), "340282366920938463463374607431768211455");
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Natural::from_hex(""), Err(ParseNaturalError::Empty));
        assert_eq!(
            Natural::from_hex("xyz"),
            Err(ParseNaturalError::InvalidDigit)
        );
        assert_eq!(
            Natural::from_decimal("12a"),
            Err(ParseNaturalError::InvalidDigit)
        );
        assert_eq!(
            Natural::from_decimal("-5"),
            Err(ParseNaturalError::InvalidDigit)
        );
    }

    #[test]
    fn from_str_prefixes() {
        assert_eq!("0xff".parse::<Natural>().unwrap(), Natural::from(255u64));
        assert_eq!("255".parse::<Natural>().unwrap(), Natural::from(255u64));
    }

    #[test]
    fn bytes_be_roundtrip() {
        let n = Natural::from_hex("0123456789abcdef0011223344556677").unwrap();
        let bytes = n.to_bytes_be();
        assert_eq!(Natural::from_bytes_be(&bytes), n);
        // Leading zero bytes are not emitted.
        assert_eq!(bytes[0], 0x01);
    }

    #[test]
    fn bytes_be_zero() {
        assert!(Natural::zero().to_bytes_be().is_empty());
        assert_eq!(Natural::from_bytes_be(&[]), Natural::zero());
        assert_eq!(Natural::from_bytes_be(&[0, 0, 0]), Natural::zero());
    }

    #[test]
    fn padded_bytes() {
        let n = Natural::from(0xabcdu64);
        assert_eq!(n.to_bytes_be_padded(4), vec![0, 0, 0xab, 0xcd]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small_panics() {
        Natural::from(0xabcdu64).to_bytes_be_padded(1);
    }

    #[test]
    fn display_and_debug() {
        let n = Natural::from(4096u64);
        assert_eq!(format!("{n}"), "4096");
        assert_eq!(format!("{n:x}"), "1000");
        assert_eq!(format!("{n:?}"), "Natural(0x1000)");
    }
}
