//! Synthetic biometric workloads for the `fuzzy-id` experiments.
//!
//! The paper's evaluation (Sec. VII) deliberately uses *simulated* data
//! "independent from any type of biometric": templates are `n`-dimensional
//! integer vectors with elements in `[-100000, 100000]`, and a genuine
//! presentation is the enrolled template plus bounded noise (within the
//! Chebyshev threshold `t`). This crate is that workload generator, plus:
//!
//! * noise models beyond bounded-uniform (truncated Gaussian, burst
//!   outliers) for the robustness experiments;
//! * a feature [`encoder`](crate::UniformQuantizer) for mapping continuous
//!   features onto the discrete number line;
//! * an iris-code-style bit-string model for the Hamming-metric baselines;
//! * an empirical FAR/FRR measurement harness.
//!
//! ```rust
//! use fe_biometric::{NoiseModel, PopulationGenerator, UniformNoise};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let gen = PopulationGenerator::paper_defaults(5000);
//! let template = gen.random_template(&mut rng);
//! let reading = UniformNoise::new(100).perturb(template.features(), &mut rng);
//! let max_dev = template
//!     .features()
//!     .iter()
//!     .zip(&reading)
//!     .map(|(a, b)| a.abs_diff(*b))
//!     .max()
//!     .unwrap();
//! assert!(max_dev <= 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encoder;
mod eval;
mod generator;
mod iris;
mod noise;
mod template;

pub use encoder::UniformQuantizer;
pub use eval::{measure_error_rates, ErrorRates};
pub use generator::PopulationGenerator;
pub use iris::IrisCodeModel;
pub use noise::{BurstNoise, GaussianNoise, NoNoise, NoiseModel, UniformNoise};
pub use template::Template;
