//! Chebyshev (L∞ / maximum-norm) distance — the paper's metric (Def. 3).

use crate::Metric;

/// Chebyshev distance on integer vectors:
/// `dis(x, y) = max_i |x_i - y_i|`.
///
/// ```rust
/// use fe_metrics::{Chebyshev, Metric};
///
/// assert_eq!(Chebyshev.distance(&[1i64, -2, 3][..], &[4, 2, 3][..]), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl Metric<[i64]> for Chebyshev {
    type Distance = u64;

    /// # Panics
    /// Panics if the vectors have different lengths.
    fn distance(&self, a: &[i64], b: &[i64]) -> u64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| x.abs_diff(y))
            .max()
            .unwrap_or(0)
    }
}

/// Chebyshev distance on a ring of circumference `period` (the paper's
/// number line `La` "can be considered as a ring", Sec. IV-B special case 2).
///
/// Coordinates are compared by the shorter way around the circle:
/// `d(x, y) = min(|x - y| mod period, period - |x - y| mod period)`.
///
/// ```rust
/// use fe_metrics::{Metric, RingChebyshev};
///
/// let m = RingChebyshev::new(100);
/// // 98 and 2 are distance 4 apart around the ring, not 96.
/// assert_eq!(m.distance(&[98i64][..], &[2][..]), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingChebyshev {
    period: u64,
}

impl RingChebyshev {
    /// Creates the ring metric with the given circumference.
    ///
    /// # Panics
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        RingChebyshev { period }
    }

    /// The ring circumference.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Cyclic distance between two scalars.
    pub fn scalar_distance(&self, x: i64, y: i64) -> u64 {
        let diff = x.abs_diff(y) % self.period;
        diff.min(self.period - diff)
    }
}

impl Metric<[i64]> for RingChebyshev {
    type Distance = u64;

    /// # Panics
    /// Panics if the vectors have different lengths.
    fn distance(&self, a: &[i64], b: &[i64]) -> u64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.scalar_distance(x, y))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_chebyshev() {
        assert_eq!(Chebyshev.distance(&[][..], &[][..]), 0);
        assert_eq!(Chebyshev.distance(&[5i64][..], &[5][..]), 0);
        assert_eq!(Chebyshev.distance(&[0i64, 0][..], &[-7, 3][..]), 7);
    }

    #[test]
    fn chebyshev_handles_extremes() {
        assert_eq!(
            Chebyshev.distance(&[i64::MIN][..], &[i64::MAX][..]),
            u64::MAX
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_lengths_panic() {
        Chebyshev.distance(&[1i64][..], &[1, 2][..]);
    }

    #[test]
    fn ring_wraps() {
        let m = RingChebyshev::new(10);
        assert_eq!(m.scalar_distance(0, 9), 1);
        assert_eq!(m.scalar_distance(9, 0), 1);
        assert_eq!(m.scalar_distance(2, 7), 5);
        assert_eq!(m.scalar_distance(-1, 1), 2);
        assert_eq!(m.scalar_distance(0, 5), 5); // antipodal
    }

    #[test]
    fn ring_symmetry_and_identity() {
        let m = RingChebyshev::new(400);
        for (x, y) in [(0i64, 399), (-200, 200), (123, -77)] {
            assert_eq!(m.scalar_distance(x, y), m.scalar_distance(y, x));
        }
        assert_eq!(m.scalar_distance(42, 42), 0);
    }

    #[test]
    fn ring_triangle_inequality_smoke() {
        let m = RingChebyshev::new(37);
        for x in -40i64..40 {
            for y in -40i64..40 {
                for z in [-15i64, 0, 22] {
                    let d_xy = m.scalar_distance(x, y);
                    let d_xz = m.scalar_distance(x, z);
                    let d_zy = m.scalar_distance(z, y);
                    assert!(d_xy <= d_xz + d_zy, "triangle failed at {x},{y},{z}");
                }
            }
        }
    }

    #[test]
    fn ring_vector_distance() {
        let m = RingChebyshev::new(100);
        let d = m.distance(&[98i64, 50][..], &[2, 52][..]);
        assert_eq!(d, 4); // max(4, 2)
    }
}
