//! Micro-benchmarks of the core sketch pipeline: `SS`, `Rec`, the match
//! conditions and the robust-tag overhead, at the paper's n = 5000.

use criterion::{criterion_group, criterion_main, Criterion};
use fe_core::conditions::sketches_match;
use fe_core::{ChebyshevSketch, RobustSketch, SecureSketch};
use fe_crypto::Sha256;
use rand::SeedableRng;
use std::time::Duration;

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_core");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    let mut rng = rand::rngs::StdRng::seed_from_u64(0x3C0);
    let scheme = ChebyshevSketch::paper_defaults();
    let x = scheme.line().random_vector(5000, &mut rng);

    group.bench_function("ss_n5000", |b| {
        b.iter(|| scheme.sketch(std::hint::black_box(&x), &mut rng).unwrap())
    });

    let sketch = scheme.sketch(&x, &mut rng).unwrap();
    let y: Vec<i64> = x.iter().map(|v| v + 42).collect();
    group.bench_function("rec_n5000", |b| {
        b.iter(|| scheme.recover(std::hint::black_box(&y), &sketch).unwrap())
    });

    let robust = RobustSketch::<_, Sha256>::new(scheme);
    let rdata = robust.sketch(&x, &mut rng).unwrap();
    group.bench_function("robust_rec_n5000", |b| {
        b.iter(|| robust.recover(std::hint::black_box(&y), &rdata).unwrap())
    });

    // Condition matching: the per-record cost of the server's scan.
    let probe = scheme.sketch(&y, &mut rng).unwrap();
    group.bench_function("conditions_match_n5000", |b| {
        b.iter(|| {
            assert!(sketches_match(
                std::hint::black_box(&sketch),
                &probe,
                scheme.threshold(),
                scheme.line().interval_len()
            ))
        })
    });

    // Non-matching record: early abort makes this ~2 coordinate checks.
    let other = scheme.line().random_vector(5000, &mut rng);
    let other_sketch = scheme.sketch(&other, &mut rng).unwrap();
    group.bench_function("conditions_mismatch_early_abort", |b| {
        b.iter(|| {
            assert!(!sketches_match(
                std::hint::black_box(&other_sketch),
                &probe,
                scheme.threshold(),
                scheme.line().interval_len()
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_core);
criterion_main!(benches);
