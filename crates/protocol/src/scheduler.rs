//! The request scheduler: adaptive micro-batching for heavy-traffic
//! identification.
//!
//! # Why a scheduler
//!
//! A single `identify` request pays one full early-abort sweep over the
//! enrolled population. At scale that sweep is **memory-bound** (see
//! the storage engine notes in `fe-core::index::store`), so two
//! concurrent requests that each scan the index do twice the memory
//! traffic for no reason: the multi-query kernel
//! (`SketchArena::find_first_batch`) can resolve both in *one* pass.
//! The scheduler is the piece that turns that kernel into service-level
//! throughput: concurrent callers land in one admission queue, a small
//! pool of workers drains the queue in **micro-batches** — flushed when
//! the batch fills *or* when the oldest request has waited out the
//! batch window, whichever comes first — and each batch runs through
//! [`SharedServer::identify_batch`], which hands the whole batch to
//! every shard's single-pass batch kernel.
//!
//! The flush rule is the latency/throughput dial:
//!
//! * **quiet server** — a lone request waits at most
//!   [`SchedulerConfig::max_delay`] before a batch of one flushes, so
//!   the added latency is bounded by the window;
//! * **busy server** — the queue reaches
//!   [`SchedulerConfig::max_batch`] long before the deadline, batches
//!   flush full, and the per-request scan cost approaches
//!   `1/max_batch` of a solo scan.
//!
//! # Batching is overload control, not a speedup dial
//!
//! With the vectorized, prefiltered (and now multi-core) scan kernel,
//! the measured batched-vs-direct *throughput* ratio on a warm server
//! collapses to ≈1.0 (`scheduler_batch_speedup` in BENCH_SMOKE): one
//! probe already streams the arena at close to memory bandwidth, so
//! coalescing probes no longer multiplies throughput the way it did
//! against the scalar kernel. What batching still buys — and why the
//! scheduler stays in front of the server — is **overload behaviour**:
//! bounded admission, fail-fast shedding, one queue discipline instead
//! of a thundering herd of callers, and a per-request latency bound
//! under load (`1/max_batch` of a sweep instead of a whole sweep).
//!
//! # One level of parallelism
//!
//! Scheduler workers are plain threads; the scan kernel they call fans
//! out on the process-wide worker pool (`ParallelConfig`). Those two
//! layers cannot oversubscribe each other: the pool is sized once from
//! available parallelism, arenas refuse to fan out when already *on* a
//! pool worker (a sharded index's per-shard tasks), and the default
//! worker count below is capped at the hardware thread count — so a
//! micro-batch is handed to the parallel kernel as-is, not split again.
//!
//! # Backpressure
//!
//! The admission queue is **bounded** ([`SchedulerConfig::queue_capacity`]).
//! When it is full, [`ScheduledServer::submit`] fails fast with
//! [`ProtocolError::Overloaded`] instead of queueing without bound —
//! under sustained overload the server keeps serving at its capacity
//! and sheds the excess, rather than growing an unbounded backlog whose
//! every entry times out. Draining the queue immediately re-opens
//! admission.
//!
//! # Observability
//!
//! The scheduler exports [`SchedulerMetrics`]: latency, queue-depth and
//! batch-size histograms (lock-free, see [`fe_metrics::telemetry`])
//! plus admission/shed/flush counters — the numbers the
//! `scheduler_throughput` bench and the CI smoke report read out.

use crate::concurrent::SharedServer;
use crate::messages::{EnrollmentRecord, IdentChallenge, UserId};
use crate::params::SystemParams;
use crate::server::BuildIndex;
use crate::ProtocolError;
use fe_core::{EpochIndex, EpochRead};
use fe_metrics::telemetry::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tunables for the identification request scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Flush a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush a batch once its *oldest* request has waited this long —
    /// the worst-case scheduling latency a quiet server adds.
    pub max_delay: Duration,
    /// Admission bound: requests beyond this many queued are shed with
    /// [`ProtocolError::Overloaded`].
    pub queue_capacity: usize,
    /// Worker threads draining the queue. `0` (the default) means one
    /// per server shard, capped at the hardware thread count (more
    /// drainers than cores would only contend with the scan kernel's
    /// own pool fan-out): with `W` workers, `W` micro-batches execute
    /// concurrently, each taking the per-shard read locks in turn.
    pub workers: usize,
    /// Seed for the workers' challenge RNG (worker `i` derives its own
    /// stream from `rng_seed + i`). The default is drawn from OS
    /// entropy per config — challenge values must not be predictable
    /// across deployments; pin a seed only for reproducible tests and
    /// benches. (On the unscheduled path the *caller* supplies the
    /// RNG; this knob is the scheduler's equivalent.)
    pub rng_seed: u64,
}

/// A per-process-unpredictable seed: OS entropy when available, clock ⊕
/// pid otherwise. The vendored `rand` shim has no entropy hook, so the
/// default config reads it directly.
fn entropy_seed() -> u64 {
    use std::io::Read;
    let mut buf = [0u8; 8];
    if std::fs::File::open("/dev/urandom")
        .and_then(|mut f| f.read_exact(&mut buf))
        .is_ok()
    {
        return u64::from_le_bytes(buf);
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    nanos ^ u64::from(std::process::id()).rotate_left(32)
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 0,
            rng_seed: entropy_seed(),
        }
    }
}

/// Counters and distributions exported by a running scheduler.
///
/// Histograms are lock-free and safe to snapshot while the scheduler
/// serves traffic; see [`fe_metrics::telemetry::Histogram::snapshot`].
#[derive(Debug, Default)]
pub struct SchedulerMetrics {
    /// End-to-end scheduling latency in **microseconds**: admission to
    /// result ready (queue wait + batch window + batch execution).
    pub latency_us: Histogram,
    /// Requests per flushed batch.
    pub batch_size: Histogram,
    /// Queue depth sampled at each admission (after the enqueue).
    pub queue_depth: Histogram,
    admitted: AtomicU64,
    shed: AtomicU64,
    size_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
}

impl SchedulerMetrics {
    /// Requests accepted into the queue.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests refused with [`ProtocolError::Overloaded`].
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Batches flushed because they filled to
    /// [`SchedulerConfig::max_batch`].
    pub fn size_flushes(&self) -> u64 {
        self.size_flushes.load(Ordering::Relaxed)
    }

    /// Batches flushed by the [`SchedulerConfig::max_delay`] deadline
    /// (or by shutdown drain) before filling.
    pub fn deadline_flushes(&self) -> u64 {
        self.deadline_flushes.load(Ordering::Relaxed)
    }
}

/// One queued identification request.
#[derive(Debug)]
struct Pending {
    probe: Vec<i64>,
    enqueued: Instant,
    reply: mpsc::Sender<Result<IdentChallenge, ProtocolError>>,
}

/// The admission queue, guarded by one mutex (held only to push/drain —
/// never across a scan).
#[derive(Debug)]
struct Queue {
    items: VecDeque<Pending>,
    shutdown: bool,
}

#[derive(Debug)]
struct Inner {
    queue: Mutex<Queue>,
    /// Signalled on enqueue and on shutdown; workers also time out on
    /// it to honour the batch-window deadline.
    wake: Condvar,
    config: SchedulerConfig,
    metrics: SchedulerMetrics,
}

/// Locks the queue, shrugging off poisoning (a panicking worker must
/// not wedge admission; the queue's state is valid between operations).
fn lock(queue: &Mutex<Queue>) -> MutexGuard<'_, Queue> {
    queue.lock().unwrap_or_else(|p| p.into_inner())
}

/// A handle to one in-flight scheduled identification: redeem it with
/// [`IdentifyTicket::wait`]. Submitting and waiting are decoupled so an
/// open-loop caller (or a caller batching its own fan-out) can admit
/// many requests before blocking on any result.
#[derive(Debug)]
pub struct IdentifyTicket {
    rx: mpsc::Receiver<Result<IdentChallenge, ProtocolError>>,
}

impl IdentifyTicket {
    /// Blocks until the micro-batch carrying this request has executed.
    ///
    /// # Errors
    /// Whatever the underlying lookup produced (usually
    /// [`ProtocolError::NoMatch`]); [`ProtocolError::Overloaded`] if the
    /// scheduler shut down before serving this request (it drains its
    /// queue on shutdown, so this is defensive).
    pub fn wait(self) -> Result<IdentChallenge, ProtocolError> {
        self.rx.recv().unwrap_or(Err(ProtocolError::Overloaded))
    }
}

/// A [`SharedServer`] behind an adaptive micro-batching admission queue
/// (see the [module docs](self) for the design).
///
/// Identification goes through the scheduler
/// ([`ScheduledServer::identify`] / [`ScheduledServer::submit`]);
/// everything else — enrollment, revocation, phase-2 verification,
/// session cancellation — goes to the wrapped server directly via
/// [`ScheduledServer::server`] (those paths are not scan-bound, so
/// batching them buys nothing).
///
/// Dropping the scheduler shuts it down cleanly: workers drain the
/// queue (every admitted request still gets its result) and exit.
///
/// ```rust
/// use fe_protocol::scheduler::{ScheduledServer, SchedulerConfig};
/// use fe_protocol::{BiometricDevice, SystemParams};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), fe_protocol::ProtocolError> {
/// let params = SystemParams::insecure_test_defaults();
/// let device = BiometricDevice::new(params.clone());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
///
/// let scheduler = ScheduledServer::scan(params.clone(), 2, SchedulerConfig::default());
/// let bio = params.sketch().line().random_vector(16, &mut rng);
/// scheduler.server().enroll(device.enroll("alice", &bio, &mut rng)?)?;
///
/// let probe = device.probe_sketch(&bio, &mut rng)?;
/// let challenge = scheduler.identify(probe)?; // coalesced with concurrent callers
/// let response = device.respond(&bio, &challenge, &mut rng)?;
/// let outcome = scheduler.server().finish_identification(&response)?;
/// assert_eq!(outcome.identity(), Some("alice"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ScheduledServer<I: EpochRead = EpochIndex> {
    server: SharedServer<I>,
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ScheduledServer<EpochIndex> {
    /// A scheduled server over `shards` epoch-index shards — the common
    /// configuration ([`SharedServer::with_shards`] +
    /// [`ScheduledServer::new`]).
    ///
    /// # Panics
    /// Panics if `shards == 0` or the config is degenerate (see
    /// [`ScheduledServer::new`]).
    pub fn scan(params: SystemParams, shards: usize, config: SchedulerConfig) -> Self {
        ScheduledServer::new(SharedServer::with_shards(params, shards), config)
    }
}

impl<I: EpochRead + Send + Sync + 'static> ScheduledServer<I> {
    /// Wraps an existing server (in-memory or durable) in a scheduler
    /// and starts its worker pool.
    ///
    /// # Panics
    /// Panics if `config.max_batch == 0` or
    /// `config.queue_capacity == 0`.
    pub fn new(server: SharedServer<I>, config: SchedulerConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(
            config.queue_capacity >= 1,
            "queue_capacity must be at least 1"
        );
        let workers = if config.workers == 0 {
            let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            server.num_shards().clamp(1, hw)
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            queue: Mutex::new(Queue {
                items: VecDeque::with_capacity(config.queue_capacity.min(4096)),
                shutdown: false,
            }),
            wake: Condvar::new(),
            config,
            metrics: SchedulerMetrics::default(),
        });
        let handles = (0..workers)
            .map(|w| {
                let server = server.clone();
                let inner = Arc::clone(&inner);
                let seed = inner.config.rng_seed.wrapping_add(w as u64);
                std::thread::Builder::new()
                    .name(format!("fe-sched-{w}"))
                    .spawn(move || worker_loop(server, inner, seed))
                    .expect("spawn scheduler worker")
            })
            .collect();
        ScheduledServer {
            server,
            inner,
            workers: handles,
        }
    }

    /// The wrapped server: enrollment, revocation, phase-2
    /// (`finish_identification`), cancellation and diagnostics all go
    /// here — only phase-1 identification is scheduled.
    pub fn server(&self) -> &SharedServer<I> {
        &self.server
    }

    /// The scheduler's exported metrics.
    pub fn metrics(&self) -> &SchedulerMetrics {
        &self.inner.metrics
    }

    /// Worker threads serving the queue.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Admits one identification request without blocking on its
    /// result; redeem the returned ticket with [`IdentifyTicket::wait`].
    ///
    /// # Errors
    /// [`ProtocolError::Overloaded`] when the admission queue is full
    /// or the scheduler is shutting down (fail-fast backpressure — the
    /// caller should back off and retry).
    pub fn submit(&self, probe: Vec<i64>) -> Result<IdentifyTicket, ProtocolError> {
        let (tx, rx) = mpsc::channel();
        let depth = {
            let mut q = lock(&self.inner.queue);
            if q.shutdown || q.items.len() >= self.inner.config.queue_capacity {
                self.inner.metrics.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ProtocolError::Overloaded);
            }
            q.items.push_back(Pending {
                probe,
                enqueued: Instant::now(),
                reply: tx,
            });
            q.items.len()
        };
        self.inner.metrics.admitted.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.queue_depth.observe(depth as u64);
        self.inner.wake.notify_one();
        Ok(IdentifyTicket { rx })
    }

    /// Scheduled identification phase 1: enqueue the probe, wait for
    /// its micro-batch, return the challenge. Equivalent to
    /// [`SharedServer::begin_identification`] in outcome (same match
    /// semantics — the equivalence is property-tested in
    /// `tests/scheduler.rs`), but concurrent callers share index scans.
    ///
    /// # Errors
    /// [`ProtocolError::NoMatch`] when no record matches;
    /// [`ProtocolError::Overloaded`] when the queue is full.
    pub fn identify(&self, probe: Vec<i64>) -> Result<IdentChallenge, ProtocolError> {
        self.submit(probe)?.wait()
    }

    /// Schedules a caller-side batch: all probes are admitted before
    /// any result is awaited (so one caller cannot deadlock itself),
    /// then resolved in admission order. Results are position-aligned
    /// with `probes`; probes refused at admission report
    /// [`ProtocolError::Overloaded`] in their slot.
    pub fn identify_batch(
        &self,
        probes: &[Vec<i64>],
    ) -> Vec<Result<IdentChallenge, ProtocolError>> {
        let tickets: Vec<Result<IdentifyTicket, ProtocolError>> =
            probes.iter().map(|p| self.submit(p.clone())).collect();
        tickets
            .into_iter()
            .map(|ticket| ticket.and_then(IdentifyTicket::wait))
            .collect()
    }

    /// Uniqueness-checked enrollment, delegated to
    /// [`SharedServer::enroll_unique`]. Enrollment is a write path —
    /// rare next to identification — so it bypasses the micro-batch
    /// queue like [`SharedServer::enroll`] does.
    ///
    /// # Errors
    /// Same as [`SharedServer::enroll_unique`].
    pub fn enroll_unique(&self, record: EnrollmentRecord) -> Result<(), ProtocolError> {
        self.server.enroll_unique(record)
    }

    /// Reset lookup (exactly-one-match), delegated to
    /// [`SharedServer::reset`]. Resets are rare administrative events;
    /// they run directly under the shard read locks rather than queueing
    /// behind identification micro-batches.
    ///
    /// # Errors
    /// Same as [`SharedServer::reset`].
    pub fn reset(&self, probe: &[i64]) -> Result<UserId, ProtocolError> {
        self.server.reset(probe)
    }

    /// Targeted claimed-identity check, delegated to
    /// [`SharedServer::authenticate_claimed`] (a one-row sweep — nothing
    /// for the batch kernel to amortize).
    ///
    /// # Errors
    /// Same as [`SharedServer::authenticate_claimed`].
    pub fn authenticate_claimed(
        &self,
        claimed_id: &str,
        probe: &[i64],
    ) -> Result<bool, ProtocolError> {
        self.server.authenticate_claimed(claimed_id, probe)
    }

    /// Subset uniqueness check, delegated to
    /// [`SharedServer::check_local_uniqueness`].
    ///
    /// # Errors
    /// Same as [`SharedServer::check_local_uniqueness`].
    pub fn check_local_uniqueness(
        &self,
        probe: &[i64],
        ids: &[UserId],
    ) -> Result<bool, ProtocolError> {
        self.server.check_local_uniqueness(probe, ids)
    }
}

impl<I: BuildIndex + EpochRead + Send + Sync + 'static> SharedServer<I> {
    /// A fresh shard-partitioned server behind a request scheduler —
    /// the heavy-traffic entry point (see
    /// [`ScheduledServer`] and the [`crate::scheduler`] module docs).
    ///
    /// # Panics
    /// Panics if `shards == 0` or the config is degenerate.
    pub fn scheduled(
        params: SystemParams,
        shards: usize,
        config: SchedulerConfig,
    ) -> ScheduledServer<I> {
        ScheduledServer::new(SharedServer::with_shards(params, shards), config)
    }
}

impl<I: EpochRead> Drop for ScheduledServer<I> {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.wake.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that panicked already reported via the test
            // harness / stderr; don't double-panic the destructor.
            let _ = handle.join();
        }
    }
}

/// One worker: wait for work, hold the batch window open until the
/// batch fills or the oldest request's deadline passes, drain up to
/// `max_batch`, execute through the server's batch path, deliver.
fn worker_loop<I: EpochRead + Send + Sync + 'static>(
    server: SharedServer<I>,
    inner: Arc<Inner>,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = &inner.config;
    'serve: loop {
        let mut batch: Vec<Pending> = {
            let mut q = lock(&inner.queue);
            // Wait for the queue to become non-empty (or shutdown with
            // nothing left to drain).
            loop {
                if !q.items.is_empty() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = inner.wake.wait(q).unwrap_or_else(|p| p.into_inner());
            }
            // Batch window: the oldest queued request anchors the
            // deadline, so scheduling latency is bounded per request,
            // not reset by late arrivals.
            let deadline = q.items.front().expect("non-empty").enqueued + cfg.max_delay;
            while q.items.len() < cfg.max_batch && !q.shutdown {
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (guard, _timeout) = inner
                    .wake
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
                if q.items.is_empty() {
                    // Another worker drained the queue while we slept;
                    // go back to waiting for fresh work.
                    continue 'serve;
                }
            }
            let take = q.items.len().min(cfg.max_batch);
            q.items.drain(..take).collect()
        };
        if batch.len() >= cfg.max_batch {
            inner.metrics.size_flushes.fetch_add(1, Ordering::Relaxed);
        } else {
            inner
                .metrics
                .deadline_flushes
                .fetch_add(1, Ordering::Relaxed);
        }
        inner.metrics.batch_size.observe(batch.len() as u64);

        // Execute outside the queue lock: admission stays open while
        // the batch scans. One identify_batch call = one pass over each
        // shard's arena for the whole micro-batch.
        let probes: Vec<Vec<i64>> = batch
            .iter_mut()
            .map(|p| std::mem::take(&mut p.probe))
            .collect();
        let results = server.identify_batch(&probes, &mut rng);
        let done = Instant::now();
        for (pending, result) in batch.into_iter().zip(results) {
            let waited = done.saturating_duration_since(pending.enqueued);
            inner.metrics.latency_us.observe(waited.as_micros() as u64);
            // A caller that gave up (dropped its ticket) is not an
            // error; the challenge it abandoned is still pending on the
            // server until it expires via cancel_session / timeout
            // handling, exactly as with the unscheduled path.
            let _ = pending.reply.send(result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BiometricDevice;

    fn population(
        scheduler: &ScheduledServer<EpochIndex>,
        users: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> (BiometricDevice, Vec<Vec<i64>>) {
        let params = scheduler.server().params().clone();
        let device = BiometricDevice::new(params.clone());
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(dim, rng);
            scheduler
                .server()
                .enroll(device.enroll(&format!("user-{u}"), &bio, rng).unwrap())
                .unwrap();
            bios.push(bio);
        }
        (device, bios)
    }

    #[test]
    fn lone_request_flushes_within_the_window() {
        let params = SystemParams::insecure_test_defaults();
        let scheduler = ScheduledServer::scan(
            params,
            1,
            SchedulerConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(5),
                ..SchedulerConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(100);
        let (device, bios) = population(&scheduler, 1, 16, &mut rng);
        let reading: Vec<i64> = bios[0].iter().map(|&x| x + 10).collect();
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        // The batch can never fill (one caller, max_batch 64): only the
        // deadline can flush it.
        let chal = scheduler.identify(probe).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert!(scheduler
            .server()
            .finish_identification(&resp)
            .unwrap()
            .is_identified());
        assert_eq!(scheduler.metrics().deadline_flushes(), 1);
        assert_eq!(scheduler.metrics().size_flushes(), 0);
        assert_eq!(scheduler.metrics().batch_size.snapshot().max, 1);
    }

    #[test]
    fn full_batch_flushes_on_size() {
        let params = SystemParams::insecure_test_defaults();
        let scheduler = ScheduledServer::scan(
            params,
            1,
            SchedulerConfig {
                max_batch: 4,
                // A deadline long enough that only the size trigger can
                // flush the first batch.
                max_delay: Duration::from_secs(30),
                workers: 1,
                ..SchedulerConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(101);
        let (device, bios) = population(&scheduler, 4, 16, &mut rng);
        let tickets: Vec<IdentifyTicket> = bios
            .iter()
            .map(|bio| {
                let reading: Vec<i64> = bio.iter().map(|&x| x - 12).collect();
                let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                scheduler.submit(probe).unwrap()
            })
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        assert_eq!(scheduler.metrics().size_flushes(), 1);
        assert_eq!(scheduler.metrics().batch_size.snapshot().max, 4);
        assert_eq!(scheduler.metrics().admitted(), 4);
    }

    #[test]
    fn no_match_and_match_coexist_in_one_batch() {
        let params = SystemParams::insecure_test_defaults();
        let scheduler = ScheduledServer::scan(params.clone(), 2, SchedulerConfig::default());
        let mut rng = StdRng::seed_from_u64(102);
        let (device, bios) = population(&scheduler, 3, 16, &mut rng);
        let mut probes = Vec::new();
        for bio in &bios {
            let reading: Vec<i64> = bio.iter().map(|&x| x + 25).collect();
            probes.push(device.probe_sketch(&reading, &mut rng).unwrap());
        }
        let stranger = params.sketch().line().random_vector(16, &mut rng);
        probes.push(device.probe_sketch(&stranger, &mut rng).unwrap());
        let results = scheduler.identify_batch(&probes);
        assert_eq!(results.len(), 4);
        for r in &results[..3] {
            assert!(r.is_ok());
        }
        assert_eq!(results[3], Err(ProtocolError::NoMatch));
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let params = SystemParams::insecure_test_defaults();
        let scheduler = ScheduledServer::scan(
            params,
            1,
            SchedulerConfig {
                max_batch: 16,
                // Longer than the test: only shutdown can flush.
                max_delay: Duration::from_secs(30),
                workers: 1,
                ..SchedulerConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(103);
        let (device, bios) = population(&scheduler, 2, 16, &mut rng);
        let reading: Vec<i64> = bios[1].iter().map(|&x| x + 5).collect();
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let ticket = scheduler.submit(probe).unwrap();
        drop(scheduler); // shutdown drains the queue before workers exit
        assert!(ticket.wait().is_ok());
    }
}
