//! Concurrency integration: one shared authentication server, many
//! devices enrolling, identifying, verifying and revoking in parallel.

use fuzzy_id::protocol::concurrent::SharedServer;
use fuzzy_id::protocol::{BiometricDevice, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noisy(bio: &[i64], rng: &mut StdRng) -> Vec<i64> {
    bio.iter().map(|&x| x + rng.gen_range(-90i64..=90)).collect()
}

#[test]
fn parallel_identification_storm() {
    let params = SystemParams::insecure_test_defaults();
    let server = SharedServer::new(params.clone());
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(7_000);

    let users = 12usize;
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(200, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }

    crossbeam::scope(|scope| {
        // Each user identifies 3 times concurrently.
        for round in 0..3u64 {
            for (u, bio) in bios.iter().enumerate() {
                let server = server.clone();
                let device = device.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(round * 1000 + u as u64);
                    let reading = noisy(bio, &mut rng);
                    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                    let chal = server.begin_identification(&probe, &mut rng).unwrap();
                    let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                    let outcome = server.finish_identification(&resp).unwrap();
                    assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                });
            }
        }
    })
    .expect("no thread panicked");
}

#[test]
fn interleaved_sessions_do_not_cross_talk() {
    // Open all challenges first, answer them in reverse order: every
    // session must still resolve to its own user.
    let params = SystemParams::insecure_test_defaults();
    let server = SharedServer::new(params.clone());
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(7_100);

    let users = 6usize;
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(150, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }

    let mut open = Vec::new();
    for (u, bio) in bios.iter().enumerate() {
        let reading = noisy(bio, &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        open.push((u, reading, chal));
    }
    for (u, reading, chal) in open.into_iter().rev() {
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        let outcome = server.finish_identification(&resp).unwrap();
        assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
    }
}

#[test]
fn enrollment_and_identification_interleave() {
    let params = SystemParams::insecure_test_defaults();
    let server = SharedServer::new(params.clone());
    let device = BiometricDevice::new(params.clone());

    // Seed population.
    let mut rng = StdRng::seed_from_u64(7_200);
    let mut bios = Vec::new();
    for u in 0..4 {
        let bio = params.sketch().line().random_vector(150, &mut rng);
        server
            .enroll(device.enroll(&format!("seed-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }

    crossbeam::scope(|scope| {
        // Writers: enroll 8 new users.
        for w in 0..8 {
            let server = server.clone();
            let device = device.clone();
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(8_000 + w);
                let bio = device.params().sketch().line().random_vector(150, &mut rng);
                server
                    .enroll(device.enroll(&format!("new-{w}"), &bio, &mut rng).unwrap())
                    .unwrap();
            });
        }
        // Readers: identify seed users while writers run.
        for (u, bio) in bios.iter().enumerate() {
            let server = server.clone();
            let device = device.clone();
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(9_000 + u as u64);
                let reading = noisy(bio, &mut rng);
                let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                let chal = server.begin_identification(&probe, &mut rng).unwrap();
                let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                assert!(server.finish_identification(&resp).unwrap().is_identified());
            });
        }
    })
    .expect("no thread panicked");
    assert_eq!(server.user_count(), 12);
}
