//! Server-side sketch lookup for the identification protocol.
//!
//! Given an incoming probe sketch `s'`, the server must find the enrolled
//! record whose sketch matches under conditions (1)–(4). Two strategies:
//!
//! * [`ScanIndex`] — the paper-faithful approach: scan records, applying
//!   the cheap integer conditions with early abort. At the paper's
//!   parameters a non-matching record fails after ~2 coordinates in
//!   expectation (pass probability per coordinate ≈ (2t+1)/ka ≈ ½), so the
//!   scan is orders of magnitude cheaper than one signature operation —
//!   the observed "constant" identification cost.
//! * [`BucketIndex`] — an engineering extension: an LSH-style hash index
//!   on a coarse quantization of the leading coordinates, with multi-probe
//!   lookup. Genuinely sublinear in the number of records; documented as
//!   an extension in DESIGN.md and quantified in the index ablation bench.

use crate::conditions::sketches_match;
use std::collections::HashMap;

/// A unique record handle assigned by the index.
pub type RecordId = usize;

/// A lookup structure over enrolled sketches.
pub trait SketchIndex {
    /// Inserts a sketch, returning its record id.
    fn insert(&mut self, sketch: Vec<i64>) -> RecordId;

    /// Finds the first record matching the probe under conditions
    /// (1)–(4), if any.
    fn lookup(&self, probe: &[i64]) -> Option<RecordId>;

    /// Finds *all* matching records (used to measure false-close rates).
    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId>;

    /// Removes a record (revocation). Record ids are stable: removal
    /// never renumbers other records. Returns `false` if the id was
    /// unknown or already removed.
    fn remove(&mut self, id: RecordId) -> bool;

    /// Number of live (non-removed) sketches.
    fn len(&self) -> usize;

    /// `true` when no sketches are enrolled.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Early-abort linear scan (the paper's strategy).
#[derive(Debug, Clone)]
pub struct ScanIndex {
    t: u64,
    ka: u64,
    entries: Vec<Option<Vec<i64>>>,
    live: usize,
}

impl ScanIndex {
    /// Creates a scan index for sketches over a ring of circumference
    /// `ka` with threshold `t`.
    pub fn new(t: u64, ka: u64) -> Self {
        ScanIndex {
            t,
            ka,
            entries: Vec::new(),
            live: 0,
        }
    }

    /// Borrows an enrolled sketch by id (`None` for removed/unknown ids).
    pub fn sketch(&self, id: RecordId) -> Option<&[i64]> {
        self.entries.get(id)?.as_deref()
    }
}

impl SketchIndex for ScanIndex {
    fn insert(&mut self, sketch: Vec<i64>) -> RecordId {
        self.entries.push(Some(sketch));
        self.live += 1;
        self.entries.len() - 1
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        self.entries.iter().position(|s| {
            s.as_ref().is_some_and(|s| {
                s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
            })
        })
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                s.as_ref().is_some_and(|s| {
                    s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn remove(&mut self, id: RecordId) -> bool {
        match self.entries.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// LSH-style bucket index with multi-probe lookup (extension).
///
/// Each sketch coordinate is normalized onto `[0, ka)` and the first
/// `prefix_dims` coordinates are quantized into cells of width `2t + 1`;
/// the resulting cell tuple keys a hash bucket. A probe within cyclic
/// distance `t` per coordinate can only land in the same or an adjacent
/// cell, so lookup probes the `3^prefix_dims` neighbouring cell tuples and
/// verifies candidates with the full conditions.
///
/// **Pruning power**: the candidate fraction is roughly
/// `(3·(2t+1)/ka)^prefix_dims`. At the paper's Table II parameters
/// (`ka = 400, t = 100`) each coordinate has only ~2 cells, so *no*
/// coordinate-level index can prune — the early-abort [`ScanIndex`] is
/// already optimal there. The bucket index pays off when `ka ≫ t` (small
/// relative noise), which the index ablation bench quantifies.
#[derive(Debug, Clone)]
pub struct BucketIndex {
    t: u64,
    ka: u64,
    prefix_dims: usize,
    cells: u64,
    buckets: HashMap<Vec<u32>, Vec<RecordId>>,
    entries: Vec<Option<Vec<i64>>>,
    live: usize,
}

impl BucketIndex {
    /// Creates a bucket index keyed on the first `prefix_dims`
    /// coordinates.
    ///
    /// # Panics
    /// Panics if `prefix_dims == 0` or `prefix_dims > 8` (probe count is
    /// `3^prefix_dims`; 8 ⇒ 6561 probes, a sane ceiling).
    pub fn new(t: u64, ka: u64, prefix_dims: usize) -> Self {
        assert!(
            (1..=8).contains(&prefix_dims),
            "prefix_dims must be in 1..=8"
        );
        // Cells must all be at least t+1 wide, or a move of ≤ t could skip
        // across a sliver cell and land two cells away: give the remainder
        // its own cell only when it is big enough, otherwise merge it into
        // the last full cell.
        let width = 2 * t + 1;
        let mut cells = ka / width;
        if ka % width > t {
            cells += 1;
        }
        let cells = cells.max(1);
        BucketIndex {
            t,
            ka,
            prefix_dims,
            cells,
            buckets: HashMap::new(),
            entries: Vec::new(),
            live: 0,
        }
    }

    fn cell_of(&self, coord: i64) -> u32 {
        let norm = coord.rem_euclid(self.ka as i64) as u64;
        ((norm / (2 * self.t + 1)).min(self.cells - 1)) as u32
    }

    fn key_of(&self, sketch: &[i64]) -> Vec<u32> {
        sketch
            .iter()
            .take(self.prefix_dims)
            .map(|&c| self.cell_of(c))
            .collect()
    }

    /// Enumerates the `3^prefix_dims` neighbouring keys of a probe key.
    fn probe_keys(&self, probe: &[i64]) -> Vec<Vec<u32>> {
        let base = self.key_of(probe);
        let mut keys = vec![Vec::new()];
        for &cell in &base {
            let mut next = Vec::with_capacity(keys.len() * 3);
            let neighbours = [
                (cell as u64 + self.cells - 1) % self.cells,
                cell as u64,
                (cell as u64 + 1) % self.cells,
            ];
            // Dedup (cells can collapse when the ring is tiny).
            let mut uniq: Vec<u64> = neighbours.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            for prefix in &keys {
                for &n in &uniq {
                    let mut k = prefix.clone();
                    k.push(n as u32);
                    next.push(k);
                }
            }
            keys = next;
        }
        keys
    }

    /// Candidate records sharing a probed bucket (before full
    /// verification) — exposed for the ablation bench.
    pub fn candidates(&self, probe: &[i64]) -> Vec<RecordId> {
        let mut out = Vec::new();
        for key in self.probe_keys(probe) {
            if let Some(ids) = self.buckets.get(&key) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl SketchIndex for BucketIndex {
    fn insert(&mut self, sketch: Vec<i64>) -> RecordId {
        assert!(
            sketch.len() >= self.prefix_dims,
            "sketch shorter than prefix_dims"
        );
        let id = self.entries.len();
        let key = self.key_of(&sketch);
        self.buckets.entry(key).or_default().push(id);
        self.entries.push(Some(sketch));
        self.live += 1;
        id
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        self.candidates(probe).into_iter().find(|&id| {
            self.entries[id].as_ref().is_some_and(|s| {
                s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
            })
        })
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        self.candidates(probe)
            .into_iter()
            .filter(|&id| {
                self.entries[id].as_ref().is_some_and(|s| {
                    s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
                })
            })
            .collect()
    }

    fn remove(&mut self, id: RecordId) -> bool {
        let Some(slot) = self.entries.get_mut(id) else {
            return false;
        };
        let Some(sketch) = slot.take() else {
            return false;
        };
        self.live -= 1;
        let key = self.key_of(&sketch);
        if let Some(ids) = self.buckets.get_mut(&key) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.buckets.remove(&key);
            }
        }
        true
    }

    fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChebyshevSketch, SecureSketch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const T: u64 = 100;
    const KA: u64 = 400;

    /// Builds (enrolled sketches, genuine probes) pairs from the real
    /// sketch scheme so index tests exercise realistic data.
    fn make_population(
        users: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        let scheme = ChebyshevSketch::paper_defaults();
        let mut sketches = Vec::new();
        let mut probes = Vec::new();
        for _ in 0..users {
            let x = scheme.line().random_vector(dim, rng);
            let s = scheme.sketch(&x, rng).unwrap();
            let noisy: Vec<i64> = x
                .iter()
                .map(|&v| {
                    use rand::Rng;
                    scheme.line().wrap(v + rng.gen_range(-(T as i64)..=T as i64))
                })
                .collect();
            let sp = scheme.sketch(&noisy, rng).unwrap();
            sketches.push(s);
            probes.push(sp);
        }
        (sketches, probes)
    }

    fn check_index<I: SketchIndex>(mut index: I, rng: &mut StdRng) {
        let (sketches, probes) = make_population(50, 32, rng);
        for s in &sketches {
            index.insert(s.clone());
        }
        assert_eq!(index.len(), 50);
        // Every genuine probe finds its own record.
        for (uid, probe) in probes.iter().enumerate() {
            let found = index.lookup(probe).expect("genuine probe must match");
            assert_eq!(found, uid, "probe {uid} matched the wrong record");
        }
        // Random junk probes (fresh users) almost surely match nothing.
        let scheme = ChebyshevSketch::paper_defaults();
        for _ in 0..20 {
            let x = scheme.line().random_vector(32, rng);
            let s = scheme.sketch(&x, rng).unwrap();
            assert_eq!(index.lookup(&s), None, "impostor matched");
        }
    }

    #[test]
    fn scan_index_end_to_end() {
        let mut rng = StdRng::seed_from_u64(900);
        check_index(ScanIndex::new(T, KA), &mut rng);
    }

    #[test]
    fn bucket_index_end_to_end() {
        let mut rng = StdRng::seed_from_u64(901);
        check_index(BucketIndex::new(T, KA, 4), &mut rng);
    }

    #[test]
    fn bucket_index_agrees_with_scan() {
        let mut rng = StdRng::seed_from_u64(902);
        let (sketches, probes) = make_population(100, 16, &mut rng);
        let mut scan = ScanIndex::new(T, KA);
        let mut bucket = BucketIndex::new(T, KA, 3);
        for s in &sketches {
            scan.insert(s.clone());
            bucket.insert(s.clone());
        }
        for probe in &probes {
            assert_eq!(scan.lookup_all(probe), bucket.lookup_all(probe));
        }
    }

    #[test]
    fn bucket_candidates_are_pruned_when_noise_is_small() {
        // Pruning requires ka >> t (see type docs): use t = 25 on the
        // paper's line, where each coordinate has 7 cells.
        let t = 25u64;
        let scheme =
            ChebyshevSketch::new(*ChebyshevSketch::paper_defaults().line(), t).unwrap();
        let mut rng = StdRng::seed_from_u64(903);
        let mut bucket = BucketIndex::new(t, KA, 4);
        let mut probes = Vec::new();
        for _ in 0..500 {
            let x = scheme.line().random_vector(16, &mut rng);
            bucket.insert(scheme.sketch(&x, &mut rng).unwrap());
            let noisy: Vec<i64> = x
                .iter()
                .map(|&v| {
                    use rand::Rng;
                    scheme.line().wrap(v + rng.gen_range(-(t as i64)..=t as i64))
                })
                .collect();
            probes.push(scheme.sketch(&noisy, &mut rng).unwrap());
        }
        // Every genuine probe still matches its record…
        for (uid, probe) in probes.iter().enumerate() {
            assert_eq!(bucket.lookup(probe), Some(uid));
        }
        // …and candidate sets are far smaller than the population:
        // expected fraction (3/7)^4 ≈ 3.4% → ~17 of 500.
        let total: usize = probes.iter().map(|p| bucket.candidates(p).len()).sum();
        let avg = total as f64 / probes.len() as f64;
        assert!(
            avg < 100.0,
            "bucket index barely prunes: avg candidates {avg}"
        );
    }

    #[test]
    fn lookup_all_finds_duplicates() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(vec![10, 20, 30]);
        scan.insert(vec![15, 25, 35]); // within t of the first
        scan.insert(vec![300, 20, 30]); // far in coordinate 0
        let matches = scan.lookup_all(&[12, 22, 32]);
        assert_eq!(matches, vec![0, 1]);
    }

    #[test]
    fn empty_index_finds_nothing() {
        let scan = ScanIndex::new(T, KA);
        assert!(scan.is_empty());
        assert_eq!(scan.lookup(&[1, 2, 3]), None);
        let bucket = BucketIndex::new(T, KA, 2);
        assert_eq!(bucket.lookup(&[1, 2, 3]), None);
    }

    #[test]
    fn dimension_mismatch_is_no_match() {
        let mut scan = ScanIndex::new(T, KA);
        scan.insert(vec![1, 2, 3]);
        assert_eq!(scan.lookup(&[1, 2]), None);
    }

    #[test]
    #[should_panic(expected = "prefix_dims")]
    fn bucket_prefix_validation() {
        BucketIndex::new(T, KA, 0);
    }

    #[test]
    fn scan_removal_keeps_ids_stable() {
        let mut scan = ScanIndex::new(T, KA);
        let a = scan.insert(vec![10, 20, 30]);
        let b = scan.insert(vec![150, -150, 90]);
        assert_eq!(scan.len(), 2);
        assert!(scan.remove(a));
        assert!(!scan.remove(a), "double removal must report false");
        assert_eq!(scan.len(), 1);
        // a no longer matches; b keeps its id and still matches.
        assert_eq!(scan.lookup(&[10, 20, 30]), None);
        assert_eq!(scan.lookup(&[150, -150, 90]), Some(b));
        assert_eq!(scan.sketch(a), None);
        // New inserts get fresh ids, never recycling a's.
        let c = scan.insert(vec![1, 2, 3]);
        assert_ne!(c, a);
        assert!(!scan.remove(999), "unknown id");
    }

    #[test]
    fn bucket_removal_works() {
        let mut bucket = BucketIndex::new(T, KA, 2);
        let a = bucket.insert(vec![10, 20, 30]);
        let b = bucket.insert(vec![12, 22, 32]);
        assert_eq!(bucket.lookup_all(&[11, 21, 31]), vec![a, b]);
        assert!(bucket.remove(a));
        assert_eq!(bucket.lookup_all(&[11, 21, 31]), vec![b]);
        assert_eq!(bucket.len(), 1);
        assert!(!bucket.remove(a));
    }
}
