//! Metric spaces for fuzzy extractors (Sec. II-A/II-B of the paper).
//!
//! Secure sketches are defined relative to a metric space `(M, dis)`. The
//! paper's contribution uses the **Chebyshev distance** (maximum norm, the
//! `p → ∞` limit of the Lp norms); the classical constructions it compares
//! against use **Hamming distance** (code-offset / fuzzy commitment) and
//! **set difference** (fuzzy vault). This crate provides all of them behind
//! one [`Metric`] trait, plus the [`BitVec`] bit-vector type shared by the
//! Hamming-metric code paths.
//!
//! The crate also hosts the workspace's *service* metrics: the
//! lock-free [`telemetry::Histogram`] the request scheduler exports its
//! latency / queue-depth / batch-size distributions through (same crate,
//! different sense of "metric" — both are measurement vocabulary shared
//! across the workspace).
//!
//! ```rust
//! use fe_metrics::{Chebyshev, Metric};
//!
//! let d = Chebyshev.distance(&[0, 10, -5][..], &[3, 7, -9][..]);
//! assert_eq!(d, 4); // max(|0-3|, |10-7|, |-5+9|)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
mod chebyshev;
mod edit;
mod hamming;
mod lp;
mod set;
pub mod telemetry;

pub use bitvec::BitVec;
pub use chebyshev::{Chebyshev, RingChebyshev};
pub use edit::Levenshtein;
pub use hamming::{ByteHamming, Hamming};
pub use lp::{LpNorm, L1, L2, LINF};
pub use set::SetDifference;

use std::fmt::Debug;

/// A distance function over points of type `P`.
///
/// Distances are non-negative and symmetric; implementations in this crate
/// also satisfy the triangle inequality (making them metrics in the
/// mathematical sense).
pub trait Metric<P: ?Sized> {
    /// The distance value type (`u64` for discrete metrics, `f64` for
    /// continuous ones).
    type Distance: PartialOrd + Copy + Debug;

    /// Computes the distance between `a` and `b`.
    fn distance(&self, a: &P, b: &P) -> Self::Distance;

    /// Convenience predicate: `distance(a, b) <= threshold`.
    fn within(&self, a: &P, b: &P, threshold: Self::Distance) -> bool {
        self.distance(a, b) <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_uses_distance() {
        assert!(Chebyshev.within(&[0i64, 0][..], &[3, -3][..], 3));
        assert!(!Chebyshev.within(&[0i64, 0][..], &[3, -4][..], 3));
    }
}
