//! The transport frame layer: CRC-checked, length-prefixed frames over
//! any byte stream.
//!
//! The frame layout is exactly the `fe-core::codec` journal frame
//! ([`fe_core::codec::Writer::put_framed`]), lifted from the disk onto
//! the socket:
//!
//! ```text
//! +0   u32 BE  payload length N   (1 ≤ N ≤ max_frame)
//! +4   u32 BE  CRC-32 of payload  (IEEE 802.3, fe_core::codec::crc32)
//! +8   N bytes payload
//! ```
//!
//! One frame carries one message (a handshake hello, a request
//! envelope, or a response envelope — see `PROTOCOL.md`). The CRC is a
//! *corruption* check, not authentication: it catches torn writes,
//! proxy mangling, and desynchronized streams, the same failures it
//! catches on the journal. All framing violations are **fatal to the
//! connection** — once a length prefix or checksum lies, nothing later
//! on the stream can be trusted.
//!
//! [`read_frame`] is the plain blocking reader; [`read_frame_session`]
//! adds the server's connection-lifecycle concerns (idle timeout,
//! shutdown flag, mid-frame stall detection) on top of a socket whose
//! read timeout is set to a short tick.

use crate::error::NetError;
use fe_core::codec::crc32;
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Default ceiling on frame payload length: 1 MiB. Large enough for a
/// 4096-probe identify batch at paper dimensions, small enough that a
/// hostile length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Bytes of frame overhead ahead of the payload (length + CRC).
pub const FRAME_HEADER: usize = 8;

/// Writes one frame: length, CRC-32, payload, assembled into a single
/// buffer so a frame is one `write_all` on the socket.
///
/// # Errors
/// [`NetError::Oversize`] if `payload` exceeds `max_frame`;
/// [`NetError::BadFrame`] on an empty payload; [`NetError::Io`] on
/// socket failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> Result<(), NetError> {
    if payload.is_empty() {
        return Err(NetError::BadFrame("zero-length frame"));
    }
    if payload.len() > max_frame {
        return Err(NetError::Oversize {
            claimed: payload.len(),
            max: max_frame,
        });
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(payload).to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    Ok(())
}

/// What a session read produced besides a frame.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete, CRC-valid frame payload.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// No frame *started* within the idle window — the connection is
    /// abandoned, not broken.
    IdleTimeout,
    /// The shutdown flag was observed; the caller should close.
    Shutdown,
}

/// Reads one frame, blocking until it completes.
///
/// EOF at a frame boundary is [`NetError::ConnectionClosed`]; EOF (or a
/// read timeout, if the stream has one) mid-frame is a fatal
/// [`NetError::BadFrame`].
///
/// # Errors
/// [`NetError::Oversize`] / [`NetError::CrcMismatch`] /
/// [`NetError::BadFrame`] on framing violations, [`NetError::Io`] on
/// socket failures.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, NetError> {
    match read_frame_session(r, max_frame, None)? {
        FrameEvent::Frame(payload) => Ok(payload),
        FrameEvent::Closed => Err(NetError::ConnectionClosed),
        // Without a session, timeouts surface as BadFrame below; these
        // variants are unreachable but must map to something sane.
        FrameEvent::IdleTimeout | FrameEvent::Shutdown => Err(NetError::BadFrame("read timed out")),
    }
}

/// Connection-lifecycle knobs for [`read_frame_session`].
#[derive(Debug, Clone, Copy)]
pub struct Session<'a> {
    /// Close the connection after this long with no new frame started.
    pub idle_timeout: Duration,
    /// Checked at every read-timeout tick; when set, the read returns
    /// [`FrameEvent::Shutdown`] immediately (even mid-frame).
    pub shutdown: &'a AtomicBool,
}

/// Reads one frame with session lifecycle handling.
///
/// The stream's read timeout (if any) acts as the polling tick: every
/// time a read times out, the shutdown flag and the idle clock are
/// consulted. Three stall cases are distinguished:
///
/// * **no frame started** and the idle window elapsed →
///   [`FrameEvent::IdleTimeout`] (a clean close, not an error);
/// * **mid-frame** with no forward progress for the idle window → a
///   fatal [`NetError::BadFrame`] — a peer that sends half a frame and
///   stops is indistinguishable from a torn stream;
/// * **shutdown flag set** → [`FrameEvent::Shutdown`] regardless of
///   progress.
///
/// With `session = None` the reader blocks indefinitely (timeouts, if
/// the stream has any, become mid-frame errors at the first tick).
///
/// # Errors
/// As [`read_frame`].
pub fn read_frame_session(
    r: &mut impl Read,
    max_frame: usize,
    session: Option<Session<'_>>,
) -> Result<FrameEvent, NetError> {
    let mut header = [0u8; FRAME_HEADER];
    match fill(r, &mut header, true, session.as_ref())? {
        Filled::Complete => {}
        Filled::Eof => return Ok(FrameEvent::Closed),
        Filled::Idle => return Ok(FrameEvent::IdleTimeout),
        Filled::Shutdown => return Ok(FrameEvent::Shutdown),
    }
    let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let expected_crc = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
    if len == 0 {
        return Err(NetError::BadFrame("zero-length frame"));
    }
    if len > max_frame {
        return Err(NetError::Oversize {
            claimed: len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    match fill(r, &mut payload, false, session.as_ref())? {
        Filled::Complete => {}
        Filled::Eof => unreachable!("fill maps mid-frame EOF to an error"),
        Filled::Idle => unreachable!("fill maps mid-frame stalls to an error"),
        Filled::Shutdown => return Ok(FrameEvent::Shutdown),
    }
    let found = crc32(&payload);
    if found != expected_crc {
        return Err(NetError::CrcMismatch {
            expected: expected_crc,
            found,
        });
    }
    Ok(FrameEvent::Frame(payload))
}

enum Filled {
    Complete,
    /// EOF before the first byte (only reported when `at_boundary`).
    Eof,
    Idle,
    Shutdown,
}

/// Fills `buf` completely, translating timeouts and EOF into lifecycle
/// events. `at_boundary` marks the frame header read, where EOF and
/// idleness are clean; once any byte has arrived (or for the payload,
/// which always follows a header) both become errors.
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    session: Option<&Session<'_>>,
) -> Result<Filled, NetError> {
    let mut got = 0usize;
    let mut last_progress = Instant::now();
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if at_boundary && got == 0 {
                    Ok(Filled::Eof)
                } else {
                    Err(NetError::BadFrame("peer closed mid-frame"))
                };
            }
            Ok(n) => {
                got += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                let Some(s) = session else {
                    return Err(NetError::BadFrame("read timed out mid-frame"));
                };
                if s.shutdown.load(Ordering::Relaxed) {
                    return Ok(Filled::Shutdown);
                }
                if last_progress.elapsed() >= s.idle_timeout {
                    return if at_boundary && got == 0 {
                        Ok(Filled::Idle)
                    } else {
                        Err(NetError::BadFrame("mid-frame stall"))
                    };
                }
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(Filled::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload, DEFAULT_MAX_FRAME).unwrap();
        out
    }

    #[test]
    fn roundtrip() {
        let payload = b"hello frames".to_vec();
        let bytes = frame_bytes(&payload);
        assert_eq!(bytes.len(), FRAME_HEADER + payload.len());
        let got = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn layout_matches_codec_put_framed() {
        // The wire frame IS the journal frame: byte-identical to
        // Writer::put_framed so the two contracts cannot drift apart.
        let payload = b"shared layout";
        let mut w = fe_core::codec::Writer::new();
        w.put_framed(payload);
        assert_eq!(frame_bytes(payload), w.into_bytes());
    }

    #[test]
    fn eof_at_boundary_is_clean_close() {
        let err = read_frame(&mut Cursor::new(&[]), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, NetError::ConnectionClosed), "{err}");
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = frame_bytes(b"truncate me");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut Cursor::new(&bytes[..cut]), DEFAULT_MAX_FRAME).unwrap_err();
            assert!(
                matches!(err, NetError::BadFrame("peer closed mid-frame")),
                "prefix {cut}: {err}"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        // Claim u32::MAX bytes; the reader must refuse without trying
        // to read (or allocate) them.
        let mut bytes = frame_bytes(b"x");
        bytes[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, NetError::Oversize { claimed, max }
                if claimed == u32::MAX as usize && max == DEFAULT_MAX_FRAME),
            "{err}"
        );
    }

    #[test]
    fn zero_length_frame_rejected_both_ways() {
        let mut bytes = frame_bytes(b"x");
        bytes[..4].copy_from_slice(&0u32.to_be_bytes());
        let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(
            matches!(err, NetError::BadFrame("zero-length frame")),
            "{err}"
        );
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &[], DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let mut bytes = frame_bytes(b"checksummed payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, NetError::CrcMismatch { .. }), "{err}");
    }

    #[test]
    fn corrupted_crc_field_fails_crc() {
        let mut bytes = frame_bytes(b"checksummed payload");
        bytes[5] ^= 0x01;
        let err = read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, NetError::CrcMismatch { .. }), "{err}");
    }

    #[test]
    fn write_respects_max_frame() {
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &[0u8; 100], 64).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Oversize {
                    claimed: 100,
                    max: 64
                }
            ),
            "{err}"
        );
        assert!(sink.is_empty(), "nothing written on refusal");
    }

    #[test]
    fn back_to_back_frames_parse_in_sequence() {
        let mut bytes = frame_bytes(b"first");
        bytes.extend_from_slice(&frame_bytes(b"second"));
        let mut cursor = Cursor::new(&bytes);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"first"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"second"
        );
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap_err(),
            NetError::ConnectionClosed
        ));
    }

    /// A reader that yields `WouldBlock` forever after its data runs
    /// out — models a socket with a read timeout and a stalled peer.
    struct Stalling {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Stalling {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::Error::new(ErrorKind::WouldBlock, "tick"));
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn idle_connection_times_out_cleanly() {
        let shutdown = AtomicBool::new(false);
        let mut r = Stalling {
            data: Vec::new(),
            pos: 0,
        };
        let event = read_frame_session(
            &mut r,
            DEFAULT_MAX_FRAME,
            Some(Session {
                idle_timeout: Duration::from_millis(0),
                shutdown: &shutdown,
            }),
        )
        .unwrap();
        assert_eq!(event, FrameEvent::IdleTimeout);
    }

    #[test]
    fn mid_frame_stall_is_fatal() {
        let shutdown = AtomicBool::new(false);
        let bytes = frame_bytes(b"never finishes");
        let mut r = Stalling {
            data: bytes[..6].to_vec(),
            pos: 0,
        };
        let err = read_frame_session(
            &mut r,
            DEFAULT_MAX_FRAME,
            Some(Session {
                idle_timeout: Duration::from_millis(0),
                shutdown: &shutdown,
            }),
        )
        .unwrap_err();
        assert!(
            matches!(err, NetError::BadFrame("mid-frame stall")),
            "{err}"
        );
    }

    #[test]
    fn shutdown_flag_interrupts_even_mid_frame() {
        let shutdown = AtomicBool::new(true);
        let bytes = frame_bytes(b"interrupted");
        let mut r = Stalling {
            data: bytes[..10].to_vec(),
            pos: 0,
        };
        let event = read_frame_session(
            &mut r,
            DEFAULT_MAX_FRAME,
            Some(Session {
                idle_timeout: Duration::from_secs(3600),
                shutdown: &shutdown,
            }),
        )
        .unwrap();
        assert_eq!(event, FrameEvent::Shutdown);
    }
}
