//! Property-based tests for `fe-bigint` arithmetic invariants.

use fe_bigint::{Integer, Natural};
use proptest::prelude::*;

/// Strategy producing naturals up to ~4 limbs from raw limb vectors.
fn natural() -> impl Strategy<Value = Natural> {
    prop::collection::vec(any::<u64>(), 0..4).prop_map(Natural::from_limbs)
}

/// Strategy producing non-zero naturals.
fn natural_nonzero() -> impl Strategy<Value = Natural> {
    natural().prop_filter("non-zero", |n| !n.is_zero())
}

proptest! {
    #[test]
    fn add_commutative(a in natural(), b in natural()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in natural(), b in natural(), c in natural()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_roundtrip(a in natural(), b in natural()) {
        let sum = &a + &b;
        prop_assert_eq!(&sum - &b, a);
    }

    #[test]
    fn mul_commutative(a in natural(), b in natural()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in natural(), b in natural(), c in natural()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn div_rem_reconstructs(a in natural(), b in natural_nonzero()) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in natural(), s in 0usize..200) {
        prop_assert_eq!(a.shl_bits(s), &a * &Natural::power_of_two(s));
    }

    #[test]
    fn shr_is_div_by_power_of_two(a in natural(), s in 0usize..200) {
        prop_assert_eq!(a.shr_bits(s), &a / &Natural::power_of_two(s));
    }

    #[test]
    fn hex_roundtrip(a in natural()) {
        prop_assert_eq!(Natural::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn decimal_roundtrip(a in natural()) {
        prop_assert_eq!(Natural::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in natural()) {
        prop_assert_eq!(Natural::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn gcd_divides_both(a in natural_nonzero(), b in natural_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem_nat(&g).is_zero());
        prop_assert!(b.rem_nat(&g).is_zero());
    }

    #[test]
    fn extended_gcd_bezout(a in natural(), b in natural_nonzero()) {
        let ext = a.extended_gcd(&b);
        let lhs = &(&Integer::from(a) * &ext.x) + &(&Integer::from(b) * &ext.y);
        prop_assert_eq!(lhs, Integer::from(ext.gcd));
    }

    #[test]
    fn mod_inv_is_inverse(a in natural_nonzero(), m in natural_nonzero()) {
        if let Some(inv) = a.mod_inv(&m) {
            prop_assert_eq!(a.mod_mul(&inv, &m), Natural::one().rem_nat(&m));
        }
    }

    #[test]
    fn mod_pow_matches_naive(base in 0u64..1000, exp in 0u64..64, m in 2u64..10_000) {
        let naive = {
            let mut acc = 1u128;
            for _ in 0..exp {
                acc = acc * base as u128 % m as u128;
            }
            acc as u64
        };
        let got = Natural::from(base).mod_pow(&Natural::from(exp), &Natural::from(m));
        prop_assert_eq!(got, Natural::from(naive));
    }

    #[test]
    fn mod_pow_addition_law(base in natural(), e1 in 0u64..200, e2 in 0u64..200, m in natural_nonzero()) {
        // base^(e1+e2) = base^e1 * base^e2 (mod m)
        let lhs = base.mod_pow(&Natural::from(e1 + e2), &m);
        let a = base.mod_pow(&Natural::from(e1), &m);
        let b = base.mod_pow(&Natural::from(e2), &m);
        prop_assert_eq!(lhs, a.mod_mul(&b, &m));
    }

    #[test]
    fn ordering_consistent_with_sub(a in natural(), b in natural()) {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }

    #[test]
    fn bit_length_bounds(a in natural_nonzero()) {
        let bits = a.bit_length();
        prop_assert!(a < Natural::power_of_two(bits));
        prop_assert!(a >= Natural::power_of_two(bits - 1));
    }
}
