//! The extracted key type.

use fe_crypto::ct::ct_eq;
use std::fmt;

/// The fuzzy-extractor output `R`: a nearly-uniform secret string usable
/// directly as cryptographic key material (e.g. the DSA key seed in the
/// paper's enrollment protocol).
///
/// Equality is constant-time; `Debug` never prints the bytes; the buffer
/// is overwritten on drop.
///
/// ```rust
/// use fe_core::ExtractedKey;
///
/// let k = ExtractedKey::new(vec![1, 2, 3]);
/// assert_eq!(k.len(), 3);
/// assert_eq!(format!("{k:?}"), "ExtractedKey(3 bytes, redacted)");
/// ```
#[derive(Clone)]
pub struct ExtractedKey {
    bytes: Vec<u8>,
}

impl ExtractedKey {
    /// Wraps key bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        ExtractedKey { bytes }
    }

    /// Key length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for an empty key.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrows the key bytes. Handle with care — this is the secret.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl PartialEq for ExtractedKey {
    fn eq(&self, other: &Self) -> bool {
        ct_eq(&self.bytes, &other.bytes)
    }
}

impl Eq for ExtractedKey {}

impl fmt::Debug for ExtractedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExtractedKey({} bytes, redacted)", self.bytes.len())
    }
}

impl Drop for ExtractedKey {
    fn drop(&mut self) {
        // Best-effort scrub; not a guarantee against copies made by the
        // allocator, but keeps obvious key bytes out of freed memory.
        for b in self.bytes.iter_mut() {
            *b = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_and_inequality() {
        let a = ExtractedKey::new(vec![1, 2, 3]);
        let b = ExtractedKey::new(vec![1, 2, 3]);
        let c = ExtractedKey::new(vec![1, 2, 4]);
        let d = ExtractedKey::new(vec![1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn debug_redacts() {
        let k = ExtractedKey::new(vec![0xde, 0xad]);
        let s = format!("{k:?}");
        assert!(!s.contains("de"));
        assert!(s.contains("2 bytes"));
    }

    #[test]
    fn accessors() {
        let k = ExtractedKey::new(vec![9; 32]);
        assert_eq!(k.len(), 32);
        assert!(!k.is_empty());
        assert_eq!(k.as_bytes()[0], 9);
        assert!(ExtractedKey::new(vec![]).is_empty());
    }
}
