//! The Chebyshev-distance secure sketch of Sec. IV-B — the paper's core
//! construction.

use crate::numberline::NumberLine;
use crate::sketch::SecureSketch;
use crate::SketchError;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The maximum-norm secure sketch over a [`NumberLine`].
///
/// **Sketch** (`SS`): every coordinate `x_i` is moved by `s_i` to the
/// identifier of its interval (`I_i = x_i + s_i`, `|s_i| ≤ ka/2`); the
/// movement vector `s` is the public sketch. Boundary points (the paper's
/// special case 1) are moved left or right by a coin flip; ring wrap-around
/// (special case 2) is ordinary modular arithmetic here.
///
/// **Recover** (`Rec`): apply the same movements to the reading, snap to
/// the nearest identifier, undo the movements. Succeeds exactly when
/// the reading is within cyclic Chebyshev distance `t < ka/2` of the
/// enrolled vector (Theorem 1).
///
/// ```rust
/// use fe_core::{ChebyshevSketch, NumberLine, SecureSketch};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), fe_core::SketchError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let sketch = ChebyshevSketch::new(NumberLine::new(100, 4, 500)?, 100)?;
/// let x = vec![12_345, -67_890, 0, 99_999];
/// let s = sketch.sketch(&x, &mut rng)?;
/// let y = vec![12_395, -67_940, -50, -99_951]; // each within 100 (ring!)
/// assert_eq!(sketch.recover(&y, &s)?, sketch.canonicalize(&x));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChebyshevSketch {
    line: NumberLine,
    t: u64,
}

impl ChebyshevSketch {
    /// Creates the sketch scheme with acceptance threshold `t`.
    ///
    /// # Errors
    /// [`SketchError::BadParameters`] unless `0 < t < ka/2` (the Setup
    /// requirement of Sec. IV-B).
    pub fn new(line: NumberLine, t: u64) -> Result<ChebyshevSketch, SketchError> {
        if t == 0 || t >= line.interval_len() / 2 {
            return Err(SketchError::BadParameters);
        }
        Ok(ChebyshevSketch { line, t })
    }

    /// The paper's Table II instantiation:
    /// `a = 100, k = 4, v = 500, t = 100`.
    pub fn paper_defaults() -> ChebyshevSketch {
        ChebyshevSketch::new(
            NumberLine::new(100, 4, 500).expect("paper parameters are valid"),
            100,
        )
        .expect("paper threshold is valid")
    }

    /// The underlying number line.
    pub fn line(&self) -> &NumberLine {
        &self.line
    }

    /// The acceptance threshold `t`.
    pub fn threshold(&self) -> u64 {
        self.t
    }

    /// Wraps every coordinate onto the canonical range of the line —
    /// the representative that [`SecureSketch::recover`] returns.
    pub fn canonicalize(&self, input: &[i64]) -> Vec<i64> {
        input.iter().map(|&x| self.line.wrap(x)).collect()
    }

    /// Like [`SecureSketch::recover`] but *without* early abort: every
    /// coordinate is processed before the verdict.
    ///
    /// The paper's `Rec` pseudocode aborts at the first out-of-threshold
    /// coordinate (and so does [`SecureSketch::recover`]); vectorized
    /// implementations — like the authors' Python/NumPy measurement setup
    /// — compute all coordinates first. This method models that cost
    /// profile; the Fig. 4 baseline uses it so the reproduced curve has
    /// the paper's slope. Results are identical, only timing differs.
    ///
    /// # Errors
    /// Same contract as [`SecureSketch::recover`].
    pub fn recover_exhaustive(
        &self,
        reading: &[i64],
        sketch: &[i64],
    ) -> Result<Vec<i64>, SketchError> {
        if reading.len() != sketch.len() {
            return Err(SketchError::DimensionMismatch {
                expected: sketch.len(),
                got: reading.len(),
            });
        }
        let ka = self.line.interval_len() as i64;
        let t = self.t as i64;
        let mut out = Vec::with_capacity(reading.len());
        let mut failed = false;
        for (&y, &s) in reading.iter().zip(sketch.iter()) {
            if s.abs() > ka / 2 {
                failed = true;
                out.push(0);
                continue;
            }
            let shifted = self.line.wrap(self.line.wrap(y) + s);
            let r = shifted.rem_euclid(ka);
            let dist = (r - ka / 2).abs();
            if dist > t {
                failed = true;
            }
            let identifier = shifted - r + ka / 2;
            out.push(self.line.wrap(identifier - s));
        }
        if failed {
            return Err(SketchError::OutOfRange);
        }
        Ok(out)
    }

    /// Sketches a single coordinate, returning the movement `s_i`.
    fn sketch_point<R: RngCore + ?Sized>(&self, x: i64, rng: &mut R) -> i64 {
        let ka = self.line.interval_len() as i64;
        let x = self.line.wrap(x);
        let r = x.rem_euclid(ka); // offset within the interval, [0, ka)
        if r == 0 {
            // Special case 1: boundary point — coin flip picks a side.
            if rng.gen_bool(0.5) {
                ka / 2
            } else {
                -ka / 2
            }
        } else {
            ka / 2 - r // in (-ka/2, ka/2)
        }
    }
}

impl SecureSketch for ChebyshevSketch {
    type Sketch = Vec<i64>;

    fn sketch<R: RngCore + ?Sized>(
        &self,
        input: &[i64],
        rng: &mut R,
    ) -> Result<Vec<i64>, SketchError> {
        Ok(input.iter().map(|&x| self.sketch_point(x, rng)).collect())
    }

    fn recover(&self, reading: &[i64], sketch: &Vec<i64>) -> Result<Vec<i64>, SketchError> {
        if reading.len() != sketch.len() {
            return Err(SketchError::DimensionMismatch {
                expected: sketch.len(),
                got: reading.len(),
            });
        }
        let ka = self.line.interval_len() as i64;
        let t = self.t as i64;
        let mut out = Vec::with_capacity(reading.len());
        for (&y, &s) in reading.iter().zip(sketch.iter()) {
            // Movements outside [-ka/2, ka/2] cannot come from SS.
            if s.abs() > ka / 2 {
                return Err(SketchError::BadParameters);
            }
            let shifted = self.line.wrap(self.line.wrap(y) + s);
            let r = shifted.rem_euclid(ka); // [0, ka)
                                            // Distance to the identifier of the containing interval.
            let dist = (r - ka / 2).abs();
            if dist > t {
                return Err(SketchError::OutOfRange); // the paper's ⊥
            }
            let identifier = shifted - r + ka / 2;
            out.push(self.line.wrap(identifier - s));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme() -> ChebyshevSketch {
        ChebyshevSketch::paper_defaults()
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn paper_defaults_match_table2() {
        let s = scheme();
        assert_eq!(s.line().a(), 100);
        assert_eq!(s.line().k(), 4);
        assert_eq!(s.line().v(), 500);
        assert_eq!(s.threshold(), 100);
    }

    #[test]
    fn threshold_validation() {
        let line = NumberLine::new(100, 4, 500).unwrap();
        assert!(ChebyshevSketch::new(line, 0).is_err());
        assert!(ChebyshevSketch::new(line, 199).is_ok());
        assert!(ChebyshevSketch::new(line, 200).is_err()); // t >= ka/2
    }

    #[test]
    fn movements_bounded_by_half_interval() {
        let s = scheme();
        let mut r = rng();
        let x = s.line().random_vector(2000, &mut r);
        let sk = s.sketch(&x, &mut r).unwrap();
        let half = (s.line().interval_len() / 2) as i64;
        assert!(sk.iter().all(|&m| m.abs() <= half));
        // Non-boundary points have |s| < ka/2 strictly; both signs appear.
        assert!(sk.iter().any(|&m| m > 0));
        assert!(sk.iter().any(|&m| m < 0));
    }

    #[test]
    fn movement_lands_on_identifier() {
        let s = scheme();
        let mut r = rng();
        let x = s.line().random_vector(500, &mut r);
        let sk = s.sketch(&x, &mut r).unwrap();
        for (&xi, &si) in x.iter().zip(sk.iter()) {
            let target = s.line().wrap(xi + si);
            assert_eq!(
                s.line().distance_to_identifier(target),
                0,
                "x={xi} s={si} does not land on an identifier"
            );
        }
    }

    #[test]
    fn exact_reading_recovers() {
        let s = scheme();
        let mut r = rng();
        let x = s.line().random_vector(100, &mut r);
        let sk = s.sketch(&x, &mut r).unwrap();
        assert_eq!(s.recover(&x, &sk).unwrap(), x);
    }

    #[test]
    fn recovers_within_threshold_theorem1() {
        let s = scheme();
        let mut r = rng();
        for _ in 0..50 {
            let x = s.line().random_vector(64, &mut r);
            let sk = s.sketch(&x, &mut r).unwrap();
            let noisy: Vec<i64> = x
                .iter()
                .map(|&xi| {
                    use rand::Rng;
                    s.line().wrap(xi + r.gen_range(-100i64..=100))
                })
                .collect();
            assert_eq!(s.recover(&noisy, &sk).unwrap(), x);
        }
    }

    #[test]
    fn rejects_beyond_threshold() {
        let s = scheme();
        let mut r = rng();
        let x = s.line().random_vector(64, &mut r);
        let sk = s.sketch(&x, &mut r).unwrap();
        // One coordinate pushed t+1 away (worst case alignment may still
        // recover — but pushing by ka/2 always changes the interval
        // relationship by more than t).
        let mut bad = x.clone();
        bad[10] = s.line().wrap(bad[10] + 199); // 199 > t = 100
        match s.recover(&bad, &sk) {
            Err(SketchError::OutOfRange) => {}
            Ok(recovered) => {
                // If it recovered, the value must differ from x (wrong
                // interval) — never silently correct.
                assert_ne!(recovered, x);
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn always_rejects_at_half_interval() {
        // A perturbation of exactly ka/2 > t on one coordinate can never
        // recover x: y+s is at least ka/2 - t away from x's identifier.
        let s = scheme();
        let mut r = rng();
        let x = s.line().random_vector(16, &mut r);
        let sk = s.sketch(&x, &mut r).unwrap();
        for delta in [200i64, 250, 300] {
            let mut bad = x.clone();
            bad[0] = s.line().wrap(bad[0] + delta);
            match s.recover(&bad, &sk) {
                Err(SketchError::OutOfRange) => {}
                Ok(recovered) => assert_ne!(recovered, x, "delta={delta}"),
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn boundary_points_coin_flip_both_ways() {
        let s = scheme();
        let mut r = rng();
        let boundary = vec![0i64; 200]; // all on the 0 boundary
        let sk = s.sketch(&boundary, &mut r).unwrap();
        let half = (s.line().interval_len() / 2) as i64;
        assert!(sk.iter().all(|&m| m == half || m == -half));
        assert!(sk.contains(&half));
        assert!(sk.iter().any(|&m| m == -half));
        // Either way, recovery from the exact value works.
        assert_eq!(s.recover(&boundary, &sk).unwrap(), boundary);
    }

    #[test]
    fn ring_wraparound_recovery() {
        // Enrolled near +100000 (the seam), read near -100000.
        let s = scheme();
        let mut r = rng();
        let x = vec![99_980i64];
        let sk = s.sketch(&x, &mut r).unwrap();
        let y = vec![-99_990i64]; // cyclic distance 30
        assert_eq!(s.recover(&y, &sk).unwrap(), x);
    }

    #[test]
    fn non_canonical_input_is_canonicalized() {
        let s = scheme();
        let mut r = rng();
        let x = vec![250_000i64]; // wraps to 50_000
        let sk = s.sketch(&x, &mut r).unwrap();
        assert_eq!(s.recover(&[50_000], &sk).unwrap(), vec![50_000]);
        assert_eq!(s.canonicalize(&x), vec![50_000]);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let s = scheme();
        let mut r = rng();
        let sk = s.sketch(&[1, 2, 3], &mut r).unwrap();
        assert_eq!(
            s.recover(&[1, 2], &sk),
            Err(SketchError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn forged_oversized_movement_rejected() {
        let s = scheme();
        let forged = vec![10_000i64]; // |s| > ka/2 can't come from SS
        assert_eq!(s.recover(&[0], &forged), Err(SketchError::BadParameters));
    }

    #[test]
    fn empty_vector_roundtrip() {
        let s = scheme();
        let mut r = rng();
        let sk = s.sketch(&[], &mut r).unwrap();
        assert_eq!(s.recover(&[], &sk).unwrap(), Vec::<i64>::new());
    }
}
