//! Full protocol run over the binary wire codec and simulated links —
//! the closest this repository gets to a deployed client/server split:
//! every message crosses an encode → transport → decode boundary.

use fuzzy_id::protocol::transport::{Link, Tamper};
use fuzzy_id::protocol::wire::{decode, encode, Message};
use fuzzy_id::protocol::{AuthenticationServer, BiometricDevice, IdentOutcome, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(1);

#[test]
fn end_to_end_over_wire() {
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut server = AuthenticationServer::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x31_7e);

    // Byte-level links in both directions.
    let mut to_server: Link<Vec<u8>> = Link::new();
    let mut to_device: Link<Vec<u8>> = Link::new();

    // --- Enrollment over the wire ---
    let bio = params.sketch().line().random_vector(300, &mut rng);
    let record = device.enroll("alice", &bio, &mut rng).unwrap();
    to_server.send(encode(&Message::Enroll(record))).unwrap();
    let bytes = to_server.recv(TIMEOUT).unwrap();
    match decode(&bytes).unwrap() {
        Message::Enroll(r) => server.enroll(r).unwrap(),
        other => panic!("expected Enroll, got {other:?}"),
    }
    assert_eq!(server.user_count(), 1);

    // --- Identification over the wire ---
    let reading: Vec<i64> = bio
        .iter()
        .map(|&x| x + rng.gen_range(-80i64..=80))
        .collect();
    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
    // (probe travels as part of an outer request in a real deployment;
    // here the server consumes it directly)
    let challenge = server.begin_identification(&probe, &mut rng).unwrap();
    to_device
        .send(encode(&Message::Challenge(challenge)))
        .unwrap();
    let bytes = to_device.recv(TIMEOUT).unwrap();
    let challenge = match decode(&bytes).unwrap() {
        Message::Challenge(c) => c,
        other => panic!("expected Challenge, got {other:?}"),
    };
    let response = device.respond(&reading, &challenge, &mut rng).unwrap();
    to_server
        .send(encode(&Message::Response(response)))
        .unwrap();
    let bytes = to_server.recv(TIMEOUT).unwrap();
    let response = match decode(&bytes).unwrap() {
        Message::Response(r) => r,
        other => panic!("expected Response, got {other:?}"),
    };
    let outcome = server.finish_identification(&response).unwrap();
    assert_eq!(outcome.identity(), Some("alice"));

    // --- Outcome notification back to the device ---
    to_device.send(encode(&Message::Outcome(outcome))).unwrap();
    let bytes = to_device.recv(TIMEOUT).unwrap();
    assert!(matches!(
        decode(&bytes).unwrap(),
        Message::Outcome(IdentOutcome::Identified(id)) if id == "alice"
    ));
}

#[test]
fn bitflips_on_the_wire_never_panic_and_never_authenticate() {
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut server = AuthenticationServer::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x31_7f);

    let bio = params.sketch().line().random_vector(200, &mut rng);
    server
        .enroll(device.enroll("bob", &bio, &mut rng).unwrap())
        .unwrap();

    let reading: Vec<i64> = bio.iter().map(|&x| x + 40).collect();
    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
    let challenge = server.begin_identification(&probe, &mut rng).unwrap();
    let response = device.respond(&reading, &challenge, &mut rng).unwrap();
    let good_bytes = encode(&Message::Response(response));

    // Flip every byte position in turn; the server must never identify a
    // user from a corrupted response (and must never panic).
    let mut identified = 0;
    for i in 0..good_bytes.len() {
        let mut bad = good_bytes.clone();
        bad[i] ^= 0x40;
        match decode(&bad) {
            Err(_) => {} // framing caught it
            Ok(Message::Response(r)) => {
                // Same session id? The signature check must fail (the
                // session is consumed on first use, so re-issue first).
                if let Ok(IdentOutcome::Identified(_)) = server.finish_identification(&r) {
                    identified += 1
                }
            }
            Ok(_) => {} // decoded as another message type: ignored
        }
    }
    // The *original* response consumed the session only if some mutant
    // reused it first; either way no corrupted message may authenticate.
    assert_eq!(identified, 0, "a corrupted response authenticated");
}

#[test]
fn adversarial_byte_tampering_on_link() {
    // A MITM flipping bits inside the *encoded* challenge must be caught
    // by framing or by the robust sketch on the device.
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut server = AuthenticationServer::new(params.clone());
    let mut rng = StdRng::seed_from_u64(0x31_80);

    let bio = params.sketch().line().random_vector(200, &mut rng);
    server
        .enroll(device.enroll("carol", &bio, &mut rng).unwrap())
        .unwrap();
    let reading: Vec<i64> = bio.iter().map(|&x| x - 33).collect();
    let probe = device.probe_sketch(&reading, &mut rng).unwrap();

    let mut evil: Link<Vec<u8>> = Link::new().with_adversary(Box::new(|mut bytes: Vec<u8>| {
        // Flip a byte in the middle of the helper data payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        Tamper::Modify(bytes)
    }));
    let challenge = server.begin_identification(&probe, &mut rng).unwrap();
    evil.send(encode(&Message::Challenge(challenge))).unwrap();
    let bytes = evil.recv(TIMEOUT).unwrap();
    match decode(&bytes) {
        Err(_) => {} // framing rejected
        Ok(Message::Challenge(c)) => {
            // Robust sketch must reject on the device.
            assert!(device.respond(&reading, &c, &mut rng).is_err());
        }
        Ok(other) => panic!("unexpected message {other:?}"),
    }
}
