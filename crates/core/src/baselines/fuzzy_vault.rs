//! The Juels–Sudan fuzzy vault over the set-difference metric.
//!
//! The secret is a polynomial `p` of degree `< k` over GF(2^m). Locking
//! evaluates `p` on the user's feature set and buries the genuine points
//! among random chaff. Unlocking with an overlapping feature set selects
//! candidate points and reconstructs `p` with Berlekamp–Welch decoding.

use crate::SketchError;
use fe_ecc::{berlekamp_welch, Gf2m, Poly};
use rand::Rng;
use rand::RngCore;
use std::collections::BTreeSet;

/// A locked vault: the public point set (genuine + chaff, sorted by `x`
/// so nothing distinguishes them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vault {
    points: Vec<(u16, u16)>,
}

impl Vault {
    /// The public points.
    pub fn points(&self) -> &[(u16, u16)] {
        &self.points
    }

    /// Total number of points (genuine + chaff).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the vault has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// The fuzzy vault scheme.
///
/// ```rust
/// use fe_core::baselines::FuzzyVault;
/// use rand::SeedableRng;
/// use std::collections::BTreeSet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(6);
/// let vault_scheme = FuzzyVault::new(8, 4, 200)?; // GF(256), degree <4, 200 chaff
/// let features: BTreeSet<u16> = (1..=20).collect();
/// let secret = vec![11, 22, 33, 44];
/// let vault = vault_scheme.lock(&features, &secret, &mut rng)?;
///
/// // A reading sharing enough features unlocks the same secret.
/// let reading: BTreeSet<u16> = (3..=22).collect(); // overlap 18 of 20
/// assert_eq!(vault_scheme.unlock(&vault, &reading)?, secret);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyVault {
    field: Gf2m,
    poly_len: usize,
    chaff: usize,
}

impl FuzzyVault {
    /// Creates a vault scheme over GF(2^m) with secrets of `poly_len`
    /// coefficients and `chaff` chaff points.
    ///
    /// # Errors
    /// [`SketchError::BadParameters`] if the field is invalid or
    /// `poly_len == 0`.
    pub fn new(m: u32, poly_len: usize, chaff: usize) -> Result<FuzzyVault, SketchError> {
        let field = Gf2m::new(m).map_err(|_| SketchError::BadParameters)?;
        if poly_len == 0 || chaff.saturating_add(poly_len) >= field.size() {
            return Err(SketchError::BadParameters);
        }
        Ok(FuzzyVault {
            field,
            poly_len,
            chaff,
        })
    }

    /// The secret length in field elements.
    pub fn secret_len(&self) -> usize {
        self.poly_len
    }

    /// Locks `secret` under the feature set.
    ///
    /// # Errors
    /// [`SketchError::BadParameters`] when the secret length is wrong, a
    /// feature/secret symbol exceeds the field, or there is no room for
    /// the requested chaff.
    pub fn lock<R: RngCore + ?Sized>(
        &self,
        features: &BTreeSet<u16>,
        secret: &[u16],
        rng: &mut R,
    ) -> Result<Vault, SketchError> {
        if secret.len() != self.poly_len {
            return Err(SketchError::BadParameters);
        }
        let size = self.field.size() as u16;
        if secret.iter().any(|&c| c >= size) || features.iter().any(|&f| f >= size) {
            return Err(SketchError::BadParameters);
        }
        if features.len() < self.poly_len {
            return Err(SketchError::BadParameters); // can't even interpolate
        }
        if features.len() + self.chaff > self.field.size() {
            return Err(SketchError::BadParameters);
        }

        let p = Poly::from_coeffs(secret.to_vec());
        let mut points: Vec<(u16, u16)> = features
            .iter()
            .map(|&x| (x, p.eval(x, &self.field)))
            .collect();

        // Chaff: x values unused by the features, y values off the
        // polynomial.
        let mut used: BTreeSet<u16> = features.clone();
        while points.len() < features.len() + self.chaff {
            let x = rng.gen_range(0..size);
            if used.contains(&x) {
                continue;
            }
            used.insert(x);
            let honest = p.eval(x, &self.field);
            let y = loop {
                let cand = rng.gen_range(0..size);
                if cand != honest {
                    break cand;
                }
            };
            points.push((x, y));
        }
        points.sort_unstable();
        Ok(Vault { points })
    }

    /// Unlocks the vault with a candidate feature set.
    ///
    /// # Errors
    /// [`SketchError::DecodeFailure`] when the overlap is insufficient to
    /// reconstruct the secret.
    pub fn unlock(&self, vault: &Vault, features: &BTreeSet<u16>) -> Result<Vec<u16>, SketchError> {
        let candidates: Vec<(u16, u16)> = vault
            .points
            .iter()
            .copied()
            .filter(|(x, _)| features.contains(x))
            .collect();
        if candidates.len() < self.poly_len {
            return Err(SketchError::DecodeFailure);
        }
        let p = berlekamp_welch(&self.field, &candidates, self.poly_len)
            .map_err(|_| SketchError::DecodeFailure)?;
        let mut coeffs = p.coeffs().to_vec();
        coeffs.resize(self.poly_len, 0);
        Ok(coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(555)
    }

    fn scheme() -> FuzzyVault {
        FuzzyVault::new(8, 4, 180).unwrap()
    }

    fn features(range: std::ops::RangeInclusive<u16>) -> BTreeSet<u16> {
        range.collect()
    }

    #[test]
    fn lock_unlock_same_features() {
        let mut r = rng();
        let v = scheme();
        let f = features(10..=29);
        let secret = vec![1, 2, 3, 4];
        let vault = v.lock(&f, &secret, &mut r).unwrap();
        assert_eq!(vault.len(), 200); // 20 genuine + 180 chaff
        assert_eq!(v.unlock(&vault, &f).unwrap(), secret);
    }

    #[test]
    fn unlock_with_partial_overlap() {
        let mut r = rng();
        let v = scheme();
        let f = features(10..=29); // 20 features
        let secret = vec![9, 8, 7, 6];
        let vault = v.lock(&f, &secret, &mut r).unwrap();
        // Reading shares 16 of 20 features, brings 4 new ones. The new
        // ones either miss the vault or hit chaff (errors for BW).
        let reading = features(14..=33);
        assert_eq!(v.unlock(&vault, &reading).unwrap(), secret);
    }

    #[test]
    fn impostor_set_fails() {
        let mut r = rng();
        let v = scheme();
        let f = features(10..=29);
        let secret = vec![5, 5, 5, 5];
        let vault = v.lock(&f, &secret, &mut r).unwrap();
        // Disjoint feature set: only chaff can match.
        let impostor = features(100..=119);
        match v.unlock(&vault, &impostor) {
            Err(SketchError::DecodeFailure) => {}
            Ok(got) => assert_ne!(got, secret, "impostor recovered the secret"),
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn secret_roundtrip_with_high_degree() {
        let mut r = rng();
        let v = FuzzyVault::new(8, 8, 100).unwrap();
        let f = features(1..=30);
        let secret: Vec<u16> = (100..108).collect();
        let vault = v.lock(&f, &secret, &mut r).unwrap();
        assert_eq!(v.unlock(&vault, &f).unwrap(), secret);
    }

    #[test]
    fn chaff_points_not_on_polynomial() {
        let mut r = rng();
        let v = scheme();
        let f = features(10..=29);
        let secret = vec![3, 1, 4, 1];
        let vault = v.lock(&f, &secret, &mut r).unwrap();
        let field = Gf2m::new(8).unwrap();
        let p = Poly::from_coeffs(secret.clone());
        let on_poly = vault
            .points()
            .iter()
            .filter(|&&(x, y)| p.eval(x, &field) == y)
            .count();
        // Exactly the genuine points (chaff y explicitly avoids p(x)).
        assert_eq!(on_poly, 20);
    }

    #[test]
    fn parameter_validation() {
        assert!(FuzzyVault::new(1, 4, 10).is_err()); // bad field
        assert!(FuzzyVault::new(8, 0, 10).is_err()); // empty secret
        assert!(FuzzyVault::new(8, 4, 300).is_err()); // chaff exceeds field
        let v = scheme();
        let mut r = rng();
        // Secret length mismatch.
        assert!(v.lock(&features(1..=20), &[1, 2, 3], &mut r).is_err());
        // Too few features to interpolate.
        assert!(v.lock(&features(1..=2), &[1, 2, 3, 4], &mut r).is_err());
        // Symbol out of field range.
        let mut big = features(1..=20);
        big.insert(300);
        assert!(v.lock(&big, &[1, 2, 3, 4], &mut r).is_err());
    }

    #[test]
    fn points_sorted_and_distinct() {
        let mut r = rng();
        let v = scheme();
        let vault = v.lock(&features(50..=69), &[1, 2, 3, 4], &mut r).unwrap();
        let xs: Vec<u16> = vault.points().iter().map(|p| p.0).collect();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(xs, sorted, "points must be sorted with distinct x");
    }
}
