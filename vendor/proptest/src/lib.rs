//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`any`], `prop::collection::vec`,
//! [`Just`], [`ProptestConfig`], and the `proptest!` / `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   but is not minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   own name, so failures reproduce exactly across runs.
//! * `prop_assume!` skips the current case without replacement (upstream
//!   resamples; with the generous case counts used here the difference
//!   is immaterial).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the `proptest!` runner.
pub type TestRng = StdRng;

/// Runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Derives a deterministic RNG for a named property test.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable, collision-irrelevant here.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    use rand::SeedableRng;
    TestRng::seed_from_u64(h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `f`, retrying on rejection.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({}) rejected 1000 samples in a row",
            self.whence
        )
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// The `any::<T>()` strategy type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose lengths fall in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..100).prop_flat_map(|hi| (Just(hi), 0u64..hi))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments on property tests must parse.
        #[test]
        fn ranges_in_bounds(x in 3u8..7, y in -5i64..=5, n in 0usize..4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!(n < 4);
        }

        #[test]
        fn flat_map_dependency_holds((hi, lo) in pair()) {
            prop_assert!(lo < hi);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn filter_and_map(n in (0u64..50).prop_filter("even", |n| n % 2 == 0)
                              .prop_map(|n| n + 1)) {
            prop_assert_eq!(n % 2, 1);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn assume_skips(a in any::<u16>(), b in any::<u16>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::rng_for("x");
        let mut r2 = crate::rng_for("x");
        let s = 0u64..1_000_000;
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
