//! Edit (Levenshtein) distance — listed in Sec. II-A as a metric used by
//! prior fuzzy-extractor constructions.

use crate::Metric;

/// Levenshtein distance: minimum number of single-symbol insertions,
/// deletions and substitutions transforming one sequence into the other.
///
/// ```rust
/// use fe_metrics::{Levenshtein, Metric};
///
/// assert_eq!(Levenshtein.distance("kitten", "sitting"), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Levenshtein;

impl Levenshtein {
    fn dp<T: PartialEq>(a: &[T], b: &[T]) -> u64 {
        if a.is_empty() {
            return b.len() as u64;
        }
        if b.is_empty() {
            return a.len() as u64;
        }
        // Single-row dynamic program.
        let mut row: Vec<u64> = (0..=b.len() as u64).collect();
        for (i, ca) in a.iter().enumerate() {
            let mut prev_diag = row[0];
            row[0] = i as u64 + 1;
            for (j, cb) in b.iter().enumerate() {
                let cost = if ca == cb { 0 } else { 1 };
                let new = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
                prev_diag = row[j + 1];
                row[j + 1] = new;
            }
        }
        row[b.len()]
    }
}

impl Metric<str> for Levenshtein {
    type Distance = u64;

    fn distance(&self, a: &str, b: &str) -> u64 {
        let av: Vec<char> = a.chars().collect();
        let bv: Vec<char> = b.chars().collect();
        Levenshtein::dp(&av, &bv)
    }
}

impl Metric<[u8]> for Levenshtein {
    type Distance = u64;

    fn distance(&self, a: &[u8], b: &[u8]) -> u64 {
        Levenshtein::dp(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(Levenshtein.distance("kitten", "sitting"), 3);
        assert_eq!(Levenshtein.distance("flaw", "lawn"), 2);
        assert_eq!(Levenshtein.distance("", "abc"), 3);
        assert_eq!(Levenshtein.distance("abc", ""), 3);
        assert_eq!(Levenshtein.distance("same", "same"), 0);
    }

    #[test]
    fn byte_slices() {
        assert_eq!(Levenshtein.distance(&b"abcd"[..], &b"abed"[..]), 1);
    }

    #[test]
    fn symmetry() {
        assert_eq!(
            Levenshtein.distance("saturday", "sunday"),
            Levenshtein.distance("sunday", "saturday")
        );
    }

    #[test]
    fn unicode_chars_counted_once() {
        assert_eq!(Levenshtein.distance("café", "cafe"), 1);
    }
}
