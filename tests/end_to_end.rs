//! End-to-end integration: enrollment → identification → verification
//! across the full stack (biometric workload → fuzzy extractor → DSA
//! protocol), as a downstream user would wire it up.

use fuzzy_id::biometric::{NoiseModel, PopulationGenerator, UniformNoise};
use fuzzy_id::protocol::{ProtocolRunner, SystemParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(users: usize, dim: usize, seed: u64) -> (ProtocolRunner, Vec<Vec<i64>>, StdRng) {
    let params = SystemParams::insecure_test_defaults();
    let mut runner = ProtocolRunner::new(params.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let gen = PopulationGenerator::paper_defaults(dim);
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = gen.random_template(&mut rng).into_features();
        runner
            .enroll_user(&format!("user-{u}"), &bio, &mut rng)
            .unwrap();
        bios.push(bio);
    }
    (runner, bios, rng)
}

#[test]
fn every_enrolled_user_is_identified() {
    let (mut runner, bios, mut rng) = setup(20, 500, 1);
    let noise = UniformNoise::new(100);
    for (u, bio) in bios.iter().enumerate() {
        let reading = noise.perturb(bio, &mut rng);
        let (outcome, stats) = runner.identify(&reading, &mut rng).unwrap();
        assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
        assert_eq!(stats.rep_attempts, 1, "proposed protocol runs one Rep");
        assert_eq!(stats.signature_ops, 2);
    }
}

#[test]
fn every_enrolled_user_passes_verification() {
    let (mut runner, bios, mut rng) = setup(10, 500, 2);
    let noise = UniformNoise::new(90);
    for (u, bio) in bios.iter().enumerate() {
        let id = format!("user-{u}");
        let reading = noise.perturb(bio, &mut rng);
        let (outcome, _) = runner.verify(&id, &reading, &mut rng).unwrap();
        assert_eq!(outcome.identity(), Some(id.as_str()));
    }
}

#[test]
fn impostors_are_rejected_in_both_modes() {
    let (mut runner, _bios, mut rng) = setup(10, 500, 3);
    let gen = PopulationGenerator::paper_defaults(500);
    for _ in 0..5 {
        let impostor = gen.random_template(&mut rng).into_features();
        // Identification: no record matches.
        assert!(runner.identify(&impostor, &mut rng).is_err());
        // Verification: device cannot answer the challenge.
        assert!(runner.verify("user-0", &impostor, &mut rng).is_err());
    }
}

#[test]
fn proposed_and_normal_agree_across_population() {
    let (mut runner, bios, mut rng) = setup(8, 300, 4);
    let noise = UniformNoise::new(100);
    for bio in &bios {
        let reading = noise.perturb(bio, &mut rng);
        let (o1, _) = runner.identify(&reading, &mut rng).unwrap();
        let (o2, _, _) = runner.identify_normal(&reading, &mut rng).unwrap();
        assert_eq!(o1, o2);
    }
}

#[test]
fn normal_approach_cost_grows_with_position() {
    let (mut runner, bios, mut rng) = setup(15, 300, 5);
    let noise = UniformNoise::new(80);
    let mut last_attempts = 0;
    for (u, bio) in bios.iter().enumerate() {
        let reading = noise.perturb(bio, &mut rng);
        let (outcome, _, stats) = runner.identify_normal(&reading, &mut rng).unwrap();
        assert!(outcome.is_identified());
        assert_eq!(stats.rep_attempts, u + 1);
        assert!(stats.rep_attempts >= last_attempts);
        last_attempts = stats.rep_attempts;
    }
}

#[test]
fn noise_at_exact_threshold_still_identifies() {
    let (mut runner, bios, mut rng) = setup(3, 200, 6);
    // Every coordinate moved by exactly t = 100.
    let reading: Vec<i64> = bios[1].iter().map(|&x| x + 100).collect();
    let (outcome, _) = runner.identify(&reading, &mut rng).unwrap();
    assert_eq!(outcome.identity(), Some("user-1"));
}

#[test]
fn noise_beyond_threshold_rejects_or_misses() {
    let (mut runner, bios, mut rng) = setup(3, 200, 7);
    // One coordinate pushed to t + 99 (within the same interval span but
    // beyond the acceptance threshold): the device-side Rep must fail
    // even if the sketch scan happens to match.
    let mut reading = bios[1].clone();
    reading[0] += 199;
    match runner.identify(&reading, &mut rng) {
        Err(_) => {}
        Ok((outcome, _)) => {
            // If a record matched at the sketch level, the signature round
            // must still have identified the right user or rejected.
            assert!(outcome.identity().is_none() || outcome.identity() == Some("user-1"));
        }
    }
}

#[test]
fn large_dimension_end_to_end() {
    // The paper's headline configuration: n = 5000.
    let (mut runner, bios, mut rng) = setup(3, 5000, 8);
    let noise = UniformNoise::new(100);
    let reading = noise.perturb(&bios[2], &mut rng);
    let (outcome, _) = runner.identify(&reading, &mut rng).unwrap();
    assert_eq!(outcome.identity(), Some("user-2"));
}

#[test]
fn reenrollment_under_new_id_works() {
    // The same biometric enrolled under two ids: fresh helper data and
    // keys each time (reusability hygiene); identification returns one of
    // the two matching records.
    let (mut runner, bios, mut rng) = setup(2, 300, 9);
    runner
        .enroll_user("user-0-alt", &bios[0], &mut rng)
        .unwrap();
    let noise = UniformNoise::new(50);
    let reading = noise.perturb(&bios[0], &mut rng);
    let (outcome, _) = runner.identify(&reading, &mut rng).unwrap();
    let id = outcome.identity().unwrap();
    assert!(id == "user-0" || id == "user-0-alt");
}
