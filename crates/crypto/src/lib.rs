//! Cryptographic primitives for the `fuzzy-id` workspace, implemented from
//! scratch (no external crypto crates).
//!
//! The ICDCS 2017 paper's implementation (Table II) uses **SHA-256** as the
//! "random extractor" and **DSA** as the signature scheme; the robust secure
//! sketch needs a collision-resistant hash. This crate provides all of that:
//!
//! * [`Sha256`] / [`Sha512`] — FIPS 180-4 hash functions.
//! * [`Hmac`] — RFC 2104 MAC, generic over any [`Digest`].
//! * [`HmacDrbg`] — deterministic random bit generator in the style of NIST
//!   SP 800-90A; implements [`rand::RngCore`] so it can drive `fe-bigint`
//!   prime generation and protocol nonces reproducibly.
//! * [`dsa`] — FIPS 186-4-style DSA over from-scratch bignums with
//!   deterministic (RFC-6979-style) per-message nonces.
//! * [`schnorr`] — Schnorr signatures over the same subgroup (used by the
//!   ablation benchmarks).
//! * [`extractor`] — strong randomness extractors: the paper's SHA-256-based
//!   extractor and a provably 2-universal Toeplitz extractor.
//!
//! # Example: hash and MAC
//!
//! ```rust
//! use fe_crypto::{Digest, Hmac, Sha256};
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(fe_crypto::hex_encode(&digest[..4]), "ba7816bf");
//!
//! let tag = Hmac::<Sha256>::mac(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ct;
mod digest;
pub mod drbg;
pub mod dsa;
pub mod extractor;
mod hkdf;
mod hmac;
pub mod schnorr;
mod sha256;
mod sha512;

pub use digest::Digest;
pub use drbg::HmacDrbg;
pub use hkdf::Hkdf;
pub use hmac::Hmac;
pub use sha256::Sha256;
pub use sha512::Sha512;

/// Signature scheme abstraction shared by DSA and Schnorr so protocols can be
/// generic over the signer.
pub mod sig {
    /// A detached signature scheme: key generation from seed material,
    /// signing and verification over byte messages.
    ///
    /// In the paper's enrollment protocol (Fig. 1), the fuzzy-extractor
    /// output `R` seeds `KeyGen`; reproduction of `R` during identification
    /// must yield the *same* key pair, so key generation is deterministic in
    /// the seed.
    pub trait SignatureScheme {
        /// Private signing key.
        type SigningKey;
        /// Public verification key.
        type VerifyingKey: Clone;
        /// Signature value.
        type Signature: Clone;

        /// Derives a deterministic key pair from secret seed bytes (the
        /// fuzzy-extractor output `R` in the paper's enrollment protocol).
        fn keypair_from_seed(&self, seed: &[u8]) -> (Self::SigningKey, Self::VerifyingKey);

        /// Signs a message.
        fn sign(&self, key: &Self::SigningKey, msg: &[u8]) -> Self::Signature;

        /// Verifies a signature; `true` means valid.
        fn verify(&self, key: &Self::VerifyingKey, msg: &[u8], sig: &Self::Signature) -> bool;
    }
}

/// Encodes bytes as lowercase hex (test/debug helper used across the
/// workspace).
pub fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Decodes a lowercase/uppercase hex string; `None` on bad input.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let bytes = [0x00u8, 0xff, 0x12, 0xab];
        assert_eq!(hex_encode(&bytes), "00ff12ab");
        assert_eq!(hex_decode("00ff12ab"), Some(bytes.to_vec()));
    }

    #[test]
    fn hex_decode_rejects_bad_input() {
        assert_eq!(hex_decode("abc"), None); // odd length
        assert_eq!(hex_decode("zz"), None); // bad digit
    }
}
