//! Concurrency integration: one shared authentication server, many
//! devices enrolling, identifying, verifying and revoking in parallel —
//! exercised on both the seed-compatible single-shard configuration and
//! the sharded configurations (per-shard locks, sharded indexes,
//! batched identification).

use fuzzy_id::core::{EpochIndex, EpochRead, ShardedIndex};
use fuzzy_id::protocol::concurrent::SharedServer;
use fuzzy_id::protocol::{BiometricDevice, IndexConfig, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn noisy(bio: &[i64], rng: &mut StdRng) -> Vec<i64> {
    bio.iter()
        .map(|&x| x + rng.gen_range(-90i64..=90))
        .collect()
}

/// Every user identifies 3 times concurrently against `server`.
fn run_identification_storm<I: EpochRead + Send + Sync>(server: SharedServer<I>, seed: u64) {
    let params = server.params().clone();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(seed);

    let users = 12usize;
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(200, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }

    crossbeam::scope(|scope| {
        for round in 0..3u64 {
            for (u, bio) in bios.iter().enumerate() {
                let server = server.clone();
                let device = device.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(round * 1000 + u as u64);
                    let reading = noisy(bio, &mut rng);
                    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                    let chal = server.begin_identification(&probe, &mut rng).unwrap();
                    let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                    let outcome = server.finish_identification(&resp).unwrap();
                    assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                });
            }
        }
    })
    .expect("no thread panicked");
}

#[test]
fn parallel_identification_storm_single_shard() {
    // The seed-compatible configuration: one shard, scan index.
    run_identification_storm(
        SharedServer::new(SystemParams::insecure_test_defaults()),
        7_000,
    );
}

#[test]
fn parallel_identification_storm_sharded() {
    // Four server shards, each with a 2-way sharded scan index.
    let params = SystemParams::insecure_test_defaults()
        .with_index_config(IndexConfig::ShardedScan { shards: 2 });
    run_identification_storm(
        SharedServer::<ShardedIndex<EpochIndex>>::with_shards(params, 4),
        7_001,
    );
}

#[test]
fn interleaved_sessions_do_not_cross_talk() {
    // Open all challenges first, answer them in reverse order: every
    // session must still resolve to its own user — across shard
    // session-namespaces.
    let params = SystemParams::insecure_test_defaults();
    let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 3);
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(7_100);

    let users = 6usize;
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(150, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }

    let mut open = Vec::new();
    for (u, bio) in bios.iter().enumerate() {
        let reading = noisy(bio, &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        open.push((u, reading, chal));
    }
    // Sessions must be globally unique even though three shards issue
    // them independently.
    let mut sessions: Vec<u64> = open.iter().map(|(_, _, c)| c.session).collect();
    sessions.sort_unstable();
    sessions.dedup();
    assert_eq!(sessions.len(), users);

    for (u, reading, chal) in open.into_iter().rev() {
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        let outcome = server.finish_identification(&resp).unwrap();
        assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
    }
}

#[test]
fn enrollment_and_identification_interleave() {
    let params = SystemParams::insecure_test_defaults();
    let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 4);
    let device = BiometricDevice::new(params.clone());

    // Seed population.
    let mut rng = StdRng::seed_from_u64(7_200);
    let mut bios = Vec::new();
    for u in 0..4 {
        let bio = params.sketch().line().random_vector(150, &mut rng);
        server
            .enroll(device.enroll(&format!("seed-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }

    crossbeam::scope(|scope| {
        // Writers: enroll 8 new users.
        for w in 0..8 {
            let server = server.clone();
            let device = device.clone();
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(8_000 + w);
                let bio = device.params().sketch().line().random_vector(150, &mut rng);
                server
                    .enroll(device.enroll(&format!("new-{w}"), &bio, &mut rng).unwrap())
                    .unwrap();
            });
        }
        // Readers: identify seed users while writers run.
        for (u, bio) in bios.iter().enumerate() {
            let server = server.clone();
            let device = device.clone();
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(9_000 + u as u64);
                let reading = noisy(bio, &mut rng);
                let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                let chal = server.begin_identification(&probe, &mut rng).unwrap();
                let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                assert!(server.finish_identification(&resp).unwrap().is_identified());
            });
        }
    })
    .expect("no thread panicked");
    assert_eq!(server.user_count(), 12);
}

#[test]
fn concurrent_batches_from_many_frontends() {
    // Several frontend threads each submit a whole batch; all batches
    // resolve correctly and sessions never collide.
    let params = SystemParams::insecure_test_defaults();
    let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 4);
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(7_300);

    let users = 9usize;
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(120, &mut rng);
        server
            .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
            .unwrap();
        bios.push(bio);
    }

    crossbeam::scope(|scope| {
        for frontend in 0..3u64 {
            let server = server.clone();
            let device = device.clone();
            let bios = &bios;
            scope.spawn(move |_| {
                let mut rng = StdRng::seed_from_u64(10_000 + frontend);
                let picks: Vec<usize> = (0..users).filter(|u| u % 3 == frontend as usize).collect();
                let mut readings = Vec::new();
                let mut batch = Vec::new();
                for &u in &picks {
                    let reading = noisy(&bios[u], &mut rng);
                    batch.push(device.probe_sketch(&reading, &mut rng).unwrap());
                    readings.push(reading);
                }
                let results = server.identify_batch(&batch, &mut rng);
                for ((result, reading), &u) in results.iter().zip(&readings).zip(&picks) {
                    let chal = result.as_ref().expect("genuine probe matches");
                    let resp = device.respond(reading, chal, &mut rng).unwrap();
                    let outcome = server.finish_identification(&resp).unwrap();
                    assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                }
            });
        }
    })
    .expect("no thread panicked");
}
