//! A compact bit vector used by the Hamming-metric constructions
//! (code-offset sketch, fuzzy commitment, BCH codewords).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::BitXor;

/// A fixed-length vector of bits packed into 64-bit words.
///
/// ```rust
/// use fe_metrics::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(9, true);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(3));
/// assert!(!v.get(4));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// An all-one bit vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Builds from a boolean slice.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds a length-`len` vector with bit `i` equal to `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = BitVec::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Builds from packed little-endian bytes, taking the first `len` bits.
    ///
    /// # Panics
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() * 8 >= len, "not enough bytes for {len} bits");
        BitVec::from_fn(len, |i| (bytes[i / 8] >> (i % 8)) & 1 == 1)
    }

    /// Packs into little-endian bytes (`ceil(len/8)` of them).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        if value {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Flips bit `i`, returning its new value.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn flip(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / 64] ^= 1u64 << (i % 64);
        self.get(i)
    }

    /// Population count.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn xor_in_place(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= b;
        }
    }

    /// Hamming weight of the XOR of two vectors, without allocating.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn xor_weight(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch in xor_weight");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterates over the bits as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Clears any bits beyond `len` in the last word (internal invariant).
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl BitXor<&BitVec> for &BitVec {
    type Output = BitVec;
    /// # Panics
    /// Panics if the lengths differ.
    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_in_place(rhs);
        out
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let show = self.len.min(64);
        for i in 0..show {
            write!(f, "{}", self.get(i) as u8)?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
    }

    #[test]
    fn ones_masks_tail() {
        // If the tail were unmasked, count_ones would exceed len.
        for len in [1usize, 63, 64, 65, 127, 128] {
            assert_eq!(BitVec::ones(len).count_ones(), len, "len={len}");
        }
    }

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(100);
        v.set(64, true);
        assert!(v.get(64));
        assert!(!v.flip(64));
        assert!(v.flip(99));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn bools_roundtrip() {
        let bits = [true, false, true, true, false, false, true];
        let v = BitVec::from_bools(&bits);
        let back: Vec<bool> = v.iter().collect();
        assert_eq!(back, bits);
    }

    #[test]
    fn bytes_roundtrip() {
        let v = BitVec::from_fn(77, |i| i % 3 == 0);
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), 10);
        assert_eq!(BitVec::from_bytes(&bytes, 77), v);
    }

    #[test]
    fn xor_and_weight() {
        let a = BitVec::from_fn(200, |i| i % 2 == 0);
        let b = BitVec::from_fn(200, |i| i % 4 == 0);
        let x = &a ^ &b;
        assert_eq!(x.count_ones(), a.xor_weight(&b));
        // Bits where exactly one of a, b is set: i%2==0 && i%4!=0 → 50 bits.
        assert_eq!(x.count_ones(), 50);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let _ = &BitVec::zeros(3) ^ &BitVec::zeros(4);
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = (0..10).map(|i| i < 5).collect();
        assert_eq!(v.count_ones(), 5);
        assert!(v.get(0) && !v.get(5));
    }

    #[test]
    fn debug_format_truncates() {
        let v = BitVec::zeros(100);
        let s = format!("{v:?}");
        assert!(s.contains("BitVec[100;"));
        assert!(s.contains('…'));
    }
}
