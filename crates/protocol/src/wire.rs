//! Binary wire codec for the protocol messages — the payload layer of
//! the networked front door.
//!
//! A compact, self-describing encoding: every message starts with a
//! 4-byte magic (`FEID`) + 1-byte message tag + 2-byte version,
//! followed by big-endian, length-prefixed fields. The codec is
//! independent of serde so the protocol can run over raw sockets
//! without a serialization framework; the serde derives on the message
//! types remain available for downstream users with their own format.
//!
//! # Message tags
//!
//! | tag | message | direction |
//! |----:|---------|-----------|
//! | 0 | [`Message::Identify`] | request |
//! | 1 | [`Message::Enroll`] | request |
//! | 2 | [`Message::Challenge`] | response |
//! | 3 | [`Message::Response`] | request |
//! | 4 | [`Message::Outcome`] | response |
//! | 5 | [`Message::EnrollUnique`] | request |
//! | 6 | [`Message::Reset`] | request |
//! | 7 | [`Message::AuthenticateClaimed`] | request |
//! | 8 | [`Message::CheckLocalUniqueness`] | request |
//! | 9 | [`Message::Revoke`] | request |
//! | 10 | [`Message::IdentifyBatch`] | request |
//!
//! "Direction" is a *convention of the TCP front door* (`fe-net`), not
//! a property of the codec: [`encode`]/[`decode`] round-trip every
//! variant. The normative byte-level specification — including how
//! these messages ride inside CRC-framed transport frames, the
//! handshake, and the response envelope — lives in `PROTOCOL.md` at the
//! repository root; this module is its reference implementation for the
//! message payload layer.
//!
//! # Robustness contract
//!
//! [`decode`] never panics and never over-allocates from attacker-
//! controlled length fields: every length is validated against the
//! bytes actually remaining before use, vector preallocations are
//! capped by what the buffer could possibly hold, truncated input at
//! *any* byte offset yields [`ProtocolError::Malformed`], and trailing
//! garbage is rejected. The tests exercise every proper prefix of every
//! message kind plus random fuzz buffers.
//!
//! ```rust
//! use fe_protocol::wire::{decode, encode, Message};
//!
//! let msg = Message::Identify { probe: vec![1, -2, 300] };
//! let bytes = encode(&msg);
//! assert_eq!(decode(&bytes).unwrap(), msg);
//! // Truncation fails cleanly instead of panicking.
//! assert!(decode(&bytes[..bytes.len() - 1]).is_err());
//! ```

use crate::messages::{
    EnrollmentRecord, IdentChallenge, IdentOutcome, IdentResponse, UserId, WireHelper,
};
use crate::ProtocolError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use fe_core::RobustData;

const MAGIC: &[u8; 4] = b"FEID";
const VERSION: u16 = 1;

const TAG_IDENTIFY: u8 = 0;
const TAG_ENROLL: u8 = 1;
const TAG_CHALLENGE: u8 = 2;
const TAG_RESPONSE: u8 = 3;
const TAG_OUTCOME: u8 = 4;
const TAG_ENROLL_UNIQUE: u8 = 5;
const TAG_RESET: u8 = 6;
const TAG_AUTH_CLAIMED: u8 = 7;
const TAG_LOCAL_UNIQUE: u8 = 8;
const TAG_REVOKE: u8 = 9;
const TAG_IDENTIFY_BATCH: u8 = 10;

/// Any protocol message, for tag-dispatched decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Identification phase-1 request: find the enrolled record matching
    /// `probe` and open a challenge session
    /// ([`begin_identification`](crate::AuthenticationServer::begin_identification)).
    /// Answered with a [`Message::Challenge`].
    Identify {
        /// The probe sketch.
        probe: Vec<i64>,
    },
    /// Enrollment record (Fig. 1).
    Enroll(EnrollmentRecord),
    /// Identification challenge (Fig. 3).
    Challenge(IdentChallenge),
    /// Identification response (Fig. 3).
    Response(IdentResponse),
    /// Final outcome notification.
    Outcome(IdentOutcome),
    /// Uniqueness-checked enrollment request (same payload as
    /// [`Message::Enroll`]; the server runs
    /// [`enroll_unique`](crate::AuthenticationServer::enroll_unique)).
    EnrollUnique(EnrollmentRecord),
    /// Reset / account-recovery request: succeed only when exactly one
    /// record matches the probe sketch
    /// ([`reset`](crate::AuthenticationServer::reset)).
    Reset {
        /// The probe sketch.
        probe: Vec<i64>,
    },
    /// Targeted claimed-identity check
    /// ([`authenticate_claimed`](crate::AuthenticationServer::authenticate_claimed)).
    AuthenticateClaimed {
        /// The claimed user id.
        id: UserId,
        /// The probe sketch.
        probe: Vec<i64>,
    },
    /// Subset uniqueness check
    /// ([`check_local_uniqueness`](crate::AuthenticationServer::check_local_uniqueness)).
    CheckLocalUniqueness {
        /// The probe sketch.
        probe: Vec<i64>,
        /// The user subset to check against.
        ids: Vec<UserId>,
    },
    /// Revocation request: remove the enrollment under `id`
    /// ([`revoke`](crate::AuthenticationServer::revoke)).
    Revoke {
        /// The user id to revoke.
        id: UserId,
    },
    /// Batched identification phase 1: every probe resolved in one
    /// server-side pass
    /// ([`identify_batch`](crate::scheduler::ScheduledServer::identify_batch));
    /// answered per probe, position-aligned.
    IdentifyBatch {
        /// The probe sketches.
        probes: Vec<Vec<i64>>,
    },
}

fn put_bytes(buf: &mut BytesMut, data: &[u8]) {
    buf.put_u32(data.len() as u32);
    buf.put_slice(data);
}

fn get_bytes(buf: &mut Bytes) -> Result<Vec<u8>, ProtocolError> {
    if buf.remaining() < 4 {
        return Err(ProtocolError::Malformed("truncated length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(ProtocolError::Malformed("truncated payload"));
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

fn put_i64s(buf: &mut BytesMut, data: &[i64]) {
    buf.put_u32(data.len() as u32);
    for &v in data {
        buf.put_i64(v);
    }
}

fn get_i64s(buf: &mut Bytes) -> Result<Vec<i64>, ProtocolError> {
    if buf.remaining() < 4 {
        return Err(ProtocolError::Malformed("truncated vector length"));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len.saturating_mul(8) {
        return Err(ProtocolError::Malformed("truncated vector"));
    }
    Ok((0..len).map(|_| buf.get_i64()).collect())
}

fn put_helper(buf: &mut BytesMut, helper: &WireHelper) {
    put_i64s(buf, &helper.sketch.inner);
    put_bytes(buf, &helper.sketch.tag);
    put_bytes(buf, &helper.seed);
}

fn get_helper(buf: &mut Bytes) -> Result<WireHelper, ProtocolError> {
    let inner = get_i64s(buf)?;
    let tag = get_bytes(buf)?;
    let seed = get_bytes(buf)?;
    Ok(WireHelper {
        sketch: RobustData { inner, tag },
        seed,
    })
}

fn header(tag: u8) -> BytesMut {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_slice(MAGIC);
    buf.put_u8(tag);
    buf.put_u16(VERSION);
    buf
}

/// Encodes a message to its wire representation.
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut buf;
    match msg {
        Message::Identify { probe } => {
            buf = header(TAG_IDENTIFY);
            put_i64s(&mut buf, probe);
        }
        Message::Enroll(r) => {
            buf = header(TAG_ENROLL);
            put_bytes(&mut buf, r.id.as_bytes());
            put_bytes(&mut buf, &r.public_key);
            put_helper(&mut buf, &r.helper);
        }
        Message::Challenge(c) => {
            buf = header(TAG_CHALLENGE);
            buf.put_u64(c.session);
            buf.put_u64(c.challenge);
            put_helper(&mut buf, &c.helper);
        }
        Message::Response(r) => {
            buf = header(TAG_RESPONSE);
            buf.put_u64(r.session);
            buf.put_u64(r.nonce);
            put_bytes(&mut buf, &r.signature);
        }
        Message::Outcome(o) => {
            buf = header(TAG_OUTCOME);
            match o {
                IdentOutcome::Identified(id) => {
                    buf.put_u8(1);
                    put_bytes(&mut buf, id.as_bytes());
                }
                IdentOutcome::Rejected => buf.put_u8(0),
            }
        }
        Message::EnrollUnique(r) => {
            buf = header(TAG_ENROLL_UNIQUE);
            put_bytes(&mut buf, r.id.as_bytes());
            put_bytes(&mut buf, &r.public_key);
            put_helper(&mut buf, &r.helper);
        }
        Message::Reset { probe } => {
            buf = header(TAG_RESET);
            put_i64s(&mut buf, probe);
        }
        Message::AuthenticateClaimed { id, probe } => {
            buf = header(TAG_AUTH_CLAIMED);
            put_bytes(&mut buf, id.as_bytes());
            put_i64s(&mut buf, probe);
        }
        Message::CheckLocalUniqueness { probe, ids } => {
            buf = header(TAG_LOCAL_UNIQUE);
            put_i64s(&mut buf, probe);
            buf.put_u32(ids.len() as u32);
            for id in ids {
                put_bytes(&mut buf, id.as_bytes());
            }
        }
        Message::Revoke { id } => {
            buf = header(TAG_REVOKE);
            put_bytes(&mut buf, id.as_bytes());
        }
        Message::IdentifyBatch { probes } => {
            buf = header(TAG_IDENTIFY_BATCH);
            buf.put_u32(probes.len() as u32);
            for probe in probes {
                put_i64s(&mut buf, probe);
            }
        }
    }
    buf.to_vec()
}

/// Decodes a wire message.
///
/// # Errors
/// [`ProtocolError::Malformed`] on bad magic, unknown version or tag,
/// truncation, or trailing garbage.
pub fn decode(data: &[u8]) -> Result<Message, ProtocolError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < 7 {
        return Err(ProtocolError::Malformed("short header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(ProtocolError::Malformed("bad magic"));
    }
    let tag = buf.get_u8();
    let version = buf.get_u16();
    if version != VERSION {
        return Err(ProtocolError::Malformed("unsupported version"));
    }
    let msg = match tag {
        TAG_IDENTIFY => Message::Identify {
            probe: get_i64s(&mut buf)?,
        },
        TAG_ENROLL => {
            let id = String::from_utf8(get_bytes(&mut buf)?)
                .map_err(|_| ProtocolError::Malformed("id not utf-8"))?;
            let public_key = get_bytes(&mut buf)?;
            let helper = get_helper(&mut buf)?;
            Message::Enroll(EnrollmentRecord {
                id,
                public_key,
                helper,
            })
        }
        TAG_CHALLENGE => {
            if buf.remaining() < 16 {
                return Err(ProtocolError::Malformed("truncated challenge"));
            }
            let session = buf.get_u64();
            let challenge = buf.get_u64();
            let helper = get_helper(&mut buf)?;
            Message::Challenge(IdentChallenge {
                session,
                helper,
                challenge,
            })
        }
        TAG_RESPONSE => {
            if buf.remaining() < 16 {
                return Err(ProtocolError::Malformed("truncated response"));
            }
            let session = buf.get_u64();
            let nonce = buf.get_u64();
            let signature = get_bytes(&mut buf)?;
            Message::Response(IdentResponse {
                session,
                signature,
                nonce,
            })
        }
        TAG_OUTCOME => {
            if buf.remaining() < 1 {
                return Err(ProtocolError::Malformed("truncated outcome"));
            }
            match buf.get_u8() {
                1 => {
                    let id = String::from_utf8(get_bytes(&mut buf)?)
                        .map_err(|_| ProtocolError::Malformed("id not utf-8"))?;
                    Message::Outcome(IdentOutcome::Identified(id))
                }
                0 => Message::Outcome(IdentOutcome::Rejected),
                _ => return Err(ProtocolError::Malformed("bad outcome flag")),
            }
        }
        TAG_ENROLL_UNIQUE => {
            let id = String::from_utf8(get_bytes(&mut buf)?)
                .map_err(|_| ProtocolError::Malformed("id not utf-8"))?;
            let public_key = get_bytes(&mut buf)?;
            let helper = get_helper(&mut buf)?;
            Message::EnrollUnique(EnrollmentRecord {
                id,
                public_key,
                helper,
            })
        }
        TAG_RESET => Message::Reset {
            probe: get_i64s(&mut buf)?,
        },
        TAG_AUTH_CLAIMED => {
            let id = String::from_utf8(get_bytes(&mut buf)?)
                .map_err(|_| ProtocolError::Malformed("id not utf-8"))?;
            let probe = get_i64s(&mut buf)?;
            Message::AuthenticateClaimed { id, probe }
        }
        TAG_LOCAL_UNIQUE => {
            let probe = get_i64s(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(ProtocolError::Malformed("truncated id count"));
            }
            let count = buf.get_u32() as usize;
            // Like the snapshot loader, cap the preallocation by what
            // the remaining bytes could possibly hold (4-byte length
            // prefix per id minimum) so a lying count cannot trigger a
            // huge allocation.
            let mut ids = Vec::with_capacity(count.min(buf.remaining() / 4));
            for _ in 0..count {
                ids.push(
                    String::from_utf8(get_bytes(&mut buf)?)
                        .map_err(|_| ProtocolError::Malformed("id not utf-8"))?,
                );
            }
            Message::CheckLocalUniqueness { probe, ids }
        }
        TAG_REVOKE => {
            let id = String::from_utf8(get_bytes(&mut buf)?)
                .map_err(|_| ProtocolError::Malformed("id not utf-8"))?;
            Message::Revoke { id }
        }
        TAG_IDENTIFY_BATCH => {
            if buf.remaining() < 4 {
                return Err(ProtocolError::Malformed("truncated probe count"));
            }
            let count = buf.get_u32() as usize;
            // Prealloc capped by what the remaining bytes could hold
            // (each probe carries at least its own 4-byte length), so a
            // lying count cannot trigger a huge allocation.
            let mut probes = Vec::with_capacity(count.min(buf.remaining() / 4));
            for _ in 0..count {
                probes.push(get_i64s(&mut buf)?);
            }
            Message::IdentifyBatch { probes }
        }
        _ => return Err(ProtocolError::Malformed("unknown tag")),
    };
    if buf.has_remaining() {
        return Err(ProtocolError::Malformed("trailing bytes"));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BiometricDevice, SystemParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_record() -> EnrollmentRecord {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let bio = params.sketch().line().random_vector(16, &mut rng);
        device.enroll("wire-user", &bio, &mut rng).unwrap()
    }

    #[test]
    fn enroll_roundtrip() {
        let record = sample_record();
        let msg = Message::Enroll(record);
        let bytes = encode(&msg);
        assert_eq!(decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn challenge_roundtrip() {
        let record = sample_record();
        let msg = Message::Challenge(IdentChallenge {
            session: 77,
            helper: record.helper,
            challenge: u64::MAX,
        });
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn response_roundtrip() {
        let msg = Message::Response(IdentResponse {
            session: 3,
            signature: vec![9; 40],
            nonce: 0,
        });
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn outcome_roundtrip() {
        for o in [
            IdentOutcome::Identified("alice".into()),
            IdentOutcome::Rejected,
        ] {
            let msg = Message::Outcome(o);
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn matching_mode_requests_roundtrip() {
        let record = sample_record();
        for msg in [
            Message::EnrollUnique(record),
            Message::Reset {
                probe: vec![-3, 0, 399, i64::MIN],
            },
            Message::AuthenticateClaimed {
                id: "claimant".into(),
                probe: vec![1, 2, 3],
            },
            Message::CheckLocalUniqueness {
                probe: vec![7; 16],
                ids: vec!["a".into(), "b".into(), "c".into()],
            },
            Message::CheckLocalUniqueness {
                probe: Vec::new(),
                ids: Vec::new(),
            },
        ] {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn front_door_requests_roundtrip() {
        for msg in [
            Message::Identify {
                probe: vec![0, -1, i64::MAX, 42],
            },
            Message::Identify { probe: Vec::new() },
            Message::Revoke {
                id: "mallory".into(),
            },
            Message::IdentifyBatch {
                probes: vec![vec![1, 2, 3], Vec::new(), vec![i64::MIN]],
            },
            Message::IdentifyBatch { probes: Vec::new() },
        ] {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn front_door_requests_reject_truncation() {
        for msg in [
            Message::Identify { probe: vec![9; 12] },
            Message::Revoke { id: "alice".into() },
            Message::IdentifyBatch {
                probes: vec![vec![1, 2], vec![3]],
            },
        ] {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} accepted");
            }
            let mut extended = bytes;
            extended.push(0);
            assert!(matches!(
                decode(&extended),
                Err(ProtocolError::Malformed("trailing bytes"))
            ));
        }
    }

    #[test]
    fn lying_batch_count_cannot_overallocate() {
        let mut bytes = encode(&Message::IdentifyBatch {
            probes: vec![vec![7]],
        });
        // Header is 7 bytes; the batch count is the next 4. Claim 2^32-1
        // probes with only one actually present: must fail cleanly.
        bytes[7..11].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn matching_mode_requests_reject_truncation() {
        let msg = Message::CheckLocalUniqueness {
            probe: vec![5; 8],
            ids: vec!["alice".into(), "bob".into()],
        };
        let bytes = encode(&msg);
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        let mut extended = bytes;
        extended.push(0);
        assert!(matches!(
            decode(&extended),
            Err(ProtocolError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn negative_sketch_values_survive() {
        let mut record = sample_record();
        record.helper.sketch.inner[0] = -200;
        record.helper.sketch.inner[1] = i64::MIN;
        let msg = Message::Enroll(record);
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&Message::Outcome(IdentOutcome::Rejected));
        bytes[0] = b'X';
        assert!(matches!(
            decode(&bytes),
            Err(ProtocolError::Malformed("bad magic"))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&Message::Outcome(IdentOutcome::Rejected));
        bytes[5] = 0xff;
        assert!(matches!(
            decode(&bytes),
            Err(ProtocolError::Malformed("unsupported version"))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = encode(&Message::Outcome(IdentOutcome::Rejected));
        bytes[4] = 99;
        assert!(matches!(
            decode(&bytes),
            Err(ProtocolError::Malformed("unknown tag"))
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let record = sample_record();
        let bytes = encode(&Message::Enroll(record));
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&Message::Outcome(IdentOutcome::Rejected));
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(ProtocolError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn fuzz_random_buffers_never_panic() {
        let mut rng = StdRng::seed_from_u64(99);
        use rand::Rng;
        for _ in 0..2000 {
            let len = rng.gen_range(0..200);
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let _ = decode(&data); // must not panic
        }
    }
}
