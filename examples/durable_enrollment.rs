//! Durable enrollment end-to-end: enroll a population against a
//! journaled sharded server, checkpoint part of the history, "crash"
//! (drop the server without any shutdown path), recover everything from
//! disk, and identify a returning user.
//!
//! ```bash
//! cargo run --release --example durable_enrollment
//! ```

use fuzzy_id::core::EpochIndex;
use fuzzy_id::protocol::concurrent::SharedServer;
use fuzzy_id::protocol::{BiometricDevice, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2026);
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());

    let dir = std::env::temp_dir().join(format!("fe-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Lifetime 1: a durable sharded server ----------------------
    println!("opening durable server at {}", dir.display());
    let server = SharedServer::<EpochIndex>::durable(params.clone(), 2, &dir)?;

    let users = 24usize;
    let dim = 48usize;
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(dim, &mut rng);
        server.enroll(device.enroll(&format!("user-{u:02}"), &bio, &mut rng)?)?;
        bios.push(bio);
    }
    println!(
        "enrolled {users} users ({} journaled events)",
        server.journal_len()
    );

    // Part of the history moves into a compacted snapshot…
    server.checkpoint()?;
    // …and the rest stays in the journal tail: two late enrollments and
    // two revocations land after the checkpoint.
    for u in users..users + 2 {
        let bio = params.sketch().line().random_vector(dim, &mut rng);
        server.enroll(device.enroll(&format!("user-{u:02}"), &bio, &mut rng)?)?;
        bios.push(bio);
    }
    server.revoke("user-03")?;
    server.revoke("user-17")?;
    println!(
        "after checkpoint: {} users live, journal tail = {} events",
        server.user_count(),
        server.journal_len()
    );

    // ---- The crash -------------------------------------------------
    // No flush call, no shutdown hook: the process state is simply
    // gone. Everything acknowledged is already on disk (write-ahead).
    drop(server);
    println!("💥 crashed (dropped the server without shutdown)");

    // ---- Lifetime 2: recovery --------------------------------------
    let server = SharedServer::<EpochIndex>::recover(params.clone(), &dir)?;
    println!(
        "recovered {} shards, {} live users",
        server.num_shards(),
        server.user_count()
    );
    assert_eq!(server.user_count(), users); // 26 enrolled − 2 revoked

    // A returning user presents a fresh, noisy reading and is
    // identified with no identity claim — across the restart.
    let returning = 21usize;
    let t = params.sketch().threshold() as i64;
    let reading: Vec<i64> = bios[returning]
        .iter()
        .map(|&x| x + rng.gen_range(-t..=t))
        .collect();
    let probe = device.probe_sketch(&reading, &mut rng)?;
    let challenge = server.begin_identification(&probe, &mut rng)?;
    let response = device.respond(&reading, &challenge, &mut rng)?;
    let outcome = server.finish_identification(&response)?;
    println!(
        "returning user identified as {:?} after crash + recovery",
        outcome.identity().expect("genuine user must identify")
    );
    assert_eq!(outcome.identity(), Some("user-21"));

    // Revoked users stay revoked across the restart.
    let reading: Vec<i64> = bios[3].iter().map(|&x| x + 5).collect();
    let probe = device.probe_sketch(&reading, &mut rng)?;
    assert!(server.begin_identification(&probe, &mut rng).is_err());
    println!("revoked user-03 correctly rejected after recovery");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
