//! Primality testing and prime generation.

use crate::rand_util::{random_below, random_bits};
use crate::Natural;
use rand::RngCore;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 60] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281,
];

impl Natural {
    /// Miller–Rabin probabilistic primality test with `rounds` random bases
    /// (error probability at most `4^-rounds`), preceded by trial division
    /// by small primes.
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// use rand::SeedableRng;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    /// let p = Natural::from(1_000_000_007u64);
    /// assert!(p.is_probable_prime(32, &mut rng));
    /// assert!(!Natural::from(1_000_000_008u64).is_probable_prime(32, &mut rng));
    /// ```
    pub fn is_probable_prime<R: RngCore + ?Sized>(&self, rounds: usize, rng: &mut R) -> bool {
        if self < &2u64 {
            return false;
        }
        for &p in &SMALL_PRIMES {
            let pn = Natural::from(p);
            if self == &pn {
                return true;
            }
            if self.rem_nat(&pn).is_zero() {
                return false;
            }
        }
        // self is odd and > 281 here. Write self - 1 = d * 2^s.
        let minus_one = self.checked_sub(&Natural::one()).expect("self >= 2");
        let s = minus_one.trailing_zeros().expect("even number has zeros");
        let d = minus_one.shr_bits(s);

        let two = Natural::two();
        let span = self.checked_sub(&Natural::from(3u64)).expect("self > 3");
        'witness: for _ in 0..rounds {
            // a uniform in [2, self - 2]
            let a = &random_below(&span.add_u64(1), rng) + &two;
            let mut x = a.mod_pow(&d, self);
            if x.is_one() || x == minus_one {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mod_mul(&x, self);
                if x == minus_one {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Deterministic check against the small-prime table only (used in
    /// tests and as a fast pre-filter). Returns `None` when the table is
    /// not conclusive.
    pub fn trial_division(&self) -> Option<bool> {
        if self < &2u64 {
            return Some(false);
        }
        for &p in &SMALL_PRIMES {
            let pn = Natural::from(p);
            if self == &pn {
                return Some(true);
            }
            if self.rem_nat(&pn).is_zero() {
                return Some(false);
            }
        }
        let last = *SMALL_PRIMES.last().unwrap();
        if self <= &(last * last) {
            return Some(true); // no prime factor ≤ sqrt(self)
        }
        None
    }
}

/// Generates a random probable prime with exactly `bits` bits
/// (top and bottom bits forced to 1).
///
/// # Panics
/// Panics if `bits < 2`.
pub fn gen_prime<R: RngCore + ?Sized>(bits: usize, rounds: usize, rng: &mut R) -> Natural {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let mut cand = random_bits(bits, rng);
        cand = cand.with_bit(bits - 1, true).with_bit(0, true);
        if cand.is_probable_prime(rounds, rng) {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x0feb_101d)
    }

    #[test]
    fn small_primes_recognized() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 97, 257, 65537] {
            assert!(Natural::from(p).is_probable_prime(16, &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 91, 561, 1105, 65535] {
            assert!(!Natural::from(c).is_probable_prime(16, &mut r), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller-Rabin.
        let mut r = rng();
        for c in [561u64, 41041, 825265, 321197185] {
            assert!(!Natural::from(c).is_probable_prime(16, &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_primes() {
        let mut r = rng();
        // 2^89 - 1 and 2^127 - 1 are Mersenne primes.
        for e in [89usize, 127] {
            let p = Natural::power_of_two(e)
                .checked_sub(&Natural::one())
                .unwrap();
            assert!(p.is_probable_prime(16, &mut r), "2^{e}-1");
        }
        // 2^67 - 1 = 193707721 × 761838257287 is composite.
        let c = Natural::power_of_two(67)
            .checked_sub(&Natural::one())
            .unwrap();
        assert!(!c.is_probable_prime(16, &mut r));
    }

    #[test]
    fn gen_prime_has_requested_size() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, 16, &mut r);
            assert_eq!(p.bit_length(), bits, "bits={bits}");
            assert!(p.is_probable_prime(16, &mut r));
        }
    }

    #[test]
    fn trial_division_verdicts() {
        assert_eq!(Natural::from(1u64).trial_division(), Some(false));
        assert_eq!(Natural::from(2u64).trial_division(), Some(true));
        assert_eq!(Natural::from(4u64).trial_division(), Some(false));
        assert_eq!(Natural::from(283u64).trial_division(), Some(true)); // 283 < 281²
                                                                        // Large number with no small factors: inconclusive.
        let p = Natural::power_of_two(127)
            .checked_sub(&Natural::one())
            .unwrap();
        assert_eq!(p.trial_division(), None);
    }
}
