//! Constant-time comparison helpers.
//!
//! The robust-sketch hash check and signature comparisons must not leak
//! where the first differing byte is, so equality is computed by
//! accumulating the OR of XORed bytes rather than short-circuiting.

/// Constant-time byte-slice equality.
///
/// Returns `false` immediately when lengths differ (length is public in all
/// of our uses: digests and signatures have fixed, known sizes).
///
/// ```rust
/// use fe_crypto::ct::ct_eq;
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"abcd"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Constant-time conditional select of a byte: `if choice { a } else { b }`
/// without branching on `choice`.
#[must_use]
pub fn ct_select_u8(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg(); // 0xff or 0x00
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(&[], &[]));
        assert!(ct_eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!ct_eq(&[1, 2, 3], &[1, 2]));
        // Difference in first byte as well as last.
        assert!(!ct_eq(&[0, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select_u8(true, 0xaa, 0x55), 0xaa);
        assert_eq!(ct_select_u8(false, 0xaa, 0x55), 0x55);
    }
}
