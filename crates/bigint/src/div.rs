//! Division and remainder for [`Natural`] (Knuth TAOCP Vol. 2, Algorithm D).

use crate::Natural;
use std::ops::{Div, Rem};

impl Natural {
    /// Divides by a single 64-bit limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (Natural::from_limbs(q), rem as u64)
    }

    /// Full division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and `remainder < divisor`.
    ///
    /// Uses schoolbook long division for single-limb divisors and Knuth's
    /// Algorithm D otherwise.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// let a = Natural::from(1_000_000_007u64);
    /// let b = Natural::from(97u64);
    /// let (q, r) = a.div_rem(&b);
    /// assert_eq!(&(&q * &b) + &r, a);
    /// ```
    pub fn div_rem(&self, divisor: &Natural) -> (Natural, Natural) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (Natural::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, Natural::from(r));
        }

        // Knuth Algorithm D. Normalize so the top divisor limb has its high
        // bit set, which makes the quotient-digit estimate off by at most 2.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let u = self.shl_bits(shift);
        let v = divisor.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // extra headroom limb
        let vn = &v.limbs;
        let v_top = vn[n - 1];
        let v_second = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two dividend limbs.
            let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numerator / v_top as u128;
            let mut rhat = numerator % v_top as u128;
            // Correct the estimate down while it is provably too big.
            while qhat >> 64 != 0
                || qhat * v_second as u128 > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = un[i + j] as i128 - (p as u64) as i128 + borrow;
                un[i + j] = sub as u64;
                borrow = sub >> 64;
            }
            let sub = un[j + n] as i128 - carry as i128 + borrow;
            un[j + n] = sub as u64;
            borrow = sub >> 64;

            if borrow < 0 {
                // q̂ was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[i + j] as u128 + vn[i] as u128 + carry;
                    un[i + j] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = un[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        let quotient = Natural::from_limbs(q);
        let remainder = Natural::from_limbs(un).shr_bits(shift);
        (quotient, remainder)
    }

    /// Euclidean remainder `self mod m`.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn rem_nat(&self, m: &Natural) -> Natural {
        self.div_rem(m).1
    }

    /// Greatest common divisor (binary GCD).
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// let g = Natural::from(48u64).gcd(&Natural::from(36u64));
    /// assert_eq!(g, Natural::from(12u64));
    /// ```
    pub fn gcd(&self, other: &Natural) -> Natural {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let az = a.trailing_zeros().unwrap();
        let bz = b.trailing_zeros().unwrap();
        let common = az.min(bz);
        a = a.shr_bits(az);
        b = b.shr_bits(bz);
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = &b - &a;
            if b.is_zero() {
                return a.shl_bits(common);
            }
            b = b.shr_bits(b.trailing_zeros().unwrap());
        }
    }
}

impl Div<&Natural> for &Natural {
    type Output = Natural;
    fn div(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).0
    }
}

impl Rem<&Natural> for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn div_small_divisor() {
        let (q, r) = n(1000).div_rem(&n(7));
        assert_eq!(q, n(142));
        assert_eq!(r, n(6));
    }

    #[test]
    fn div_by_larger_is_zero() {
        let (q, r) = n(5).div_rem(&n(100));
        assert!(q.is_zero());
        assert_eq!(r, n(5));
    }

    #[test]
    fn div_exact() {
        let a = n(1u128 << 100);
        let b = n(1u128 << 50);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, n(1u128 << 50));
        assert!(r.is_zero());
    }

    #[test]
    fn div_rem_identity_multi_limb() {
        // Deterministic pseudo-random multi-limb cases.
        let mut x = 0x243F6A8885A308D3u64;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let a = Natural::from_limbs(vec![next(), next(), next(), next(), next()]);
            let b = Natural::from_limbs(vec![next(), next(), next()]);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b);
            assert!(r < b);
            assert_eq!(&(&q * &b) + &r, a);
        }
    }

    #[test]
    fn div_triggers_addback_path() {
        // Classic Algorithm D add-back case: dividend crafted so that the
        // first quotient estimate overshoots.
        let a = Natural::from_limbs(vec![0, u64::MAX - 1, u64::MAX >> 1]);
        let b = Natural::from_limbs(vec![u64::MAX, u64::MAX >> 1]);
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn rem_nat_is_remainder() {
        assert_eq!(n(29).rem_nat(&n(10)), n(9));
    }

    #[test]
    fn gcd_values() {
        assert_eq!(n(0).gcd(&n(7)), n(7));
        assert_eq!(n(7).gcd(&n(0)), n(7));
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(1_000_003).gcd(&n(998_244_353)), n(1));
        let a = n(2 * 3 * 5 * 7 * 1_000_003);
        let b = n(2 * 5 * 11 * 13);
        assert_eq!(a.gcd(&b), n(10));
    }

    #[test]
    fn operators() {
        assert_eq!(&n(100) / &n(7), n(14));
        assert_eq!(&n(100) % &n(7), n(2));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&Natural::zero());
    }
}
