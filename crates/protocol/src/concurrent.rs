//! A thread-safe, shard-partitioned server: many biometric devices
//! identifying against one logical authentication server concurrently.
//!
//! The ICDCS venue is a distributed-computing conference; a production
//! authentication server handles concurrent identification sessions. The
//! seed implementation serialized *everything* behind one global
//! `RwLock<AuthenticationServer>`; this wrapper partitions users across
//! `N` independent server shards and serves the hot path with **no lock
//! at all**:
//!
//! * **Reads never block.** Each shard's sketch index is an
//!   [`EpochIndex`]: writers publish immutable snapshots (sealed
//!   segments + a frozen head) through an epoch-protected pointer, and
//!   every shard keeps a detached [`IndexReader`] over that pointer.
//!   The expensive part of identification — the sweep over conditions
//!   (1)–(4) — runs on the reader with no `RwLock`, no mutex, and no
//!   wait on enrollment churn; only the brief challenge bookkeeping
//!   afterwards takes the shard's write lock, re-validated by a
//!   generation check (see below).
//! * **Journal I/O stays off the read path.** Durable shards keep their
//!   write-ahead journal *outside* the state lock, behind a dedicated
//!   per-shard mutex: validate under a read lock, append (+ optional
//!   fsync) with **no state lock held**, then apply under the write
//!   lock. A reader never observes a critical section that contains
//!   disk I/O.
//! * **Writes are fine-grained.** Enrollment, revocation and challenge
//!   bookkeeping take the write lock of one shard only, leaving the
//!   other `N − 1` shards untouched.
//! * **Sessions need no coordination.** Shard `i` issues session ids
//!   `i + 1, i + 1 + N, i + 1 + 2N, …`
//!   ([`AuthenticationServer::set_session_namespace`]), so a response is
//!   routed back to its shard by arithmetic alone.
//! * **Batching amortizes publication loads.** [`SharedServer::identify_batch`]
//!   resolves a whole queue of probes with one snapshot load per shard
//!   sweep and one write-lock acquisition per shard-with-matches.
//!
//! # The generation check
//!
//! A lock-free scan returns *record slots* that are only meaningful
//! against the numbering it scanned. Revocation tombstones a slot in
//! place (the scan simply stops matching it, and every slot-consuming
//! helper re-validates liveness), but **compaction renumbers**. Every
//! structural renumbering bumps the index's generation
//! ([`fe_core::SketchIndex::generation`]), so the scan captures the
//! published generation first, and any code that consumes scanned slots
//! under a state lock re-checks it there: mismatch → rescan. Generations
//! are monotone and renumbering requires the write lock, so an equal
//! generation under the lock proves the slots are current.
//!
//! Users are assigned to shards by a stable hash of their id; probes
//! (which carry no identity — that is the point of the protocol) are
//! searched on all shards.

use crate::messages::{EnrollmentRecord, IdentChallenge, IdentOutcome, IdentResponse, SessionId};
use crate::params::{DedupPolicy, SystemParams};
use crate::server::{AuthenticationServer, BuildIndex};
use crate::store::{EnrollmentStore, LogEventRef};
use crate::ProtocolError;
use fe_core::{EpochIndex, EpochRead, IndexReader};
use parking_lot::{Mutex, RwLock};
use rand::RngCore;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One server shard: the locked writer state, its lock-free index
/// reader, and (for durable servers) the journal held outside the lock.
struct Shard<I: EpochRead> {
    /// Record table, session bookkeeping and the index *writer*.
    state: RwLock<AuthenticationServer<I>>,
    /// The shard's write-ahead journal. Held **outside** the state
    /// lock: appends (and their fsyncs) serialize writers on this
    /// mutex instead of the state lock, so no reader ever waits on
    /// disk. The mutex is also what serializes the full
    /// validate → append → apply write sequence — journal order *is*
    /// replay order.
    journal: Option<Mutex<Box<dyn EnrollmentStore>>>,
    /// Lock-free reader over the index's published snapshots.
    reader: I::Reader,
    /// Lock-free scans served (diagnostics; state-locked paths count
    /// theirs in the server's own counter).
    reads: AtomicU64,
}

impl<I: EpochRead> Shard<I> {
    /// Wraps a built (or recovered) server, detaching its store into
    /// the journal mutex and taking the index's reader handle.
    fn from_server(mut server: AuthenticationServer<I>) -> Shard<I> {
        let journal = server.detach_store().map(Mutex::new);
        let reader = server.index().reader();
        Shard {
            state: RwLock::new(server),
            journal,
            reader,
            reads: AtomicU64::new(0),
        }
    }
}

/// A cloneable, thread-safe handle to a shard-partitioned
/// [`AuthenticationServer`], generic over the per-shard sketch index
/// (any [`EpochRead`] index; the epoch engine [`EpochIndex`] by
/// default).
pub struct SharedServer<I: EpochRead = EpochIndex> {
    shards: Arc<Vec<Shard<I>>>,
    params: SystemParams,
}

impl<I: EpochRead> fmt::Debug for SharedServer<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedServer")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl<I: EpochRead> Clone for SharedServer<I> {
    fn clone(&self) -> Self {
        SharedServer {
            shards: Arc::clone(&self.shards),
            params: self.params.clone(),
        }
    }
}

/// Stable (process-independent) FNV-1a hash for shard routing.
fn route_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SharedServer<EpochIndex> {
    /// Creates a shared server with a single epoch-index shard — the
    /// default configuration.
    pub fn new(params: SystemParams) -> Self {
        Self::with_shards(params, 1)
    }
}

impl<I: BuildIndex + EpochRead> SharedServer<I> {
    /// Creates a shared server partitioned into `shards` independent
    /// [`AuthenticationServer`]s, each with an index built from
    /// `params` (see [`BuildIndex`]).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(params: SystemParams, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one server shard");
        let stride = shards as u64;
        let shards = (0..shards)
            .map(|i| {
                let mut server = AuthenticationServer::<I>::from_params(params.clone());
                server.set_session_namespace(i as u64 + 1, stride);
                Shard::from_server(server)
            })
            .collect();
        SharedServer {
            shards: Arc::new(shards),
            params,
        }
    }

    /// The on-disk subdirectory holding shard `i`'s journal + snapshot.
    fn shard_dir(dir: &Path, i: usize) -> std::path::PathBuf {
        dir.join(format!("shard-{i:03}"))
    }

    /// File recording the shard count the store was created with. It is
    /// committed (tmp + rename) *before* any shard store is opened, so a
    /// crash mid-initialization can never leave an ambiguous topology —
    /// and a lost shard subdirectory is detected instead of silently
    /// shrinking the count.
    const SHARDS_META: &'static str = "shards.meta";

    /// Reads the committed shard count, if the store was initialized.
    fn stored_shard_count(dir: &Path) -> Result<Option<usize>, ProtocolError> {
        match std::fs::read_to_string(dir.join(Self::SHARDS_META)) {
            Ok(s) => s
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Some)
                .ok_or_else(|| {
                    ProtocolError::Storage(format!(
                        "corrupt {} in {}",
                        Self::SHARDS_META,
                        dir.display()
                    ))
                }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ProtocolError::Storage(format!(
                "read {}: {e}",
                Self::SHARDS_META
            ))),
        }
    }

    /// Atomically commits the shard count (tmp + rename).
    fn commit_shard_count(dir: &Path, shards: usize) -> Result<(), ProtocolError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ProtocolError::Storage(format!("create store dir: {e}")))?;
        let tmp = dir.join(format!("{}.tmp", Self::SHARDS_META));
        std::fs::write(&tmp, format!("{shards}\n"))
            .map_err(|e| ProtocolError::Storage(format!("write {}: {e}", Self::SHARDS_META)))?;
        std::fs::rename(&tmp, dir.join(Self::SHARDS_META))
            .map_err(|e| ProtocolError::Storage(format!("commit {}: {e}", Self::SHARDS_META)))?;
        Ok(())
    }

    /// Opens (or creates) a **durable** shared server at `dir`: one
    /// `shard-NNN/` store per server shard, each an append-only journal
    /// plus compacted snapshots (see [`crate::store::FileStore`]).
    /// Every shard replays its own snapshot + journal tail (using the
    /// sealed-segment cache when one rides along), rebuilding the full
    /// sharded index; enroll/revoke are journaled from then on — with
    /// the journal held outside the state lock, so appends and fsyncs
    /// never stall a reader.
    ///
    /// User → shard routing is a stable hash of the id modulo the shard
    /// count, so the on-disk layout is only meaningful for the count it
    /// was written with: reopening with a different `shards` value is
    /// refused ([`ProtocolError::Storage`]). Use
    /// [`SharedServer::recover`] to adopt whatever count the directory
    /// already holds.
    ///
    /// ```rust
    /// use fe_core::EpochIndex;
    /// use fe_protocol::concurrent::SharedServer;
    /// use fe_protocol::{BiometricDevice, SystemParams};
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let dir = std::env::temp_dir().join(format!("fe-durable-doc-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let params = SystemParams::insecure_test_defaults();
    /// let device = BiometricDevice::new(params.clone());
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    ///
    /// // Lifetime 1: enroll against a 2-shard durable server, then crash.
    /// let server = SharedServer::<EpochIndex>::durable(params.clone(), 2, &dir)?;
    /// let bio = params.sketch().line().random_vector(16, &mut rng);
    /// server.enroll(device.enroll("alice", &bio, &mut rng)?)?;
    /// drop(server);
    ///
    /// // Lifetime 2: recover() adopts the stored shard count and replays.
    /// let server = SharedServer::<EpochIndex>::recover(params.clone(), &dir)?;
    /// assert_eq!((server.num_shards(), server.user_count()), (2, 1));
    /// # std::fs::remove_dir_all(&dir)?;
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] / [`ProtocolError::Codec`] on
    /// unreadable, foreign, or mis-sharded stores.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn durable(
        params: SystemParams,
        shards: usize,
        dir: impl AsRef<Path>,
    ) -> Result<Self, ProtocolError> {
        assert!(shards >= 1, "need at least one server shard");
        let dir = dir.as_ref();
        match Self::stored_shard_count(dir)? {
            Some(existing) if existing != shards => {
                return Err(ProtocolError::Storage(format!(
                    "store at {} was written with {existing} shard(s), cannot open with {shards} \
                     (user→shard routing would change; use SharedServer::recover to adopt the \
                     stored count)",
                    dir.display()
                )));
            }
            Some(_) => {
                // The meta file is only committed after every shard
                // store exists, so a missing journal now means shard
                // data was *lost* — refuse rather than silently
                // recreate the shard empty (a third of the population
                // vanishing on recovery must not look like success).
                for i in 0..shards {
                    let journal = Self::shard_dir(dir, i).join("journal.fel");
                    if !journal.is_file() {
                        return Err(ProtocolError::Storage(format!(
                            "shard store {} is missing (its journal {} does not exist); \
                             refusing to recreate it empty — restore the shard directory \
                             from backup or remove {} to start over",
                            i,
                            journal.display(),
                            dir.display()
                        )));
                    }
                }
            }
            // Fresh store: create every shard journal (header only)
            // first, then commit the topology. After a crash at any
            // point, either the meta is absent (retry re-runs this
            // fresh path; existing header-only journals are adopted) or
            // the meta exists and every shard journal is guaranteed on
            // disk.
            None => {
                let fingerprint = params.fingerprint();
                for i in 0..shards {
                    let shard_dir = Self::shard_dir(dir, i);
                    std::fs::create_dir_all(&shard_dir)
                        .map_err(|e| ProtocolError::Storage(format!("create shard dir: {e}")))?;
                    let journal = shard_dir.join("journal.fel");
                    if !journal.exists() {
                        let mut header = fe_core::codec::Writer::new();
                        header.put_header(fe_core::codec::ArtifactKind::Journal, &fingerprint);
                        std::fs::write(&journal, header.as_slice()).map_err(|e| {
                            ProtocolError::Storage(format!("create shard journal: {e}"))
                        })?;
                    }
                }
                Self::commit_shard_count(dir, shards)?;
            }
        }
        let stride = shards as u64;
        let shards = (0..shards)
            .map(|i| {
                let mut server =
                    AuthenticationServer::<I>::recover(params.clone(), Self::shard_dir(dir, i))?;
                server.set_session_namespace(i as u64 + 1, stride);
                Ok(Shard::from_server(server))
            })
            .collect::<Result<Vec<_>, ProtocolError>>()?;
        Ok(SharedServer {
            shards: Arc::new(shards),
            params,
        })
    }

    /// Recovers a durable shared server from `dir`, adopting the shard
    /// count the store was written with — the "restart after crash"
    /// entry point. Equivalent to [`SharedServer::durable`] with the
    /// discovered count.
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] when `dir` holds no shard stores;
    /// otherwise as [`SharedServer::durable`].
    pub fn recover(params: SystemParams, dir: impl AsRef<Path>) -> Result<Self, ProtocolError> {
        let dir = dir.as_ref();
        let shards = Self::stored_shard_count(dir)?.ok_or_else(|| {
            ProtocolError::Storage(format!("no shard store found under {}", dir.display()))
        })?;
        Self::durable(params, shards, dir)
    }
}

impl<I: EpochRead> SharedServer<I> {
    /// The system parameters (lock-free).
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Number of server shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_index_for_user(&self, id: &str) -> usize {
        (route_hash(id) % self.shards.len() as u64) as usize
    }

    fn shard_for_user(&self, id: &str) -> &Shard<I> {
        &self.shards[self.shard_index_for_user(id)]
    }

    fn shard_for_session(&self, session: SessionId) -> &Shard<I> {
        // Shard i issues sessions ≡ i + 1 (mod N); session 0 never
        // occurs but would harmlessly map to some shard and then fail
        // with `UnknownSession`.
        &self.shards[((session.wrapping_sub(1)) % self.shards.len() as u64) as usize]
    }

    /// The write sequence for one shard, journal-outside-lock: the
    /// journal mutex serializes this shard's writers end to end, the
    /// append (with any fsync) runs under **no state lock**, and only
    /// the in-memory apply takes the write lock. Readers on the
    /// lock-free path never wait; even read-locked helpers never sit
    /// behind disk I/O.
    fn shard_enroll(
        &self,
        shard: &Shard<I>,
        record: EnrollmentRecord,
    ) -> Result<(), ProtocolError> {
        let Some(journal) = &shard.journal else {
            // No journal: the plain server path (which also has no
            // store attached) under the write lock.
            return shard.state.write().enroll(record);
        };
        let mut store = journal.lock();
        shard.state.read().validate_enroll(&record)?;
        store.append(LogEventRef::Enroll(&record))?;
        shard.state.write().apply_enroll(record);
        Ok(())
    }

    /// [`SharedServer::shard_enroll`] with the home shard's duplicate-
    /// biometric check (see [`AuthenticationServer::enroll_unique`]),
    /// journal-outside-lock.
    fn shard_enroll_unique(
        &self,
        shard: &Shard<I>,
        record: EnrollmentRecord,
    ) -> Result<(), ProtocolError> {
        let Some(journal) = &shard.journal else {
            return shard.state.write().enroll_unique(record);
        };
        let mut store = journal.lock();
        {
            let server = shard.state.read();
            server.validate_enroll(&record)?;
            if let Some(&idx) = server.match_at_most(&record.helper.sketch.inner, 1).first() {
                let matched = server
                    .user_at(idx)
                    .expect("matched slots are live")
                    .to_string();
                drop(server);
                // Audit trail: the refusal is journaled (outside the
                // state lock), exactly as the single-server path does.
                store.append(LogEventRef::EnrollRejected {
                    id: &record.id,
                    matched: &matched,
                })?;
                return Err(ProtocolError::DuplicateBiometric(matched));
            }
        }
        store.append(LogEventRef::Enroll(&record))?;
        shard.state.write().apply_enroll(record);
        Ok(())
    }

    /// Enrolls a record (journal append outside the state lock; the
    /// write lock of exactly one shard, briefly, for the in-memory
    /// apply).
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::enroll`].
    pub fn enroll(&self, record: EnrollmentRecord) -> Result<(), ProtocolError> {
        if self.params.dedup_policy() == DedupPolicy::RejectMatching {
            return self.enroll_unique(record);
        }
        self.shard_enroll(self.shard_for_user(&record.id), record)
    }

    /// Revokes a user (journal append outside the state lock; one
    /// shard's write lock, briefly, for the in-memory apply).
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::revoke`].
    pub fn revoke(&self, id: &str) -> Result<(), ProtocolError> {
        let shard = self.shard_for_user(id);
        let Some(journal) = &shard.journal else {
            return shard.state.write().revoke(id);
        };
        let mut store = journal.lock();
        if !shard.state.read().is_enrolled(id) {
            return Err(ProtocolError::UnknownUser(id.to_string()));
        }
        store.append(LogEventRef::Revoke(id))?;
        assert!(
            shard.state.write().apply_revoke(id),
            "validated id must be revocable"
        );
        Ok(())
    }

    /// Lock-free find-first on `shard`, resolved to the matched user id
    /// under a brief generation-checked read lock. `None` when nothing
    /// (still) matches.
    fn resolve_first_match(&self, shard: &Shard<I>, probe: &[i64]) -> Option<String> {
        loop {
            let generation = shard.reader.generation();
            shard.reads.fetch_add(1, Ordering::Relaxed);
            let hit = shard.reader.find_first(probe)?;
            let server = shard.state.read();
            if server.index_generation() != generation {
                continue; // renumbered mid-scan: the slot is suspect
            }
            match server.user_at(hit) {
                Some(id) => return Some(id.to_string()),
                // Revoked in the window; the tombstone is already
                // published, so the rescan sees a smaller match set.
                None => continue,
            }
        }
    }

    /// Uniqueness-checked enrollment across the whole partitioned
    /// population: the non-home shards are swept **lock-free**
    /// (find-at-most-1 on each shard's reader), then the record's home
    /// shard runs the duplicate check + insert under its journal mutex
    /// — so only the home shard's check is atomic with the insert. A
    /// matching record enrolled on *another* shard in the window
    /// between the sweep and the home-shard insert can slip through;
    /// like the multi-match anomaly documented on
    /// [`SharedServer::begin_identification`], the false-close bound
    /// makes this a rarity partitioned deployments accept. Cross-shard
    /// refusals are not journaled (no shard owns them); home-shard
    /// refusals are journaled as usual.
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::enroll_unique`].
    pub fn enroll_unique(&self, record: EnrollmentRecord) -> Result<(), ProtocolError> {
        let home = self.shard_index_for_user(&record.id);
        for (i, shard) in self.shards.iter().enumerate() {
            if i == home {
                continue;
            }
            if let Some(matched) = self.resolve_first_match(shard, &record.helper.sketch.inner) {
                return Err(ProtocolError::DuplicateBiometric(matched));
            }
        }
        self.shard_enroll_unique(&self.shards[home], record)
    }

    /// Reset / account-recovery lookup across all shards: succeeds only
    /// when **exactly one** enrolled record in the whole population
    /// matches the probe. Each shard contributes a **lock-free**
    /// find-at-most-2 sweep on its reader; matched slots are resolved
    /// to user ids under a brief generation-checked read lock, and the
    /// scan stops at the first shard that pushes the global tally past
    /// one.
    ///
    /// # Errors
    /// [`ProtocolError::NoMatch`] / [`ProtocolError::AmbiguousMatch`] as
    /// [`AuthenticationServer::reset`].
    pub fn reset(&self, probe: &[i64]) -> Result<crate::messages::UserId, ProtocolError> {
        let mut found: Option<crate::messages::UserId> = None;
        for shard in self.shards.iter() {
            loop {
                let generation = shard.reader.generation();
                shard.reads.fetch_add(1, Ordering::Relaxed);
                let hits = shard.reader.find_at_most(probe, 2);
                if hits.is_empty() {
                    break;
                }
                let server = shard.state.read();
                if server.index_generation() != generation {
                    continue; // renumbered mid-scan: rescan this shard
                }
                for idx in hits {
                    // Slots revoked in the scan→lock window resolve to
                    // None and simply no longer count as matches.
                    let Some(id) = server.user_at(idx) else {
                        continue;
                    };
                    if found.is_some() {
                        return Err(ProtocolError::AmbiguousMatch);
                    }
                    found = Some(id.to_string());
                }
                break;
            }
        }
        found.ok_or(ProtocolError::NoMatch)
    }

    /// Targeted sketch check against a claimed identity, routed straight
    /// to the user's shard (read lock; no cross-shard search — the O(1)
    /// subset probe is not worth a generation-checked round trip).
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::authenticate_claimed`].
    pub fn authenticate_claimed(
        &self,
        claimed_id: &str,
        probe: &[i64],
    ) -> Result<bool, ProtocolError> {
        self.shard_for_user(claimed_id)
            .state
            .read()
            .authenticate_claimed(claimed_id, probe)
    }

    /// Subset uniqueness check: `Ok(true)` when the probe matches none
    /// of the listed users' records. Ids are grouped by home shard;
    /// each shard maps them to record slots under a brief read lock
    /// (erroring deterministically on unknown ids), then runs the
    /// masked find-at-most-1 sweep **lock-free** on its reader,
    /// rescanning if the generation moved mid-flight. Every listed id
    /// is validated even after a match is found, so an unknown id fails
    /// regardless of subset order.
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::check_local_uniqueness`].
    pub fn check_local_uniqueness(
        &self,
        probe: &[i64],
        ids: &[crate::messages::UserId],
    ) -> Result<bool, ProtocolError> {
        let n = self.shards.len() as u64;
        let mut by_shard: Vec<Vec<&str>> = vec![Vec::new(); self.shards.len()];
        for id in ids {
            by_shard[(route_hash(id) % n) as usize].push(id.as_str());
        }
        let mut unique = true;
        for (shard, subset) in self.shards.iter().zip(&by_shard) {
            if subset.is_empty() {
                continue;
            }
            loop {
                // Map ids → slots under the read lock (no scan there);
                // the generation captured inside the lock is what the
                // slots are valid against.
                let (generation, slots) = {
                    let server = shard.state.read();
                    let mut slots = Vec::with_capacity(subset.len());
                    for id in subset {
                        match server.slot_of(id) {
                            Some(slot) => slots.push(slot),
                            None => return Err(ProtocolError::UnknownUser((*id).to_string())),
                        }
                    }
                    (server.index_generation(), slots)
                };
                shard.reads.fetch_add(1, Ordering::Relaxed);
                if !shard.reader.find_in_subset(probe, &slots, 1).is_empty() {
                    unique = false;
                }
                // The scan ran without the lock: if the numbering moved
                // while it ran, the slots (and any hit) are suspect —
                // remap and rescan.
                if shard.reader.generation() == generation {
                    break;
                }
            }
        }
        Ok(unique)
    }

    /// Identification phase 1: the sketch lookup runs **lock-free** on
    /// each shard's reader; only the matched shard is write-locked,
    /// briefly, to issue the challenge (generation-checked, see the
    /// module docs).
    ///
    /// With more than one shard, *which* record wins when several
    /// enrolled users match the same probe (a false-close or duplicate
    /// enrollment) is earliest-enrolled **within the first matching
    /// shard in routing order** — deterministic, but not necessarily
    /// the globally earliest enrollment as on a single shard. Matching
    /// more than one user is already a protocol-level anomaly (the
    /// paper's false-close probability bounds it), so partitioned
    /// deployments accept this in exchange for not maintaining a global
    /// enrollment order across shards.
    ///
    /// # Errors
    /// [`ProtocolError::NoMatch`] when no shard holds a matching record.
    pub fn begin_identification<R: RngCore + ?Sized>(
        &self,
        probe: &[i64],
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        for shard in self.shards.iter() {
            // Scan→lock window: the matched record can be revoked (or
            // the numbering compacted) between the lock-free lookup
            // and the exclusive-lock challenge issue;
            // `challenge_for_record` re-validates liveness, the
            // generation check catches renumbering, and we then
            // *re-search this shard* — another live record may still
            // match. Progress is guaranteed for revocations: a refused
            // record's tombstone was published before our write lock
            // was acquired, so each retry sees a strictly smaller
            // candidate set.
            loop {
                let generation = shard.reader.generation();
                shard.reads.fetch_add(1, Ordering::Relaxed);
                let Some(record_idx) = shard.reader.find_first(probe) else {
                    break;
                };
                let mut server = shard.state.write();
                if server.index_generation() != generation {
                    continue;
                }
                if let Some(chal) = server.challenge_for_record(record_idx, rng) {
                    return Ok(chal);
                }
            }
        }
        Err(ProtocolError::NoMatch)
    }

    /// Batch identification phase 1: resolves many probes per snapshot
    /// sweep, entirely **lock-free** on the scan side. Every shard sees
    /// its whole remaining workload through the reader's batch path —
    /// one snapshot load and (for arena-backed indexes) **one pass over
    /// the shard's storage for the entire batch**, the multi-query
    /// kernel the request scheduler is built on; the first shard scans
    /// the caller's slice directly, later shards scan only the probes
    /// the earlier ones missed. Each shard with matches is write-locked
    /// once per round to issue its challenges (generation-checked).
    /// Results are position-aligned with `probes`.
    ///
    /// Cross-shard match selection follows the same routing-order rule
    /// as [`SharedServer::begin_identification`].
    pub fn identify_batch<R: RngCore + ?Sized>(
        &self,
        probes: &[Vec<i64>],
        rng: &mut R,
    ) -> Vec<Result<IdentChallenge, ProtocolError>> {
        let mut results: Vec<Result<IdentChallenge, ProtocolError>> = (0..probes.len())
            .map(|_| Err(ProtocolError::NoMatch))
            .collect();
        // Probes still unresolved after the shards visited so far.
        let mut unresolved: Vec<usize> = (0..probes.len()).collect();
        // The unresolved-subset buffer is hoisted out of the shard loop
        // and refilled with `clone_from`, so later shards reuse both
        // the outer table and the per-probe coordinate allocations
        // instead of building a fresh `Vec<Vec<i64>>` per shard.
        let mut subset: Vec<Vec<i64>> = Vec::new();

        for shard in self.shards.iter() {
            if unresolved.is_empty() {
                break;
            }
            // Re-search the shard until a round issues every challenge
            // it found (a record revoked in the scan→lock window is
            // re-resolved against this shard's remaining records, as in
            // `begin_identification`; a generation change rescans the
            // same workload). Retry rounds only re-check the *refused*
            // probes: a probe that missed this shard cannot newly match
            // it — removals only shrink the match set.
            let mut retry: Option<Vec<usize>> = None;
            loop {
                let generation = shard.reader.generation();
                shard.reads.fetch_add(1, Ordering::Relaxed);
                let hits: Vec<(usize, usize)> = match &retry {
                    None if unresolved.len() == probes.len() => {
                        // Whole batch untouched: use the reader's batch
                        // path directly on the caller's slice.
                        shard
                            .reader
                            .find_first_batch(probes)
                            .into_iter()
                            .enumerate()
                            .filter_map(|(p, m)| m.map(|idx| (p, idx)))
                            .collect()
                    }
                    None => {
                        // Later shards get the batch path too: the
                        // unresolved subset is gathered so the shard's
                        // storage is swept once for all of it, not once
                        // per probe (in the reused scratch table
                        // declared above).
                        subset.truncate(unresolved.len());
                        for (slot, &p) in subset.iter_mut().zip(unresolved.iter()) {
                            slot.clone_from(&probes[p]);
                        }
                        for &p in unresolved.iter().skip(subset.len()) {
                            subset.push(probes[p].clone());
                        }
                        shard
                            .reader
                            .find_first_batch(&subset)
                            .into_iter()
                            .zip(unresolved.iter())
                            .filter_map(|(m, &p)| m.map(|idx| (p, idx)))
                            .collect()
                    }
                    // Refusals come from revocation races — rare
                    // enough that the retry round stays per-probe.
                    Some(refused) => refused
                        .iter()
                        .filter_map(|&p| shard.reader.find_first(&probes[p]).map(|idx| (p, idx)))
                        .collect(),
                };
                if hits.is_empty() {
                    break;
                }
                // One exclusive-lock acquisition issues every challenge
                // this shard owes the batch this round.
                let mut refused = Vec::new();
                let mut server = shard.state.write();
                if server.index_generation() != generation {
                    continue; // renumbered mid-scan: every hit is suspect
                }
                for (p, record_idx) in hits {
                    match server.challenge_for_record(record_idx, rng) {
                        Some(chal) => results[p] = Ok(chal),
                        None => refused.push(p),
                    }
                }
                drop(server);
                unresolved.retain(|&p| results[p].is_err());
                // Another round is only needed when a found record was
                // revoked in the scan→lock window.
                if refused.is_empty() || unresolved.is_empty() {
                    break;
                }
                retry = Some(refused);
            }
        }
        results
    }

    /// Verification phase 1 (claimed identity): routes to the user's
    /// shard directly — no cross-shard search.
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::begin_verification`].
    pub fn begin_verification<R: RngCore + ?Sized>(
        &self,
        claimed_id: &str,
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        self.shard_for_user(claimed_id)
            .state
            .write()
            .begin_verification(claimed_id, rng)
    }

    /// Phase 2: verify the response, routed to the issuing shard by the
    /// session-id namespace.
    ///
    /// # Errors
    /// Same as [`AuthenticationServer::finish_identification`].
    pub fn finish_identification(
        &self,
        response: &IdentResponse,
    ) -> Result<IdentOutcome, ProtocolError> {
        self.shard_for_session(response.session)
            .state
            .write()
            .finish_identification(response)
    }

    /// Cancels an outstanding challenge (timeout handling), routed to
    /// the issuing shard by the session-id namespace.
    pub fn cancel_session(&self, session: SessionId) -> bool {
        self.shard_for_session(session)
            .state
            .write()
            .cancel_session(session)
    }

    /// Checkpoints every shard: compacts tombstones in memory and (for
    /// durable servers) writes a fresh snapshot — with the sealed-
    /// segment cache riding along — and truncates each shard's journal.
    /// Shards are checkpointed one at a time, each under its journal
    /// mutex + write lock, so the server keeps serving on the other
    /// `N − 1` shards (and lock-free reads on *this* shard keep
    /// matching against the last published snapshot) while each
    /// snapshot is written. Returns the total record slots reclaimed.
    ///
    /// # Errors
    /// Fails on the first shard whose snapshot cannot be written
    /// ([`ProtocolError::Storage`]); earlier shards keep their new
    /// checkpoints, later shards keep their old ones — both states
    /// recover correctly.
    pub fn checkpoint(&self) -> Result<usize, ProtocolError> {
        let mut reclaimed = 0;
        for shard in self.shards.iter() {
            reclaimed += match &shard.journal {
                Some(journal) => {
                    let mut store = journal.lock();
                    shard.state.write().checkpoint_into(&mut **store)?
                }
                None => shard.state.write().checkpoint()?,
            };
        }
        Ok(reclaimed)
    }

    /// Journal events accumulated across shards since their last
    /// checkpoints (the replay debt a recovery would pay).
    pub fn journal_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.journal.as_ref().map_or(0, |j| j.lock().journal_len()))
            .sum()
    }

    /// Number of enrolled users across all shards.
    pub fn user_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.read().user_count())
            .sum()
    }

    /// Total sketch lookups served across all shards (diagnostics):
    /// lock-free reader sweeps plus the state-locked helpers' own
    /// counts.
    pub fn lookup_count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.state.read().lookup_count() + s.reads.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BiometricDevice;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn enroll_population<I: EpochRead>(
        server: &SharedServer<I>,
        device: &BiometricDevice,
        users: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<i64>> {
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = server.params().sketch().line().random_vector(dim, rng);
            server
                .enroll(device.enroll(&format!("user-{u}"), &bio, rng).unwrap())
                .unwrap();
            bios.push(bio);
        }
        bios
    }

    fn identification_storm<I: EpochRead + Send + Sync>(server: SharedServer<I>) {
        let params = server.params().clone();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(808);
        let users = 8usize;
        let bios = enroll_population(&server, &device, users, 32, &mut rng);
        assert_eq!(server.user_count(), users);

        crossbeam::scope(|scope| {
            for (u, bio) in bios.iter().enumerate() {
                let server = server.clone();
                let device = device.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(9_000 + u as u64);
                    let reading: Vec<i64> = bio
                        .iter()
                        .map(|&x| x + rng.gen_range(-80i64..=80))
                        .collect();
                    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                    let chal = server.begin_identification(&probe, &mut rng).unwrap();
                    let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                    let outcome = server.finish_identification(&resp).unwrap();
                    assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                });
            }
        })
        .expect("threads must not panic");
    }

    #[test]
    fn concurrent_identifications_single_shard() {
        identification_storm(SharedServer::new(SystemParams::insecure_test_defaults()));
    }

    #[test]
    fn concurrent_identifications_four_shards() {
        identification_storm(SharedServer::<EpochIndex>::with_shards(
            SystemParams::insecure_test_defaults(),
            4,
        ));
    }

    #[test]
    fn concurrent_enrollments_all_land() {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 3);
        let device = BiometricDevice::new(params.clone());

        crossbeam::scope(|scope| {
            for u in 0..16 {
                let server = server.clone();
                let device = device.clone();
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(42 + u as u64);
                    let bio = device.params().sketch().line().random_vector(16, &mut rng);
                    server
                        .enroll(device.enroll(&format!("c-{u}"), &bio, &mut rng).unwrap())
                        .unwrap();
                });
            }
        })
        .expect("threads must not panic");
        assert_eq!(server.user_count(), 16);
    }

    #[test]
    fn batch_identification_resolves_whole_queue() {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 4);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(4_242);
        let bios = enroll_population(&server, &device, 10, 32, &mut rng);

        let mut readings = Vec::new();
        let mut probes = Vec::new();
        for bio in &bios {
            let reading: Vec<i64> = bio
                .iter()
                .map(|&x| x + rng.gen_range(-80i64..=80))
                .collect();
            probes.push(device.probe_sketch(&reading, &mut rng).unwrap());
            readings.push(reading);
        }
        // Two impostors interleaved with the genuine queue.
        let stranger = params.sketch().line().random_vector(32, &mut rng);
        probes.push(device.probe_sketch(&stranger, &mut rng).unwrap());

        let results = server.identify_batch(&probes, &mut rng);
        assert_eq!(results.len(), 11);
        assert!(matches!(results[10], Err(ProtocolError::NoMatch)));
        // Session ids are unique across shard namespaces…
        let mut sessions: Vec<SessionId> = results[..10]
            .iter()
            .map(|r| r.as_ref().unwrap().session)
            .collect();
        sessions.sort_unstable();
        sessions.dedup();
        assert_eq!(sessions.len(), 10);
        // …and every challenge resolves to the right user.
        for (u, result) in results[..10].iter().enumerate() {
            let chal = result.as_ref().unwrap();
            let resp = device.respond(&readings[u], chal, &mut rng).unwrap();
            let outcome = server.finish_identification(&resp).unwrap();
            assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
        }
    }

    #[test]
    fn cancel_session_routes_across_shards() {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 3);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(6_100);
        let bios = enroll_population(&server, &device, 6, 32, &mut rng);

        for (u, bio) in bios.iter().enumerate() {
            let reading: Vec<i64> = bio.iter().map(|&x| x + 20).collect();
            let probe = device.probe_sketch(&reading, &mut rng).unwrap();
            let chal = server.begin_identification(&probe, &mut rng).unwrap();
            assert!(server.cancel_session(chal.session), "user {u}");
            let resp = device.respond(&reading, &chal, &mut rng).unwrap();
            assert!(matches!(
                server.finish_identification(&resp),
                Err(ProtocolError::UnknownSession)
            ));
        }
        assert!(!server.cancel_session(0), "session 0 is never issued");
    }

    #[test]
    fn durable_shared_server_survives_crash_and_adopts_shard_count() {
        let dir = std::env::temp_dir().join(format!("fe-shared-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(7_700);

        let server = SharedServer::<EpochIndex>::durable(params.clone(), 3, &dir).unwrap();
        let bios = enroll_population(&server, &device, 8, 32, &mut rng);
        server.revoke("user-3").unwrap();
        server.revoke("user-6").unwrap();
        assert_eq!(server.journal_len(), 10);
        drop(server); // crash without checkpoint

        // Reopening with the wrong shard count is refused…
        assert!(matches!(
            SharedServer::<EpochIndex>::durable(params.clone(), 5, &dir),
            Err(ProtocolError::Storage(_))
        ));
        // …while recover() discovers the stored count.
        let server = SharedServer::<EpochIndex>::recover(params.clone(), &dir).unwrap();
        assert_eq!(server.num_shards(), 3);
        assert_eq!(server.user_count(), 6);

        for (u, bio) in bios.iter().enumerate() {
            let reading: Vec<i64> = bio.iter().map(|&x| x + 31).collect();
            let probe = device.probe_sketch(&reading, &mut rng).unwrap();
            if u == 3 || u == 6 {
                assert!(matches!(
                    server.begin_identification(&probe, &mut rng),
                    Err(ProtocolError::NoMatch)
                ));
                continue;
            }
            let chal = server.begin_identification(&probe, &mut rng).unwrap();
            let resp = device.respond(&reading, &chal, &mut rng).unwrap();
            assert_eq!(
                server.finish_identification(&resp).unwrap().identity(),
                Some(format!("user-{u}").as_str())
            );
        }

        // Checkpoint compacts every shard's journal; recovery after it
        // still serves the same population.
        server.checkpoint().unwrap();
        assert_eq!(server.journal_len(), 0);
        drop(server);
        let server = SharedServer::<EpochIndex>::recover(params.clone(), &dir).unwrap();
        assert_eq!(server.user_count(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_enroll_unique_journals_refusals_outside_lock() {
        let dir = std::env::temp_dir().join(format!("fe-shared-uniq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(7_900);

        let server = SharedServer::<EpochIndex>::durable(params.clone(), 2, &dir).unwrap();
        let bios = enroll_population(&server, &device, 4, 32, &mut rng);
        // A re-enrollment of user-1's biometric under a fresh id is
        // refused and the refusal is journaled on the home shard.
        let noisy: Vec<i64> = bios[1].iter().map(|&x| x + 40).collect();
        let dup = device.enroll("impostor", &noisy, &mut rng).unwrap();
        assert_eq!(
            server.enroll_unique(dup).unwrap_err(),
            ProtocolError::DuplicateBiometric("user-1".into())
        );
        let journaled = server.journal_len();
        assert!(
            journaled >= 5,
            "4 enrolls + the audit event, got {journaled}"
        );
        drop(server);
        // The refusal replays as a no-op: same population after crash.
        let server = SharedServer::<EpochIndex>::recover(params, &dir).unwrap();
        assert_eq!(server.user_count(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_refuses_when_a_shard_store_is_lost() {
        let dir = std::env::temp_dir().join(format!("fe-shared-lost-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::durable(params.clone(), 3, &dir).unwrap();
        drop(server);
        // Lose one shard's data (bad rsync, disk repair, stray rm).
        std::fs::remove_dir_all(dir.join("shard-001")).unwrap();
        // Recovery must refuse instead of silently serving a population
        // with a third of the users gone.
        match SharedServer::<EpochIndex>::recover(params, &dir) {
            Err(ProtocolError::Storage(msg)) => assert!(msg.contains("missing"), "{msg}"),
            other => panic!("expected missing-shard refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_refuses_empty_directory() {
        let dir = std::env::temp_dir().join(format!("fe-shared-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            SharedServer::<EpochIndex>::recover(SystemParams::insecure_test_defaults(), &dir),
            Err(ProtocolError::Storage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn matching_modes_work_across_shards() {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 3);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(12_000);
        let bios = enroll_population(&server, &device, 6, 32, &mut rng);

        // enroll_unique: the duplicate lives on whatever shard "user-2"
        // hashed to; a re-enrollment under a fresh id (hence possibly a
        // different home shard) must still be caught.
        let noisy2: Vec<i64> = bios[2].iter().map(|&x| x + 60).collect();
        let dup = device.enroll("impostor", &noisy2, &mut rng).unwrap();
        assert_eq!(
            server.enroll_unique(dup).unwrap_err(),
            ProtocolError::DuplicateBiometric("user-2".into())
        );
        let fresh = params.sketch().line().random_vector(32, &mut rng);
        server
            .enroll_unique(device.enroll("newbie", &fresh, &mut rng).unwrap())
            .unwrap();
        assert_eq!(server.user_count(), 7);

        // reset: exactly-one across the partition.
        let probe = device.probe_sketch(&noisy2, &mut rng).unwrap();
        assert_eq!(server.reset(&probe).unwrap(), "user-2");
        let stranger = params.sketch().line().random_vector(32, &mut rng);
        let miss = device.probe_sketch(&stranger, &mut rng).unwrap();
        assert_eq!(server.reset(&miss).unwrap_err(), ProtocolError::NoMatch);
        // A cross-shard duplicate (enrolled via plain permissive enroll)
        // turns reset ambiguous even when the two matches live on
        // different shards.
        server
            .enroll(device.enroll("user-2-dup", &noisy2, &mut rng).unwrap())
            .unwrap();
        let probe = device.probe_sketch(&bios[2], &mut rng).unwrap();
        assert_eq!(
            server.reset(&probe).unwrap_err(),
            ProtocolError::AmbiguousMatch
        );

        // authenticate_claimed: routed, targeted.
        let probe4 = device
            .probe_sketch(
                &bios[4].iter().map(|&x| x - 30).collect::<Vec<_>>(),
                &mut rng,
            )
            .unwrap();
        assert!(server.authenticate_claimed("user-4", &probe4).unwrap());
        assert!(!server.authenticate_claimed("user-0", &probe4).unwrap());
        assert!(matches!(
            server.authenticate_claimed("nobody", &probe4),
            Err(ProtocolError::UnknownUser(_))
        ));

        // check_local_uniqueness: subset spanning all three shards.
        let others: Vec<_> = vec!["user-0".into(), "user-1".into(), "user-3".into()];
        assert!(server.check_local_uniqueness(&probe4, &others).unwrap());
        let with4: Vec<_> = vec!["user-0".into(), "user-4".into()];
        assert!(!server.check_local_uniqueness(&probe4, &with4).unwrap());
        assert!(matches!(
            server.check_local_uniqueness(&probe4, &["ghost".into()]),
            Err(ProtocolError::UnknownUser(_))
        ));
    }

    #[test]
    fn revocation_routes_to_the_right_shard() {
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 3);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(5_100);
        let bios = enroll_population(&server, &device, 6, 32, &mut rng);

        server.revoke("user-2").unwrap();
        assert_eq!(server.user_count(), 5);
        assert!(server.revoke("user-2").is_err());

        let reading: Vec<i64> = bios[2].iter().map(|&x| x + 10).collect();
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        assert!(matches!(
            server.begin_identification(&probe, &mut rng),
            Err(ProtocolError::NoMatch)
        ));
        // Verification-mode also refuses revoked claims.
        assert!(matches!(
            server.begin_verification("user-2", &mut rng),
            Err(ProtocolError::UnknownUser(_))
        ));
        // Everyone else still identifies.
        let reading: Vec<i64> = bios[4].iter().map(|&x| x - 25).collect();
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap().identity(),
            Some("user-4")
        );
    }

    #[test]
    fn lock_free_reads_survive_concurrent_churn() {
        // Readers identify continuously while writers enroll and revoke
        // on the same shards — the lock-free path must keep returning
        // consistent results (matched users are genuine, no panics)
        // through head freezes, merges and revocation tombstones.
        let params = SystemParams::insecure_test_defaults();
        let server = SharedServer::<EpochIndex>::with_shards(params.clone(), 2);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(31_000);
        let bios = enroll_population(&server, &device, 6, 32, &mut rng);

        let stop = std::sync::atomic::AtomicBool::new(false);
        crossbeam::scope(|scope| {
            for (u, bio) in bios.iter().enumerate() {
                let server = server.clone();
                let device = device.clone();
                let stop = &stop;
                scope.spawn(move |_| {
                    let mut rng = StdRng::seed_from_u64(32_000 + u as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let reading: Vec<i64> = bio
                            .iter()
                            .map(|&x| x + rng.gen_range(-80i64..=80))
                            .collect();
                        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                        let chal = server.begin_identification(&probe, &mut rng).unwrap();
                        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                        let outcome = server.finish_identification(&resp).unwrap();
                        assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                    }
                });
            }
            // Writer: churn short-lived users through both shards.
            let mut wrng = StdRng::seed_from_u64(33_000);
            for round in 0..20 {
                let bio = params.sketch().line().random_vector(32, &mut wrng);
                let id = format!("churn-{round}");
                server
                    .enroll(device.enroll(&id, &bio, &mut wrng).unwrap())
                    .unwrap();
                server.revoke(&id).unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        })
        .expect("threads must not panic");
        assert_eq!(server.user_count(), 6);
    }
}
