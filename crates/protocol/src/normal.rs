//! The "normal approach" baseline (Fig. 2): fuzzy-extractor
//! identification by exhaustive search.
//!
//! Without the sketch-matching trick, the server cannot tell which record
//! belongs to the presented user, so the device must attempt `Rep` with
//! every stored helper data until one succeeds, answering a per-record
//! challenge — `O(N)` heavy crypto per identification. This module
//! implements that protocol faithfully so Fig. 4 can be regenerated.
//!
//! Two fidelity modes control the per-record `Rec` cost
//! ([`ScanMode`]): the paper's *pseudocode* aborts at the first
//! out-of-threshold coordinate (`EarlyAbort`), while the paper's
//! *measurements* (Python) paid the full n-coordinate pass per record —
//! `Exhaustive` reproduces that cost profile and is the default for the
//! Fig. 4 reproduction.

use crate::messages::{challenge_message, IdentOutcome};
use crate::params::SystemParams;
use crate::server::AuthenticationServer;
use crate::ProtocolError;
use fe_core::{encode_i64_vector, SecureSketch};
use fe_crypto::dsa::DsaSignature;
use fe_crypto::extractor::StrongExtractor;
use fe_crypto::sig::SignatureScheme;
use rand::Rng;
use rand::RngCore;

/// How the device-side `Rec` treats out-of-threshold coordinates during
/// the exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanMode {
    /// Full per-record pass (the paper's measured behaviour; default).
    #[default]
    Exhaustive,
    /// Abort a record at the first failing coordinate (the paper's
    /// pseudocode; much cheaper per non-matching record).
    EarlyAbort,
}

/// Operation counters from one normal-approach identification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NormalStats {
    /// `Rep` executions attempted on the device.
    pub rep_attempts: usize,
    /// Signatures produced by the device.
    pub signatures: usize,
    /// Signature verifications performed by the server.
    pub verifications: usize,
}

/// The exhaustive-search identification protocol.
#[derive(Debug)]
pub struct NormalIdentification {
    params: SystemParams,
    mode: ScanMode,
}

impl NormalIdentification {
    /// Creates the baseline protocol runner (exhaustive scan mode).
    pub fn new(params: SystemParams) -> Self {
        NormalIdentification {
            params,
            mode: ScanMode::Exhaustive,
        }
    }

    /// Selects the per-record `Rec` cost model.
    pub fn with_mode(mut self, mode: ScanMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured scan mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// Runs one full identification: the server hands the device every
    /// record's helper data with a per-record challenge (Fig. 2 sends
    /// `P_i, c_i` for `i = 1..n`); the device tries `Rep` on each until
    /// one reproduces a key whose signature the server accepts.
    ///
    /// Returns the outcome together with the operation counts that make
    /// the `O(N)` cost visible.
    ///
    /// # Errors
    /// Propagates server-side failures (never `NoMatch` — exhaustion is
    /// reported as `Rejected`).
    pub fn identify<R: RngCore + ?Sized, I: fe_core::SketchIndex>(
        &self,
        server: &AuthenticationServer<I>,
        bio: &[i64],
        rng: &mut R,
    ) -> Result<(IdentOutcome, NormalStats), ProtocolError> {
        let fe = self.params.fuzzy_extractor();
        let scheme = *self.params.sketch();
        let robust = fe.sketch_scheme();
        let dsa = self.params.dsa();
        let mut stats = NormalStats::default();
        let mode = self.mode;

        let mut challenge_err: Option<ProtocolError> = None;
        let identified = server.visit_records(|id, stored_vk, helper| {
            // Device side: attempt Rep with this record's helper data.
            stats.rep_attempts += 1;
            let recovered = match mode {
                ScanMode::Exhaustive => scheme.recover_exhaustive(bio, &helper.sketch.inner),
                ScanMode::EarlyAbort => scheme.recover(bio, &helper.sketch.inner),
            };
            let recovered = match recovered {
                Ok(r) => r,
                Err(_) => return None, // wrong record (or too noisy): next
            };
            if !robust.verify_tag(&recovered, &helper.sketch) {
                return None;
            }
            let key = fe
                .extractor()
                .extract(&encode_i64_vector(&recovered), &helper.seed);

            // Challenge-response for this record.
            let challenge: u64 = rng.gen();
            let nonce: u64 = rng.gen();
            let (sk, _vk) = dsa.keypair_from_seed(&key);
            let msg = challenge_message(0, challenge, nonce);
            stats.signatures += 1;
            let signature = dsa.sign(&sk, &msg);
            // Server side: verify against the *stored* public key,
            // round-tripping the signature through its wire encoding.
            let sig_bytes = signature.to_bytes(self.params.dsa_params());
            let parsed = match DsaSignature::from_bytes(&sig_bytes, self.params.dsa_params()) {
                Some(p) => p,
                None => {
                    challenge_err = Some(ProtocolError::Malformed("signature length"));
                    return Some(IdentOutcome::Rejected);
                }
            };
            stats.verifications += 1;
            if dsa.verify(stored_vk, &msg, &parsed) {
                Some(IdentOutcome::Identified(id.clone()))
            } else {
                None
            }
        });
        if let Some(e) = challenge_err {
            return Err(e);
        }
        Ok((identified.unwrap_or(IdentOutcome::Rejected), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BiometricDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(users: usize) -> (AuthenticationServer, Vec<Vec<i64>>, StdRng) {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut server = AuthenticationServer::new(params.clone());
        let mut rng = StdRng::seed_from_u64(31_337 + users as u64);
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(32, &mut rng);
            server
                .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
                .unwrap();
            bios.push(bio);
        }
        (server, bios, rng)
    }

    #[test]
    fn identifies_each_user_in_both_modes() {
        let (server, bios, mut rng) = setup(8);
        for mode in [ScanMode::Exhaustive, ScanMode::EarlyAbort] {
            let normal = NormalIdentification::new(server.params().clone()).with_mode(mode);
            for (u, bio) in bios.iter().enumerate() {
                let reading: Vec<i64> = bio.iter().map(|&x| x + 60).collect();
                let (outcome, stats) = normal.identify(&server, &reading, &mut rng).unwrap();
                assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                // Found at position u+1 → exactly u+1 Rep attempts.
                assert_eq!(stats.rep_attempts, u + 1, "mode {mode:?}");
                assert_eq!(stats.signatures, 1);
            }
        }
    }

    #[test]
    fn rep_attempts_grow_linearly() {
        // The last enrolled user pays N Rep attempts — the O(N) behaviour
        // behind Fig. 4's linear curve.
        let (server, bios, mut rng) = setup(12);
        let normal = NormalIdentification::new(server.params().clone());
        let reading: Vec<i64> = bios[11].iter().map(|&x| x - 30).collect();
        let (outcome, stats) = normal.identify(&server, &reading, &mut rng).unwrap();
        assert!(outcome.is_identified());
        assert_eq!(stats.rep_attempts, 12);
    }

    #[test]
    fn impostor_exhausts_and_rejects() {
        let (server, _bios, mut rng) = setup(6);
        let normal = NormalIdentification::new(server.params().clone());
        let stranger = server.params().sketch().line().random_vector(32, &mut rng);
        let (outcome, stats) = normal.identify(&server, &stranger, &mut rng).unwrap();
        assert_eq!(outcome, IdentOutcome::Rejected);
        assert_eq!(stats.rep_attempts, 6); // tried everyone
        assert_eq!(stats.signatures, 0);
    }

    #[test]
    fn modes_agree_on_outcomes() {
        let (server, bios, mut rng) = setup(5);
        let exhaustive = NormalIdentification::new(server.params().clone());
        let early =
            NormalIdentification::new(server.params().clone()).with_mode(ScanMode::EarlyAbort);
        for bio in &bios {
            let reading: Vec<i64> = bio.iter().map(|&x| x + 25).collect();
            let (o1, s1) = exhaustive.identify(&server, &reading, &mut rng).unwrap();
            let (o2, s2) = early.identify(&server, &reading, &mut rng).unwrap();
            assert_eq!(o1, o2);
            assert_eq!(s1.rep_attempts, s2.rep_attempts);
        }
    }
}
