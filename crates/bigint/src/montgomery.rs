//! Montgomery multiplication (CIOS) for fast modular exponentiation with odd
//! moduli, the hot path of DSA signing and verification.

use crate::Natural;

/// Precomputed context for Montgomery arithmetic modulo an odd `n`.
///
/// Values are kept in Montgomery form (`x · R mod n` with `R = 2^(64·limbs)`);
/// [`Montgomery::mul`] computes a product and a reduction in a single
/// interleaved pass (CIOS — coarsely integrated operand scanning).
///
/// # Example
///
/// ```rust
/// use fe_bigint::{montgomery::Montgomery, Natural};
///
/// let n = Natural::from(97u64);
/// let ctx = Montgomery::new(&n).expect("odd modulus");
/// let a = ctx.to_mont(&Natural::from(5u64));
/// let b = ctx.to_mont(&Natural::from(7u64));
/// let ab = ctx.from_mont(&ctx.mul(&a, &b));
/// assert_eq!(ab, Natural::from(35u64));
/// ```
#[derive(Debug, Clone)]
pub struct Montgomery {
    n: Vec<u64>,
    n_prime: u64, // -n^{-1} mod 2^64
    r2: Vec<u64>, // R^2 mod n, used to convert into Montgomery form
}

/// `-n^{-1} mod 2^64` for odd `n` via Newton iteration on 2-adic inverse.
fn neg_inv_u64(n0: u64) -> u64 {
    debug_assert!(n0 & 1 == 1);
    let mut inv = n0; // correct to 3 bits already (odd)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
    }
    debug_assert_eq!(n0.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

impl Montgomery {
    /// Builds a context for the odd modulus `n`.
    ///
    /// Returns `None` if `n` is even or zero (Montgomery reduction requires
    /// `gcd(n, 2^64) = 1`).
    pub fn new(n: &Natural) -> Option<Montgomery> {
        if n.is_zero() || n.is_even() {
            return None;
        }
        let limbs = n.limbs().to_vec();
        let n_prime = neg_inv_u64(limbs[0]);
        // R^2 mod n where R = 2^(64*len): compute by shifting.
        let r2 = Natural::power_of_two(64 * limbs.len() * 2).rem_nat(n);
        let mut r2_limbs = r2.limbs().to_vec();
        r2_limbs.resize(limbs.len(), 0);
        Some(Montgomery {
            n: limbs,
            n_prime,
            r2: r2_limbs,
        })
    }

    /// Limb width of the modulus.
    pub fn limb_len(&self) -> usize {
        self.n.len()
    }

    /// Montgomery product `a · b · R^{-1} mod n`.
    ///
    /// Inputs must be in Montgomery form and exactly `limb_len()` limbs.
    pub fn mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert_eq!(a.len(), self.n.len());
        debug_assert_eq!(b.len(), self.n.len());
        let len = self.n.len();
        // CIOS: t has len+2 words.
        let mut t = vec![0u64; len + 2];
        for &bi in b.iter() {
            // t += a * bi
            let mut carry = 0u128;
            for j in 0..len {
                let cur = t[j] as u128 + (a[j] as u128) * (bi as u128) + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[len] as u128 + carry;
            t[len] = cur as u64;
            t[len + 1] = t[len + 1].wrapping_add((cur >> 64) as u64);

            // m = t[0] * n' mod 2^64; t += m * n; t >>= 64
            let m = t[0].wrapping_mul(self.n_prime);
            let cur = t[0] as u128 + (m as u128) * (self.n[0] as u128);
            let mut carry = cur >> 64;
            for j in 1..len {
                let cur = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[len] as u128 + carry;
            t[len - 1] = cur as u64;
            t[len] = t[len + 1].wrapping_add((cur >> 64) as u64);
            t[len + 1] = 0;
        }
        t.truncate(len + 1);
        // Conditional subtraction to bring the result below n.
        if t[len] != 0 || !less_than(&t[..len], &self.n) {
            crate::arith::sub_limbs_in_place(&mut t, &self.n);
        }
        t.truncate(len);
        t
    }

    /// Converts `x` (ordinary form, `x < n`) into Montgomery form.
    pub fn to_mont(&self, x: &Natural) -> Vec<u64> {
        let mut xl = x.limbs().to_vec();
        xl.resize(self.n.len(), 0);
        self.mul(&xl, &self.r2)
    }

    /// Converts from Montgomery form back to an ordinary [`Natural`].
    pub fn from_mont(&self, x: &[u64]) -> Natural {
        let one = {
            let mut v = vec![0u64; self.n.len()];
            v[0] = 1;
            v
        };
        Natural::from_limbs(self.mul(x, &one))
    }

    /// The value `1` in Montgomery form (`R mod n`).
    pub fn one(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.n.len()];
        v[0] = 1;
        self.mul(&v, &self.r2)
    }

    /// Modular exponentiation `base^exp mod n` using a 4-bit fixed window.
    pub fn pow(&self, base: &Natural, exp: &Natural) -> Natural {
        if exp.is_zero() {
            return Natural::one().rem_nat(&Natural::from_limbs(self.n.clone()));
        }
        let base_m = self.to_mont(&base.rem_nat(&Natural::from_limbs(self.n.clone())));
        // Precompute base^0..base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.one());
        for i in 1..16 {
            let next = self.mul(&table[i - 1], &base_m);
            table.push(next);
        }
        let bits = exp.bit_length();
        let windows = bits.div_ceil(4);
        let mut acc = self.one();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.mul(&acc, &acc);
                }
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let idx = w * 4 + (3 - b);
                digit = (digit << 1) | exp.bit(idx) as usize;
            }
            if digit != 0 {
                acc = self.mul(&acc, &table[digit]);
                started = true;
            } else if started {
                // nothing to multiply for a zero window
            } else {
                // leading zero windows: keep acc = 1, not started
            }
        }
        self.from_mont(&acc)
    }
}

fn less_than(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_inv_correct() {
        for n0 in [1u64, 3, 5, 97, 0xffff_ffff_ffff_ffc5, u64::MAX] {
            let ni = neg_inv_u64(n0);
            assert_eq!(n0.wrapping_mul(ni), 1u64.wrapping_neg(), "n0={n0}");
        }
    }

    #[test]
    fn rejects_even_modulus() {
        assert!(Montgomery::new(&Natural::from(10u64)).is_none());
        assert!(Montgomery::new(&Natural::zero()).is_none());
        assert!(Montgomery::new(&Natural::from(9u64)).is_some());
    }

    #[test]
    fn roundtrip_small() {
        let n = Natural::from(101u64);
        let ctx = Montgomery::new(&n).unwrap();
        for x in 0..101u64 {
            let xm = ctx.to_mont(&Natural::from(x));
            assert_eq!(ctx.from_mont(&xm), Natural::from(x), "x={x}");
        }
    }

    #[test]
    fn mul_matches_naive() {
        let n = Natural::from_hex("ffffffffffffffc5").unwrap(); // 64-bit prime
        let ctx = Montgomery::new(&n).unwrap();
        let a = Natural::from(0x1234_5678_9abc_def0u64);
        let b = Natural::from(0x0fed_cba9_8765_4321u64);
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let got = ctx.from_mont(&ctx.mul(&am, &bm));
        let want = (&a * &b).rem_nat(&n);
        assert_eq!(got, want);
    }

    #[test]
    fn mul_multi_limb_modulus() {
        // 192-bit odd modulus.
        let n = Natural::from_hex("fffffffffffffffffffffffffffffffffffffffffffffff1").unwrap();
        let ctx = Montgomery::new(&n).unwrap();
        let a = Natural::from_hex("123456789abcdef0123456789abcdef0123456789abcdef").unwrap();
        let b = Natural::from_hex("fedcba9876543210fedcba9876543210fedcba987654321").unwrap();
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let got = ctx.from_mont(&ctx.mul(&am, &bm));
        let want = (&a * &b).rem_nat(&n);
        assert_eq!(got, want);
    }

    #[test]
    fn pow_matches_small_cases() {
        let n = Natural::from(1009u64);
        let ctx = Montgomery::new(&n).unwrap();
        // 3^10 = 59049; 59049 mod 1009 = 59049 - 58*1009 = 527
        let got = ctx.pow(&Natural::from(3u64), &Natural::from(10u64));
        assert_eq!(got, Natural::from(59049u64 % 1009));
    }

    #[test]
    fn pow_fermat_little_theorem() {
        // p prime, a^(p-1) ≡ 1 (mod p)
        let p = Natural::from_hex("ffffffffffffffc5").unwrap();
        let ctx = Montgomery::new(&p).unwrap();
        let exp = p.checked_sub(&Natural::one()).unwrap();
        let got = ctx.pow(&Natural::from(2u64), &exp);
        assert_eq!(got, Natural::one());
    }

    #[test]
    fn pow_zero_exponent() {
        let n = Natural::from(97u64);
        let ctx = Montgomery::new(&n).unwrap();
        assert_eq!(
            ctx.pow(&Natural::from(5u64), &Natural::zero()),
            Natural::one()
        );
    }
}
