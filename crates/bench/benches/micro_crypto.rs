//! Micro-benchmarks of the cryptographic substrate: SHA-256 throughput,
//! HMAC, modular exponentiation, BCH decode.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fe_bigint::Natural;
use fe_crypto::{Digest, Hmac, Sha256};
use fe_ecc::{Bch, BinaryCode};
use fe_metrics::BitVec;
use std::time::Duration;

fn bench_crypto_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_crypto");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // SHA-256 over the 40 KB helper-hash input size (n = 5000 × 8 bytes).
    let data = vec![0x5au8; 40_000];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_40KB", |b| {
        b.iter(|| Sha256::digest(std::hint::black_box(&data)))
    });
    group.bench_function("hmac_sha256_40KB", |b| {
        b.iter(|| Hmac::<Sha256>::mac(b"key", std::hint::black_box(&data)))
    });
    group.throughput(Throughput::Elements(1));

    // Modular exponentiation, the DSA hot path: 1024-bit base/modulus,
    // 160-bit exponent.
    let p = Natural::power_of_two(1023).add_u64(1_155_743); // odd 1024-bit
    let g = Natural::from(0xDEADBEEFu64);
    let e = Natural::power_of_two(159).add_u64(0x1234_5678);
    group.bench_function("modpow_1024_160", |b| {
        b.iter(|| std::hint::black_box(&g).mod_pow(&e, &p))
    });

    // BCH decode at iris scale with max errors.
    let code = Bch::new(10, 12).unwrap();
    let msg = BitVec::from_fn(code.k(), |i| i % 2 == 0);
    let word = code.encode(&msg).unwrap();
    let mut corrupted = word.clone();
    for i in 0..12 {
        corrupted.flip(i * 85);
    }
    group.bench_function("bch1023_decode_12err", |b| {
        b.iter(|| {
            code.decode(std::hint::black_box(&corrupted))
                .expect("correctable")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crypto_micro);
criterion_main!(benches);
