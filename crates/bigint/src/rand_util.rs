//! Random [`Natural`] generation from any [`rand::RngCore`].

use crate::Natural;
use rand::RngCore;

/// A uniformly random natural with at most `bits` bits.
pub fn random_bits<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> Natural {
    if bits == 0 {
        return Natural::zero();
    }
    let limbs_needed = bits.div_ceil(64);
    let mut limbs = Vec::with_capacity(limbs_needed);
    for _ in 0..limbs_needed {
        limbs.push(rng.next_u64());
    }
    let excess = limbs_needed * 64 - bits;
    if excess > 0 {
        let last = limbs.last_mut().expect("at least one limb");
        *last >>= excess;
    }
    Natural::from_limbs(limbs)
}

/// A uniformly random natural in `[0, bound)` via rejection sampling.
///
/// # Panics
/// Panics if `bound` is zero.
pub fn random_below<R: RngCore + ?Sized>(bound: &Natural, rng: &mut R) -> Natural {
    assert!(!bound.is_zero(), "bound must be positive");
    let bits = bound.bit_length();
    loop {
        let cand = random_bits(bits, rng);
        if &cand < bound {
            return cand;
        }
    }
}

/// A uniformly random natural in `[low, high)`.
///
/// # Panics
/// Panics if `low >= high`.
pub fn random_natural<R: RngCore + ?Sized>(low: &Natural, high: &Natural, rng: &mut R) -> Natural {
    assert!(low < high, "empty range");
    let span = high.checked_sub(low).expect("high > low");
    low + &random_below(&span, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for bits in [0usize, 1, 7, 64, 65, 190] {
            for _ in 0..50 {
                let n = random_bits(bits, &mut r);
                assert!(n.bit_length() <= bits, "bits={bits} got={}", n.bit_length());
            }
        }
    }

    #[test]
    fn random_bits_hits_top_bit() {
        // With 100 draws of 8 bits, the top bit should be set at least once.
        let mut r = rng();
        let hit = (0..100).any(|_| random_bits(8, &mut r).bit(7));
        assert!(hit);
    }

    #[test]
    fn random_below_in_range() {
        let mut r = rng();
        let bound = Natural::from(1000u64);
        for _ in 0..200 {
            assert!(random_below(&bound, &mut r) < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        let mut r = rng();
        let bound = Natural::from(3u64);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = random_below(&bound, &mut r).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn random_natural_in_range() {
        let mut r = rng();
        let low = Natural::from(100u64);
        let high = Natural::from(110u64);
        for _ in 0..100 {
            let v = random_natural(&low, &high, &mut r);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_natural_empty_range_panics() {
        let mut r = rng();
        let x = Natural::from(5u64);
        random_natural(&x, &x, &mut r);
    }
}
