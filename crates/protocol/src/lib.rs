//! The biometric protocols of *Fuzzy Extractors for Biometric
//! Identification* (Sec. III & V): system setup, user enrollment
//! (Fig. 1), the **proposed constant-cost identification protocol**
//! (Fig. 3), the **normal-approach baseline** (Fig. 2), and the
//! verification-mode protocol.
//!
//! # Roles
//!
//! * [`BiometricDevice`] (`BioD`) — trusted capture device: runs `Gen`
//!   at enrollment (erasing the secret immediately), emits fresh sketches
//!   at identification, and answers challenges by recovering the signing
//!   key via `Rep`.
//! * [`AuthenticationServer`] (`AS`) — stores `(ID, pk, P)` records,
//!   matches incoming sketches with conditions (1)–(4), and verifies
//!   challenge responses. Never sees a biometric or a secret key.
//!   Generic over its sketch index (`I:`[`fe_core::SketchIndex`],
//!   default [`fe_core::ScanIndex`]); the [`IndexConfig`] knob on
//!   [`SystemParams`] carries the tunables, and [`BuildIndex`] turns
//!   them into a concrete index. Batch identification
//!   ([`AuthenticationServer::identify_batch`]) resolves many probes
//!   per call.
//! * [`concurrent::SharedServer`] — the scaling wrapper: users
//!   partitioned across N independently-locked server shards, lookups
//!   under shared read locks, batched identification with one lock
//!   acquisition per shard per batch.
//! * [`scheduler::ScheduledServer`] — the heavy-traffic front door: a
//!   bounded admission queue coalesces concurrent `identify` calls
//!   into adaptive micro-batches (flush on size or deadline), executes
//!   them through the shards' single-pass multi-query scan kernel, and
//!   sheds excess load with [`ProtocolError::Overloaded`] instead of
//!   queueing without bound.
//! * [`store`] — durable enrollment: the [`EnrollmentStore`]
//!   abstraction, the file-backed append-only journal + compacted
//!   snapshots ([`FileStore`]), and crash-safe recovery
//!   ([`AuthenticationServer::recover`], [`concurrent::SharedServer::recover`])
//!   with torn-tail truncation and parameter-fingerprint validation.
//!
//! # The efficiency claim
//!
//! The normal approach must run `Rep` + sign + verify once per enrolled
//! user (`O(N)` heavy crypto); the proposed protocol finds the record with
//! cheap integer comparisons and then runs exactly **one** `Rep`, one
//! signature and one verification, independent of `N`. [`ProtocolRunner`]
//! exposes both paths with operation counters so the benches can
//! regenerate Fig. 4.
//!
//! ```rust
//! use fe_protocol::{BiometricDevice, AuthenticationServer, SystemParams};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), fe_protocol::ProtocolError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(10);
//! let params = SystemParams::insecure_test_defaults();
//! let device = BiometricDevice::new(params.clone());
//! let mut server = AuthenticationServer::new(params.clone());
//!
//! // Enrollment (Fig. 1).
//! let bio = params.sketch().line().random_vector(64, &mut rng);
//! server.enroll(device.enroll("alice", &bio, &mut rng)?)?;
//!
//! // Identification (Fig. 3): fresh sketch → challenge → signature.
//! let noisy: Vec<i64> = bio.iter().map(|x| x + 40).collect();
//! let probe = device.probe_sketch(&noisy, &mut rng)?;
//! let challenge = server.begin_identification(&probe, &mut rng)?;
//! let response = device.respond(&noisy, &challenge, &mut rng)?;
//! let outcome = server.finish_identification(&response)?;
//! assert_eq!(outcome.identity(), Some("alice"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
mod device;
mod error;
mod messages;
mod normal;
mod params;
mod runner;
pub mod scheduler;
mod server;
pub mod store;
pub mod transport;
pub mod wire;

pub use device::BiometricDevice;
pub use error::ProtocolError;
pub use fe_core::{FilterConfig, FilterKernel, ParallelConfig, PlaneDepth, PlaneWidth};
pub use messages::{
    EnrollmentRecord, IdentChallenge, IdentOutcome, IdentResponse, SessionId, UserId, WireHelper,
};
pub use normal::{NormalIdentification, NormalStats, ScanMode};
pub use params::{DedupPolicy, IndexConfig, SystemParams};
pub use runner::{IdentifyStats, ProtocolRunner};
pub use scheduler::{IdentifyTicket, ScheduledServer, SchedulerConfig, SchedulerMetrics};
pub use server::{AuthenticationServer, BuildIndex};
pub use store::{EnrollmentStore, FileStore, LogEvent, MemoryStore};
