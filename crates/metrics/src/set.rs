//! Set-difference metric — the metric of the fuzzy vault (Juels–Sudan).

use crate::Metric;
use std::collections::BTreeSet;

/// Set-difference distance: `|A △ B|`, the size of the symmetric
/// difference. Used for biometrics represented as unordered feature sets
/// (e.g. fingerprint minutiae).
///
/// ```rust
/// use fe_metrics::{Metric, SetDifference};
/// use std::collections::BTreeSet;
///
/// let a: BTreeSet<u64> = [1, 2, 3].into_iter().collect();
/// let b: BTreeSet<u64> = [2, 3, 4, 5].into_iter().collect();
/// assert_eq!(SetDifference.distance(&a, &b), 3); // {1} ∪ {4,5}
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetDifference;

impl Metric<BTreeSet<u64>> for SetDifference {
    type Distance = u64;

    fn distance(&self, a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> u64 {
        a.symmetric_difference(b).count() as u64
    }
}

impl SetDifference {
    /// Distance between sorted, deduplicated slices (no allocation).
    ///
    /// # Panics
    /// Debug-panics if either slice is not strictly increasing.
    pub fn sorted_slice_distance(&self, a: &[u64], b: &[u64]) -> u64 {
        debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be sorted/dedup");
        debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be sorted/dedup");
        let (mut i, mut j, mut diff) = (0usize, 0usize, 0u64);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    diff += 1;
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    diff += 1;
                }
            }
        }
        diff + (a.len() - i) as u64 + (b.len() - j) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u64]) -> BTreeSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(SetDifference.distance(&set(&[1, 2]), &set(&[3, 4])), 4);
    }

    #[test]
    fn identical_sets() {
        assert_eq!(
            SetDifference.distance(&set(&[1, 2, 3]), &set(&[1, 2, 3])),
            0
        );
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(SetDifference.distance(&set(&[]), &set(&[7, 8, 9])), 3);
    }

    #[test]
    fn slice_version_matches_set_version() {
        let cases: [(&[u64], &[u64]); 4] = [
            (&[1, 2, 3], &[2, 3, 4, 5]),
            (&[], &[1]),
            (&[10, 20, 30], &[10, 20, 30]),
            (&[1, 5, 9], &[2, 6, 10]),
        ];
        for (a, b) in cases {
            let expected =
                SetDifference.distance(&a.iter().copied().collect(), &b.iter().copied().collect());
            assert_eq!(SetDifference.sorted_slice_distance(a, b), expected);
        }
    }
}
