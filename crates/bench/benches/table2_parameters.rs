//! **Table II**: implementation parameters and the derived security
//! figures, re-computed and asserted, plus the cost of the primitive the
//! table parameterizes (`Gen` at n = 5000).
//!
//! The analytic rows (m̃, storage) are checked against the paper's
//! numbers exactly; the timing row gives this machine's equivalent of the
//! paper's setup cost.

use criterion::{criterion_group, criterion_main, Criterion};
use fe_core::analysis::SketchAnalysis;
use fe_core::{ChebyshevSketch, FuzzyExtractor};
use rand::SeedableRng;
use std::time::Duration;

fn bench_table2(c: &mut Criterion) {
    // Analytic part — assert the Table II values before timing anything.
    let analysis = SketchAnalysis::paper_defaults(5000);
    let m_tilde = analysis.residual_min_entropy_bits();
    let storage = analysis.storage_bits();
    assert!(
        (m_tilde - 44_829.0).abs() < 1.0,
        "Table II m̃ mismatch: {m_tilde}"
    );
    assert!(
        (storage - 43_238.0).abs() < 1.0,
        "storage formula mismatch: {storage}"
    );
    eprintln!("table2: m̃ = {m_tilde:.0} bits (paper: ≈44,829)");
    eprintln!("table2: storage = {storage:.0} bits (paper rounds to ≈45,000)");
    eprintln!(
        "table2: log2 Pr[false-close] ≤ {:.0}",
        analysis.log2_false_close_bound()
    );

    let mut group = c.benchmark_group("table2_parameters");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    let fe = FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7AB1E2);
    let bio = fe.sketcher().line().random_vector(5000, &mut rng);

    group.bench_function("gen_n5000", |b| {
        b.iter(|| {
            fe.generate(std::hint::black_box(&bio), &mut rng)
                .expect("generate")
        })
    });

    let (key, helper) = fe.generate(&bio, &mut rng).expect("generate");
    let noisy: Vec<i64> = bio.iter().map(|x| x + 73).collect();
    group.bench_function("rep_n5000", |b| {
        b.iter(|| {
            let k = fe
                .reproduce(std::hint::black_box(&noisy), &helper)
                .expect("reproduce");
            assert_eq!(k, key);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
