//! Protocol error type.

use fe_core::codec::CodecError;
use fe_core::SketchError;
use std::error::Error;
use std::fmt;

/// Errors raised by the enrollment / identification / verification
/// protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The underlying sketch / fuzzy extractor failed.
    Sketch(SketchError),
    /// No enrolled record matches the presented sketch
    /// (the identification `⊥` outcome).
    NoMatch,
    /// More than one enrolled record matches the presented sketch — a
    /// reset requires exactly one (see
    /// [`AuthenticationServer::reset`](crate::AuthenticationServer::reset)).
    AmbiguousMatch,
    /// The user id is already enrolled.
    DuplicateUser(String),
    /// The presented *biometric* is already enrolled (under the carried
    /// user id): uniqueness-checked enrollment refused to create an
    /// unlinked duplicate (see
    /// [`AuthenticationServer::enroll_unique`](crate::AuthenticationServer::enroll_unique)).
    DuplicateBiometric(String),
    /// The claimed identity is not enrolled (verification mode).
    UnknownUser(String),
    /// The response referenced an expired or unknown challenge session
    /// (replay, or a session that was already consumed).
    UnknownSession,
    /// The signature in the response failed to verify.
    BadSignature,
    /// A message failed to deserialize.
    Malformed(&'static str),
    /// A durable artifact failed to decode (wrong format version,
    /// mismatched parameter fingerprint, corruption, …).
    Codec(CodecError),
    /// The enrollment store could not be read or written (I/O failures;
    /// carries the rendered `std::io::Error` so this type stays `Clone`).
    Storage(String),
    /// The request scheduler's admission queue is full (or the
    /// scheduler is shutting down): the request was shed instead of
    /// queued without bound. Clients should back off and retry — see
    /// [`crate::scheduler::ScheduledServer`].
    Overloaded,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Sketch(e) => write!(f, "sketch failure: {e}"),
            ProtocolError::NoMatch => write!(f, "no enrolled record matches the sketch"),
            ProtocolError::AmbiguousMatch => {
                write!(f, "more than one enrolled record matches the sketch")
            }
            ProtocolError::DuplicateUser(id) => write!(f, "user '{id}' already enrolled"),
            ProtocolError::DuplicateBiometric(id) => {
                write!(f, "biometric already enrolled as user '{id}'")
            }
            ProtocolError::UnknownUser(id) => write!(f, "user '{id}' is not enrolled"),
            ProtocolError::UnknownSession => write!(f, "unknown or expired challenge session"),
            ProtocolError::BadSignature => write!(f, "challenge response signature invalid"),
            ProtocolError::Malformed(what) => write!(f, "malformed message: {what}"),
            ProtocolError::Codec(e) => write!(f, "durable artifact failure: {e}"),
            ProtocolError::Storage(what) => write!(f, "enrollment store failure: {what}"),
            ProtocolError::Overloaded => {
                write!(f, "server overloaded: identification request shed")
            }
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Sketch(e) => Some(e),
            ProtocolError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SketchError> for ProtocolError {
    fn from(e: SketchError) -> Self {
        ProtocolError::Sketch(e)
    }
}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProtocolError::Sketch(SketchError::OutOfRange);
        assert!(e.to_string().contains("sketch failure"));
        assert!(e.source().is_some());
        assert!(ProtocolError::NoMatch.source().is_none());
        assert!(ProtocolError::DuplicateUser("bob".into())
            .to_string()
            .contains("bob"));
    }

    #[test]
    fn from_sketch_error() {
        let e: ProtocolError = SketchError::TagMismatch.into();
        assert_eq!(e, ProtocolError::Sketch(SketchError::TagMismatch));
    }
}
