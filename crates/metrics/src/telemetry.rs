//! Service telemetry: lock-free histograms for the serving layer.
//!
//! The identification *protocol* lives in `fe-protocol`, but a server
//! taking heavy traffic needs to observe itself — queue wait, batch
//! size, queue depth — without a mutex on the hot path. [`Histogram`]
//! is the one primitive this workspace needs for that: a fixed array
//! of power-of-two buckets behind relaxed atomics, so recording is a
//! handful of uncontended `fetch_add`s and a snapshot is a consistent-
//! enough read for operational quantiles (p50/p90/p99 within a factor
//! of two, which is what log-bucketed histograms promise).
//!
//! Values are plain `u64`s; the *unit* is the caller's contract (the
//! request scheduler records microseconds for latencies and counts for
//! batch sizes / queue depths).
//!
//! ```rust
//! use fe_metrics::telemetry::Histogram;
//!
//! let h = Histogram::new();
//! for v in [1u64, 2, 3, 100, 1000] {
//!     h.observe(v);
//! }
//! let snap = h.snapshot();
//! assert_eq!(snap.count, 5);
//! assert_eq!(snap.max, 1000);
//! assert!(snap.p50 >= 2 && snap.p50 <= 1000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket `0` holds the value `0`, bucket `b ≥ 1`
/// holds values with bit length `b`, i.e. `[2^(b−1), 2^b)`. `u64::MAX`
/// has bit length 64, so 65 buckets cover the whole domain.
const BUCKETS: usize = 65;

/// A lock-free, log₂-bucketed histogram of `u64` observations.
///
/// Recording ([`Histogram::observe`]) is wait-free (relaxed atomic
/// adds); reading ([`Histogram::snapshot`]) tears at most by whatever
/// was recorded concurrently — fine for operational metrics, not for
/// accounting. Quantiles are reported as the upper bound of the bucket
/// the quantile falls in (clamped to the observed maximum), so they
/// over-estimate by at most 2×.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time read of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Median, as a bucket upper bound (0 when empty).
    pub p50: u64,
    /// 90th percentile, as a bucket upper bound (0 when empty).
    pub p90: u64,
    /// 99th percentile, as a bucket upper bound (0 when empty).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The bucket index for a value: its bit length.
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value a bucket can hold.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Wait-free; safe from any thread.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Reads the current state as counts + log-bucket quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Quantiles over the bucket counts we actually read — the
        // shared `count` cell may include racing observations whose
        // bucket increment we missed, which would push quantiles past
        // the last bucket.
        let total: u64 = counts.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile, 1-based, ceil — p50 of 2 samples
            // is the 1st, p99 of 100 samples is the 99th.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (bucket, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(bucket).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Exact nearest-rank quantile over **sorted** samples — the companion
/// to [`Histogram`] for offline analysis: benches and load generators
/// that hold every sample in memory want exact percentiles, not the
/// ≤ 2× log-bucket bounds the live histograms trade for wait-freedom.
///
/// `q` is the quantile in `[0, 1]` (`0.5` = median, `0.99` = p99),
/// resolved by nearest rank: the smallest sample such that at least
/// `⌈q·n⌉` samples are ≤ it. Returns `0.0` for an empty slice.
///
/// ```rust
/// use fe_metrics::telemetry::percentile;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
/// assert_eq!(percentile(&sorted, 0.50), 3.0);
/// assert_eq!(percentile(&sorted, 0.99), 100.0);
/// assert_eq!(percentile(&[], 0.5), 0.0);
/// ```
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(
            (snap.count, snap.sum, snap.max, snap.p50, snap.p90, snap.p99),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn buckets_cover_the_domain() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bounds contain it.
        for v in [0u64, 1, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b));
            if b > 0 {
                assert!(v > bucket_upper(b - 1));
            }
        }
    }

    #[test]
    fn quantiles_bound_the_data_within_a_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 500_500);
        // Exact p50 is 500 → bucket [512, 1023] upper bound, clamped
        // to observed max where applicable; log buckets promise ≤ 2×.
        assert!(snap.p50 >= 500 && snap.p50 <= 1000, "p50 = {}", snap.p50);
        assert!(snap.p90 >= 900 && snap.p90 <= 1000, "p90 = {}", snap.p90);
        assert!(snap.p99 >= 990 && snap.p99 <= 1000, "p99 = {}", snap.p99);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn skewed_tail_is_visible_in_p99() {
        let h = Histogram::new();
        for _ in 0..97 {
            h.observe(10);
        }
        for _ in 0..3 {
            h.observe(100_000);
        }
        let snap = h.snapshot();
        // Nearest-rank p99 of 100 samples is the 99th — inside the tail.
        assert!(snap.p50 <= 15);
        assert!(snap.p90 <= 15);
        assert!(snap.p99 >= 65_536, "p99 = {}", snap.p99);
        assert_eq!(snap.max, 100_000);
    }

    #[test]
    fn exact_percentile_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.90), 90.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&[7.5], 0.99), 7.5);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn concurrent_observations_all_land() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
        assert_eq!(h.count(), 4000);
    }
}
