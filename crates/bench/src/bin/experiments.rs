//! Regenerates every table and figure from the paper's evaluation
//! section as aligned text + CSV (under `target/experiments/`).
//!
//! Usage:
//!   experiments [table2|fig4|verification|dimsweep|falseclose|scanstats|all]
//!
//! Absolute timings are this machine's; the paper's claims are *shape*
//! claims (constant vs linear, identification ≈ verification), which is
//! what EXPERIMENTS.md records.

use fe_bench::{ms, time_it, write_csv, Population};
use fe_core::analysis::SketchAnalysis;
use fe_core::conditions::{sketches_match, sketches_match_counting};
use fe_core::{ChebyshevSketch, NumberLine, SecureSketch};
use fe_metrics::{Metric, RingChebyshev};
use fe_protocol::SystemParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "table2" => table2(),
        "fig4" => fig4(),
        "verification" => verification(),
        "dimsweep" => dimsweep(),
        "falseclose" => falseclose(),
        "scanstats" => scanstats(),
        "all" => {
            table2();
            fig4();
            verification();
            dimsweep();
            falseclose();
            scanstats();
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiments [table2|fig4|verification|dimsweep|falseclose|scanstats|all]"
            );
            std::process::exit(2);
        }
    }
}

/// Table II: implementation parameters and the analytic security figures.
fn table2() {
    println!("\n== Table II: implementation parameters ==");
    let n = 5000usize;
    let analysis = SketchAnalysis::paper_defaults(n);
    let line = analysis.line();
    let rows = [
        ("a", format!("{}", line.a()), "100".to_string()),
        ("k", format!("{}", line.k()), "4".to_string()),
        ("v", format!("{}", line.v()), "500".to_string()),
        ("t", format!("{}", analysis.threshold()), "100".to_string()),
        (
            "rep. range",
            format!("[-{}, {}]", line.half_range(), line.half_range()),
            "[-100000, 100000]".to_string(),
        ),
        (
            "m̃ (n=5000)",
            format!("{:.0} bits", analysis.residual_min_entropy_bits()),
            "≈44,829 bits".to_string(),
        ),
        (
            "storage (n=5000)",
            format!("{:.0} bits", analysis.storage_bits()),
            "≈45,000 bits (paper rounding; formula gives 43,238)".to_string(),
        ),
        (
            "random extractor",
            "HMAC-SHA256".to_string(),
            "SHA256".to_string(),
        ),
        ("signature", "DSA".to_string(), "DSA".to_string()),
    ];
    println!("{:<18} {:<28} paper", "parameter", "this repo");
    let mut csv = Vec::new();
    for (name, ours, paper) in rows {
        println!("{name:<18} {ours:<28} {paper}");
        csv.push(format!("{name},{ours},{paper}"));
    }
    let path = write_csv("table2.csv", "parameter,ours,paper", &csv);
    println!("→ {}", path.display());
}

/// Fig. 4: identification latency vs database size, proposed vs normal.
fn fig4() {
    println!("\n== Fig. 4: identification speed vs database size (n = 5000) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>9}  (proposed stays flat; normal grows)",
        "users", "proposed", "normal", "ratio"
    );
    let dim = 5000usize;
    let reps = 3usize;
    let mut csv = Vec::new();
    for users in [1usize, 5, 10, 20, 30, 40, 50] {
        let params = SystemParams::insecure_test_defaults();
        let mut pop = Population::build(params, users, dim, 0xF164 + users as u64);
        // Identify the last-enrolled user: worst case for the baseline.
        let reading = pop.genuine_reading(users - 1);

        let mut proposed = f64::MAX;
        for _ in 0..reps {
            let (_, secs) = time_it(|| {
                let (outcome, _) = pop.runner.identify(&reading, &mut pop.rng).unwrap();
                assert!(outcome.is_identified());
            });
            proposed = proposed.min(secs);
        }
        let mut normal = f64::MAX;
        for _ in 0..reps {
            let (_, secs) = time_it(|| {
                let (outcome, _, _) = pop.runner.identify_normal(&reading, &mut pop.rng).unwrap();
                assert!(outcome.is_identified());
            });
            normal = normal.min(secs);
        }
        println!(
            "{users:>6} {} {} {:>8.2}x",
            ms(proposed),
            ms(normal),
            normal / proposed
        );
        csv.push(format!("{users},{:.6},{:.6}", proposed * 1e3, normal * 1e3));
    }
    let path = write_csv("fig4.csv", "users,proposed_ms,normal_ms", &csv);
    println!("→ {}", path.display());
}

/// Sec. VII: verification (99 ms in the paper) vs identification (110 ms).
fn verification() {
    println!("\n== Sec. VII: verification vs identification cost (n = 5000) ==");
    let params = SystemParams::insecure_test_defaults();
    let mut pop = Population::build(params, 10, 5000, 0x99);
    let reading = pop.genuine_reading(7);
    let reps = 5usize;

    let mut ver = f64::MAX;
    for _ in 0..reps {
        let (_, secs) = time_it(|| {
            let (o, _) = pop.runner.verify("user-7", &reading, &mut pop.rng).unwrap();
            assert!(o.is_identified());
        });
        ver = ver.min(secs);
    }
    let mut ident = f64::MAX;
    for _ in 0..reps {
        let (_, secs) = time_it(|| {
            let (o, _) = pop.runner.identify(&reading, &mut pop.rng).unwrap();
            assert!(o.is_identified());
        });
        ident = ident.min(secs);
    }
    println!("verification:   {}   (paper:  99 ms)", ms(ver));
    println!("identification: {}   (paper: 110 ms)", ms(ident));
    println!("ratio:          {:8.3}      (paper: ≈1.11)", ident / ver);
    let path = write_csv(
        "verification.csv",
        "mode,ms",
        &[
            format!("verification,{:.6}", ver * 1e3),
            format!("identification,{:.6}", ident * 1e3),
        ],
    );
    println!("→ {}", path.display());
}

/// Sec. VII: dimension sweep n = 1000..31000 ("negligible impact").
///
/// The paper's claim holds when signature cost dominates (their Python
/// DSA took ~99 ms). Our Rust DSA is orders of magnitude faster, so we
/// report two regimes: fast test crypto (O(n) sketch work visible) and
/// 2048-bit DSA (crypto-dominated, reproducing the paper's flat curve).
fn dimsweep() {
    println!("\n== Sec. VII: dimension sweep (verification mode) ==");
    println!(
        "{:>7} {:>14} {:>16}",
        "n", "dsa-512 (fast)", "dsa-2048 (paper regime)"
    );
    let reps = 3usize;
    let mut csv = Vec::new();
    let params_2048 = SystemParams::new(
        fe_core::ChebyshevSketch::paper_defaults(),
        32,
        fe_crypto::dsa::DsaParams::dsa_2048_256().clone(),
    );
    for dim in (1..=31).step_by(5).map(|k| k * 1000) {
        let mut best = [f64::MAX; 2];
        for (slot, params) in [SystemParams::insecure_test_defaults(), params_2048.clone()]
            .into_iter()
            .enumerate()
        {
            let mut pop = Population::build(params, 3, dim, 0x0D15 + dim as u64);
            let reading = pop.genuine_reading(1);
            for _ in 0..reps {
                let (_, secs) = time_it(|| {
                    let (o, _) = pop.runner.verify("user-1", &reading, &mut pop.rng).unwrap();
                    assert!(o.is_identified());
                });
                best[slot] = best[slot].min(secs);
            }
        }
        println!("{dim:>7} {} {}", ms(best[0]), ms(best[1]));
        csv.push(format!("{dim},{:.6},{:.6}", best[0] * 1e3, best[1] * 1e3));
    }
    let path = write_csv("dimsweep.csv", "n,dsa512_ms,dsa2048_ms", &csv);
    println!("→ {}", path.display());
}

/// Theorem 2: measured false-close rate vs the analytic bound, on a
/// small line where the event is observable.
fn falseclose() {
    println!("\n== Theorem 2: false-close probability (small line: a=10, k=4, v=8, t=5) ==");
    println!(
        "{:>3} {:>12} {:>12} {:>12} {:>12}",
        "n", "match_emp", "match_ana", "false_emp", "false_ana"
    );
    let line = NumberLine::new(10, 4, 8).unwrap();
    let t = 5u64;
    let scheme = ChebyshevSketch::new(line, t).unwrap();
    let ring = RingChebyshev::new(line.period());
    let trials = 200_000usize;
    let mut rng = StdRng::seed_from_u64(0xFC);
    let mut csv = Vec::new();
    for n in [1usize, 2, 3] {
        let mut matches = 0usize;
        let mut false_close = 0usize;
        for _ in 0..trials {
            let x = line.random_vector(n, &mut rng);
            let y = line.random_vector(n, &mut rng);
            let sx = scheme.sketch(&x, &mut rng).unwrap();
            let sy = scheme.sketch(&y, &mut rng).unwrap();
            if sketches_match(&sx, &sy, t, line.interval_len()) {
                matches += 1;
                if ring.distance(&x[..], &y[..]) > t {
                    false_close += 1;
                }
            }
        }
        let analysis = SketchAnalysis::new(line, t, n).unwrap();
        let match_ana = ((2 * t + 1) as f64 / line.interval_len() as f64).powi(n as i32);
        let false_ana = analysis.log2_false_close_exact().exp2();
        let match_emp = matches as f64 / trials as f64;
        let false_emp = false_close as f64 / trials as f64;
        println!("{n:>3} {match_emp:>12.5} {match_ana:>12.5} {false_emp:>12.5} {false_ana:>12.5}");
        csv.push(format!(
            "{n},{match_emp:.6},{match_ana:.6},{false_emp:.6},{false_ana:.6}"
        ));
    }
    let path = write_csv(
        "falseclose.csv",
        "n,match_empirical,match_analytic,false_empirical,false_analytic",
        &csv,
    );
    println!("→ {}", path.display());
}

/// The early-abort scan statistics backing the "constant cost" argument:
/// expected coordinates examined per non-matching record ≈ 1/(1-p),
/// p = (2t+1)/ka ≈ 0.5025.
fn scanstats() {
    println!("\n== Early-abort scan: coordinates examined per non-matching record ==");
    let scheme = ChebyshevSketch::paper_defaults();
    let line = scheme.line();
    let mut rng = StdRng::seed_from_u64(0x5CA9);
    let dim = 5000usize;
    let records = 2000usize;
    let probe_src = line.random_vector(dim, &mut rng);
    let probe = scheme.sketch(&probe_src, &mut rng).unwrap();
    let mut total = 0usize;
    for _ in 0..records {
        let x = line.random_vector(dim, &mut rng);
        let s = scheme.sketch(&x, &mut rng).unwrap();
        let (matched, examined) =
            sketches_match_counting(&s, &probe, scheme.threshold(), line.interval_len());
        assert!(!matched, "random record matched a random probe");
        total += examined;
    }
    let measured = total as f64 / records as f64;
    let analytic = SketchAnalysis::paper_defaults(dim).expected_scan_coordinates();
    println!("measured: {measured:.3} coordinates/record");
    println!("analytic: {analytic:.3} (geometric mean, p = (2t+1)/ka)");
    let path = write_csv(
        "scanstats.csv",
        "measured,analytic",
        &[format!("{measured:.4},{analytic:.4}")],
    );
    println!("→ {}", path.display());
}
