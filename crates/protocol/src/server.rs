//! The authentication server (`AS`): record storage, sketch matching,
//! challenge management, response verification.
//!
//! [`AuthenticationServer`] is generic over its sketch-lookup structure
//! `I:`[`SketchIndex`] (defaulting to the paper's [`ScanIndex`]), and the
//! read path ([`AuthenticationServer::lookup_probe`]) is `&self` so a
//! concurrent wrapper can serve many lookups under a shared lock — see
//! [`crate::concurrent::SharedServer`].

use crate::messages::{
    challenge_message, EnrollmentRecord, IdentChallenge, IdentOutcome, IdentResponse, SessionId,
    UserId, WireHelper,
};
use crate::params::{DedupPolicy, SystemParams};
use crate::store::{EnrollmentStore, FileStore, LogEvent, LogEventRef, SnapshotRow};
use crate::ProtocolError;
use fe_core::{BucketIndex, EpochIndex, ScanIndex, ShardedIndex, SketchIndex};
use fe_crypto::dsa::{DsaSignature, DsaVerifyingKey};
use fe_crypto::sig::SignatureScheme;
use rand::Rng;
use rand::RngCore;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Index types the server can build from published [`SystemParams`]
/// (consulting [`SystemParams::index_config`] for tunables).
///
/// This is the bridge between the *runtime* index-selection knob on the
/// parameters and the *compile-time* index type parameter of
/// [`AuthenticationServer`]: pick the type, and its builder reads the
/// matching tunables (shard count, bucket key width) from the config,
/// ignoring fields that do not apply.
pub trait BuildIndex: SketchIndex + Sized {
    /// Builds an empty index for the given parameters.
    fn build(params: &SystemParams) -> Self;
}

fn sketch_ring(params: &SystemParams) -> (u64, u64) {
    (
        params.sketch().threshold(),
        params.sketch().line().interval_len(),
    )
}

impl BuildIndex for ScanIndex {
    fn build(params: &SystemParams) -> Self {
        let (t, ka) = sketch_ring(params);
        ScanIndex::with_filter(t, ka, params.filter_config())
    }
}

impl BuildIndex for BucketIndex {
    fn build(params: &SystemParams) -> Self {
        // The bucket index ignores `filter_config()`: it verifies
        // hashed candidates row-by-row and never runs a full scan.
        let (t, ka) = sketch_ring(params);
        BucketIndex::new(t, ka, params.index_config().prefix_dims())
    }
}

impl BuildIndex for ShardedIndex<ScanIndex> {
    fn build(params: &SystemParams) -> Self {
        let (t, ka) = sketch_ring(params);
        ShardedIndex::scan_with_filter(
            params.index_config().shards(),
            t,
            ka,
            params.filter_config(),
        )
    }
}

impl BuildIndex for EpochIndex {
    fn build(params: &SystemParams) -> Self {
        let (t, ka) = sketch_ring(params);
        EpochIndex::with_filter(t, ka, params.filter_config())
    }
}

impl BuildIndex for ShardedIndex<EpochIndex> {
    fn build(params: &SystemParams) -> Self {
        let (t, ka) = sketch_ring(params);
        let filter = params.filter_config();
        ShardedIndex::from_fn(params.index_config().shards(), |_| {
            EpochIndex::with_filter(t, ka, filter)
        })
    }
}

impl BuildIndex for ShardedIndex<BucketIndex> {
    fn build(params: &SystemParams) -> Self {
        let (t, ka) = sketch_ring(params);
        ShardedIndex::bucket(
            params.index_config().shards(),
            t,
            ka,
            params.index_config().prefix_dims(),
        )
    }
}

/// A stored enrollment record.
#[derive(Debug, Clone)]
struct StoredRecord {
    id: UserId,
    public_key: DsaVerifyingKey,
    helper: WireHelper,
}

/// An outstanding challenge (single-use → replay protection).
#[derive(Debug, Clone)]
struct PendingChallenge {
    record_idx: usize,
    challenge: u64,
}

/// The authentication server of Figs. 1–3, generic over its sketch
/// index (default: the paper's early-abort scan).
///
/// Holds only public data: `(ID, pk, P)` per user. Sketch lookup uses
/// conditions (1)–(4) through the index; the heavy crypto per
/// identification is exactly one signature verification regardless of the
/// number of enrolled users.
#[derive(Debug)]
pub struct AuthenticationServer<I: SketchIndex = ScanIndex> {
    params: SystemParams,
    /// Slot-stable record storage: revocation leaves a tombstone so
    /// outstanding indices never shift.
    records: Vec<Option<StoredRecord>>,
    by_id: HashMap<UserId, usize>,
    index: I,
    pending: HashMap<SessionId, PendingChallenge>,
    next_session: SessionId,
    /// Session-id step, so shard replicas can interleave disjoint
    /// session namespaces (see [`crate::concurrent::SharedServer`]).
    session_stride: u64,
    /// Diagnostic counter: sketch lookups served. Atomic so the hot
    /// read path stays `&self`.
    lookups: AtomicU64,
    /// Optional durable journal: when attached, every enroll/revoke is
    /// persisted (write-ahead) before the in-memory state changes.
    store: Option<Box<dyn EnrollmentStore>>,
}

impl AuthenticationServer<ScanIndex> {
    /// Creates an empty server with the paper's scan index.
    pub fn new(params: SystemParams) -> Self {
        Self::from_params(params)
    }
}

impl<I: BuildIndex> AuthenticationServer<I> {
    /// Creates an empty server whose index type `I` is built from
    /// `params` (see [`BuildIndex`]).
    pub fn from_params(params: SystemParams) -> Self {
        let index = I::build(&params);
        Self::with_index(params, index)
    }

    /// Opens (or creates) a durable server backed by a
    /// [`FileStore`] at `dir`: the snapshot and journal tail are
    /// replayed to rebuild the full record set and sketch index, and the
    /// store stays attached so every subsequent enroll/revoke is
    /// journaled.
    ///
    /// Recovery is **idempotent per event**: an enrollment already
    /// present (the crash-between-snapshot-and-journal-reset overlap) is
    /// skipped, as is a revocation of an id that is already gone — so a
    /// journal tail that partially duplicates the snapshot replays
    /// cleanly. Artifacts written under *different* system parameters
    /// are rejected up front via [`SystemParams::fingerprint`], and a
    /// torn final journal write is truncated (see [`FileStore`]).
    ///
    /// ```rust
    /// use fe_protocol::{AuthenticationServer, BiometricDevice, SystemParams};
    /// use rand::SeedableRng;
    ///
    /// # fn main() -> Result<(), fe_protocol::ProtocolError> {
    /// let dir = std::env::temp_dir().join(format!("fe-recover-doc-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let params = SystemParams::insecure_test_defaults();
    /// let device = BiometricDevice::new(params.clone());
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    ///
    /// // First process lifetime: enroll one user, then "crash" (drop).
    /// let mut server: AuthenticationServer = AuthenticationServer::recover(params.clone(), &dir)?;
    /// let bio = params.sketch().line().random_vector(16, &mut rng);
    /// server.enroll(device.enroll("alice", &bio, &mut rng)?)?;
    /// drop(server);
    ///
    /// // Second lifetime: the journal replays the enrollment.
    /// let mut server: AuthenticationServer = AuthenticationServer::recover(params.clone(), &dir)?;
    /// assert_eq!(server.user_count(), 1);
    /// let probe = device.probe_sketch(&bio, &mut rng)?;
    /// assert!(server.begin_identification(&probe, &mut rng).is_ok());
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] / [`ProtocolError::Codec`] when the
    /// store cannot be opened or replayed.
    pub fn recover(params: SystemParams, dir: impl AsRef<Path>) -> Result<Self, ProtocolError> {
        let store = FileStore::open(dir, params.fingerprint())?;
        Self::recover_with_store(params, Box::new(store))
    }

    /// [`AuthenticationServer::recover`] over any [`EnrollmentStore`]
    /// backend (e.g. a [`MemoryStore`](crate::store::MemoryStore) in
    /// tests, or a custom replicated store).
    ///
    /// # Errors
    /// Propagates store load failures.
    pub fn recover_with_store(
        params: SystemParams,
        mut store: Box<dyn EnrollmentStore>,
    ) -> Result<Self, ProtocolError> {
        let events = store.load()?;
        let mut server = Self::from_params(params);
        let enrolls = events
            .iter()
            .filter(|e| matches!(e, LogEvent::Enroll(_)))
            .count();
        // Segment fast path: a checkpoint may have saved the index's
        // sealed columnar segments alongside the snapshot. Importing
        // them installs the first `preindexed` snapshot rows wholesale
        // (the snapshot streams records in index-id order, so segment
        // row `i` *is* snapshot row `i`); replay then skips the
        // per-row index insert for exactly that prefix. Purely an
        // accelerator — `None` at any step falls back to full replay.
        let mut preindexed = 0usize;
        if enrolls > 0 {
            if let Some(blob) = store.load_index_cache() {
                if let Some(covered) = server.index.import_segments(&blob) {
                    if covered <= enrolls {
                        preindexed = covered;
                    } else {
                        // A cache claiming more rows than the log holds
                        // cannot belong to it (contract violation by the
                        // store); discard and replay from scratch.
                        server.index = I::build(&server.params);
                    }
                }
            }
        }
        // Bulk-load hint: recovery knows the population size and sketch
        // dimension up front, so the index builds a pre-sized arena
        // instead of growing (and re-normalizing capacity) row by row.
        if let Some(LogEvent::Enroll(first)) =
            events.iter().find(|e| matches!(e, LogEvent::Enroll(_)))
        {
            server
                .index
                .reserve(enrolls - preindexed, first.helper.sketch.inner.len());
            server.records.reserve(enrolls);
            server.by_id.reserve(enrolls);
        }
        let mut replayed = 0usize;
        for event in events {
            match event {
                LogEvent::Enroll(record) => {
                    if !server.by_id.contains_key(&record.id) {
                        server.validate_enroll(&record)?;
                        server.apply_enroll_replayed(record, replayed < preindexed);
                        replayed += 1;
                    }
                }
                LogEvent::Revoke(id) => {
                    let _ = server.apply_revoke(&id);
                }
                // Audit record of a refused enrollment: nothing to
                // replay — the population never changed.
                LogEvent::EnrollRejected { .. } => {}
            }
        }
        // End any bulk-mode deferral the reserve hint started, so the
        // recovered population is published to lock-free readers.
        server.index.flush();
        server.store = Some(store);
        Ok(server)
    }
}

impl<I: SketchIndex> AuthenticationServer<I> {
    /// Creates an empty server around a caller-built index.
    ///
    /// The index must never have held records: record ids must mirror
    /// record slots from 0. A drained index (inserted-then-removed, so
    /// currently empty but with ids already assigned) passes this
    /// constructor's check but is caught by the id-mirror assertion on
    /// the first [`AuthenticationServer::enroll`].
    ///
    /// # Panics
    /// Panics if the index currently holds records.
    pub fn with_index(params: SystemParams, index: I) -> Self {
        assert!(index.is_empty(), "server index must start empty");
        AuthenticationServer {
            params,
            records: Vec::new(),
            by_id: HashMap::new(),
            index,
            pending: HashMap::new(),
            next_session: 1,
            session_stride: 1,
            lookups: AtomicU64::new(0),
            store: None,
        }
    }

    /// The system parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The sketch index (for diagnostics).
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Number of enrolled (non-revoked) users.
    pub fn user_count(&self) -> usize {
        self.by_id.len()
    }

    /// Restricts this server to the session ids
    /// `start, start + stride, start + 2·stride, …` so several server
    /// shards can issue globally-unique sessions without coordination.
    ///
    /// Must be called before any challenge is issued.
    ///
    /// # Panics
    /// Panics if `stride == 0`, `start == 0` (session 0 is reserved) or
    /// challenges were already issued.
    pub fn set_session_namespace(&mut self, start: SessionId, stride: u64) {
        assert!(stride >= 1, "stride must be at least 1");
        assert!(start >= 1, "session ids start at 1");
        assert!(
            self.pending.is_empty() && self.next_session == 1,
            "session namespace must be set before issuing challenges"
        );
        self.next_session = start;
        self.session_stride = stride;
    }

    /// All enrolled helper data, in enrollment order (needed by the
    /// normal-approach baseline, which ships every record to the device).
    pub fn all_helpers(&self) -> Vec<(UserId, WireHelper)> {
        self.records
            .iter()
            .flatten()
            .map(|r| (r.id.clone(), r.helper.clone()))
            .collect()
    }

    /// Full record view — id, stored public key and helper data — in
    /// enrollment order. The normal-approach baseline verifies responses
    /// against these stored keys.
    pub fn enrolled_records(&self) -> Vec<(UserId, DsaVerifyingKey, WireHelper)> {
        self.records
            .iter()
            .flatten()
            .map(|r| (r.id.clone(), r.public_key.clone(), r.helper.clone()))
            .collect()
    }

    /// Visits records by reference in enrollment order, stopping at the
    /// first `Some` returned by the visitor (avoids cloning helper data
    /// in the O(N) baseline).
    pub fn visit_records<T>(
        &self,
        mut visit: impl FnMut(&UserId, &DsaVerifyingKey, &WireHelper) -> Option<T>,
    ) -> Option<T> {
        self.records
            .iter()
            .flatten()
            .find_map(|r| visit(&r.id, &r.public_key, &r.helper))
    }

    /// Revokes a user: the record and its sketch are removed and every
    /// outstanding challenge for the user is cancelled. One of the
    /// paper's motivating problems is that a *biometric* is not revocable
    /// once leaked — but the *enrollment* is: after revocation the stored
    /// helper data is gone and the user can re-enroll, obtaining a fresh
    /// key pair from the same biometric.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownUser`] if the id is not enrolled.
    pub fn revoke(&mut self, id: &str) -> Result<(), ProtocolError> {
        if !self.by_id.contains_key(id) {
            return Err(ProtocolError::UnknownUser(id.to_string()));
        }
        // Write-ahead: the journal accepts the revocation before memory
        // forgets the record.
        if let Some(store) = &mut self.store {
            store.append(LogEventRef::Revoke(id))?;
        }
        assert!(self.apply_revoke(id), "validated id must be revocable");
        Ok(())
    }

    /// In-memory revocation; `false` when the id is unknown (replay
    /// tolerance). Infallible by construction for validated ids.
    pub(crate) fn apply_revoke(&mut self, id: &str) -> bool {
        let Some(idx) = self.by_id.remove(id) else {
            return false;
        };
        self.records[idx] = None;
        self.index.remove(idx);
        self.pending.retain(|_, p| p.record_idx != idx);
        true
    }

    /// Checks everything that could make [`AuthenticationServer::enroll`]
    /// fail, so the journal append can safely precede the mutation.
    pub(crate) fn validate_enroll(&self, record: &EnrollmentRecord) -> Result<(), ProtocolError> {
        if self.by_id.contains_key(&record.id) {
            return Err(ProtocolError::DuplicateUser(record.id.clone()));
        }
        if record.public_key.is_empty() {
            return Err(ProtocolError::Malformed("empty public key"));
        }
        // The index panics on sketches it cannot store (mixed
        // dimensions, or shorter than a bucket index's prefix), and
        // validation runs *before* the write-ahead journal append — an
        // unstorable record must be refused here, not journaled and
        // then panicked on (which would poison every future recovery
        // of the store). This also means a journal written before the
        // one-dimension contract (mixed-dimension enrollments) now
        // fails recovery with this clean error instead of replaying:
        // no index can hold such a population any more.
        if !self.index.sketch_dim_ok(record.helper.sketch.inner.len()) {
            return Err(ProtocolError::Malformed("sketch dimension mismatch"));
        }
        Ok(())
    }

    /// In-memory enrollment of a pre-validated record.
    pub(crate) fn apply_enroll(&mut self, record: EnrollmentRecord) {
        self.apply_enroll_replayed(record, false);
    }

    /// [`AuthenticationServer::apply_enroll`] with recovery's segment
    /// fast path: when `preindexed`, the sketch row is already in the
    /// index (installed wholesale from an imported segment cache) and
    /// must not be inserted twice — the id-mirror contract is checked
    /// against the cached row instead.
    fn apply_enroll_replayed(&mut self, record: EnrollmentRecord, preindexed: bool) {
        let public_key = DsaVerifyingKey::from_bytes(&record.public_key);
        let idx = self.records.len();
        if preindexed {
            debug_assert!(
                {
                    // The arena stores coordinates canonically reduced
                    // into `[0, ka)`; compare modulo the ring, not raw.
                    let ka = self.params.sketch().line().interval_len() as i64;
                    let mut row = Vec::new();
                    self.index.copy_row_into(idx, &mut row)
                        && row.len() == record.helper.sketch.inner.len()
                        && row
                            .iter()
                            .zip(&record.helper.sketch.inner)
                            .all(|(&got, &want)| got.rem_euclid(ka) == want.rem_euclid(ka))
                },
                "segment cache row must mirror the replayed record"
            );
        } else {
            let index_id = self.index.insert(&record.helper.sketch.inner);
            // Release-enforced: an index that had records inserted and
            // then removed passes the `is_empty` construction check but
            // assigns ids offset from the record slots — that must fail
            // loudly at the first enrollment, not corrupt lookups
            // silently.
            assert_eq!(index_id, idx, "index ids must mirror record slots");
        }
        self.by_id.insert(record.id.clone(), idx);
        self.records.push(Some(StoredRecord {
            id: record.id,
            public_key,
            helper: record.helper,
        }));
    }

    /// Stores an enrollment record (Fig. 1, final step). With a store
    /// attached, the record is journaled (write-ahead) before the
    /// in-memory state changes, so an acknowledged enrollment survives a
    /// crash.
    ///
    /// # Errors
    /// [`ProtocolError::DuplicateUser`] if the id is taken;
    /// [`ProtocolError::Malformed`] if the public key fails to parse;
    /// [`ProtocolError::Storage`] when journaling fails (the server
    /// state is then unchanged).
    pub fn enroll(&mut self, record: EnrollmentRecord) -> Result<(), ProtocolError> {
        if self.params.dedup_policy() == DedupPolicy::RejectMatching {
            return self.enroll_unique(record);
        }
        self.validate_enroll(&record)?;
        if let Some(store) = &mut self.store {
            store.append(LogEventRef::Enroll(&record))?;
        }
        self.apply_enroll(record);
        Ok(())
    }

    /// Uniqueness-checked enrollment: stores the record only when **no**
    /// enrolled sketch matches it (conditions (1)–(4)), closing the dedup
    /// gap where the same biometric silently enrolls under several ids.
    /// The duplicate scan uses the find-at-most-1 kernel, so it costs no
    /// more than one identification lookup. A refusal is journaled as a
    /// [`LogEvent::EnrollRejected`] audit record (replayed as a no-op).
    ///
    /// Plain [`AuthenticationServer::enroll`] routes here when the
    /// parameters carry [`DedupPolicy::RejectMatching`].
    ///
    /// # Errors
    /// [`ProtocolError::DuplicateBiometric`] (carrying the already
    /// enrolled id) when a matching record exists; otherwise as
    /// [`AuthenticationServer::enroll`].
    pub fn enroll_unique(&mut self, record: EnrollmentRecord) -> Result<(), ProtocolError> {
        self.validate_enroll(&record)?;
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let hits = self.index.lookup_at_most(&record.helper.sketch.inner, 1);
        if let Some(&idx) = hits.first() {
            let matched = self.records[idx]
                .as_ref()
                .expect("index only matches live records")
                .id
                .clone();
            if let Some(store) = &mut self.store {
                store.append(LogEventRef::EnrollRejected {
                    id: &record.id,
                    matched: &matched,
                })?;
            }
            return Err(ProtocolError::DuplicateBiometric(matched));
        }
        if let Some(store) = &mut self.store {
            store.append(LogEventRef::Enroll(&record))?;
        }
        self.apply_enroll(record);
        Ok(())
    }

    /// Bounded sketch lookup: the record slots of at most `budget`
    /// matches, in enrollment order (the find-at-most-K kernel — the
    /// sweep stops as soon as the budget is collected). `&self`: safe
    /// under a shared read lock.
    pub fn match_at_most(&self, probe: &[i64], budget: usize) -> Vec<usize> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.index.lookup_at_most(probe, budget)
    }

    /// The enrolled id living in a record slot (`None` for tombstoned or
    /// out-of-range slots) — lets concurrent wrappers resolve slots
    /// found under a shared lock.
    pub fn user_at(&self, record_idx: usize) -> Option<&str> {
        self.records
            .get(record_idx)?
            .as_ref()
            .map(|r| r.id.as_str())
    }

    /// Reset / account-recovery lookup: succeeds only when **exactly
    /// one** enrolled record matches the probe, returning its id. Uses a
    /// find-at-most-2 sweep, so disambiguation costs the same as a plain
    /// lookup — the scan cancels as soon as a second match is seen.
    /// `&self`: safe under a shared read lock.
    ///
    /// # Errors
    /// [`ProtocolError::NoMatch`] when nothing matches;
    /// [`ProtocolError::AmbiguousMatch`] when two or more records match
    /// (resetting any one of them would be guessing).
    pub fn reset(&self, probe: &[i64]) -> Result<UserId, ProtocolError> {
        match *self.match_at_most(probe, 2).as_slice() {
            [] => Err(ProtocolError::NoMatch),
            [idx] => Ok(self.records[idx]
                .as_ref()
                .expect("index only matches live records")
                .id
                .clone()),
            _ => Err(ProtocolError::AmbiguousMatch),
        }
    }

    /// Targeted (verification-mode) sketch check: does the probe match
    /// the record of `claimed_id` specifically? A one-row subset-masked
    /// sweep — other users' records are never compared, so the cost is
    /// independent of the population. `&self`: safe under a shared read
    /// lock.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownUser`] for unenrolled ids.
    pub fn authenticate_claimed(
        &self,
        claimed_id: &str,
        probe: &[i64],
    ) -> Result<bool, ProtocolError> {
        let idx = *self
            .by_id
            .get(claimed_id)
            .ok_or_else(|| ProtocolError::UnknownUser(claimed_id.to_string()))?;
        self.lookups.fetch_add(1, Ordering::Relaxed);
        Ok(!self.index.lookup_in_subset(probe, &[idx], 1).is_empty())
    }

    /// Subset uniqueness check: `Ok(true)` when the probe matches **none**
    /// of the given users' records (a find-at-most-1 sweep masked to
    /// exactly that subset — e.g. an orb/site checking a new capture
    /// against only its locally enrolled population). `&self`: safe
    /// under a shared read lock.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownUser`] when any listed id is not
    /// enrolled.
    pub fn check_local_uniqueness(
        &self,
        probe: &[i64],
        ids: &[UserId],
    ) -> Result<bool, ProtocolError> {
        let mut subset = Vec::with_capacity(ids.len());
        for id in ids {
            let idx = self
                .by_id
                .get(id)
                .ok_or_else(|| ProtocolError::UnknownUser(id.clone()))?;
            subset.push(*idx);
        }
        self.lookups.fetch_add(1, Ordering::Relaxed);
        Ok(self.index.lookup_in_subset(probe, &subset, 1).is_empty())
    }

    /// Sketch lookup only (conditions (1)–(4)), without issuing a
    /// challenge. `&self`: safe under a shared read lock. Returns the
    /// matched record slot.
    pub fn lookup_probe(&self, probe: &[i64]) -> Option<usize> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.index.lookup(probe)
    }

    /// Batch sketch lookup: resolves many probes in one call (through
    /// the index's batch path, which parallelizes for sharded indexes).
    /// `&self`: safe under a shared read lock.
    pub fn lookup_probe_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<usize>> {
        self.lookups
            .fetch_add(probes.len() as u64, Ordering::Relaxed);
        self.index.lookup_batch(probes)
    }

    /// Issues a challenge for a record found via
    /// [`AuthenticationServer::lookup_probe`], re-validating that the
    /// record is still live (it can be revoked between a shared-lock
    /// lookup and an exclusive-lock challenge issue). Returns `None` for
    /// revoked or out-of-range slots.
    pub fn challenge_for_record<R: RngCore + ?Sized>(
        &mut self,
        record_idx: usize,
        rng: &mut R,
    ) -> Option<IdentChallenge> {
        match self.records.get(record_idx) {
            Some(Some(_)) => Some(self.issue_challenge(record_idx, rng)),
            _ => None,
        }
    }

    /// Identification phase 1 (Fig. 3): match the probe sketch against
    /// the enrolled records using conditions (1)–(4), and issue a
    /// challenge for the matched record.
    ///
    /// # Errors
    /// [`ProtocolError::NoMatch`] when no record matches (`⊥`).
    pub fn begin_identification<R: RngCore + ?Sized>(
        &mut self,
        probe: &[i64],
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        let record_idx = self.lookup_probe(probe).ok_or(ProtocolError::NoMatch)?;
        Ok(self.issue_challenge(record_idx, rng))
    }

    /// Batch identification phase 1: resolves a whole batch of probe
    /// sketches in one call and issues one challenge per matched probe.
    /// Results are position-aligned with `probes`.
    ///
    /// This is the entry point that lets a server amortize both the
    /// index traversal (batched, possibly parallel) and — through
    /// [`crate::concurrent::SharedServer::identify_batch`] — one lock
    /// acquisition over many concurrent devices.
    pub fn identify_batch<R: RngCore + ?Sized>(
        &mut self,
        probes: &[Vec<i64>],
        rng: &mut R,
    ) -> Vec<Result<IdentChallenge, ProtocolError>> {
        let matches = self.lookup_probe_batch(probes);
        matches
            .into_iter()
            .map(|m| {
                m.map(|idx| self.issue_challenge(idx, rng))
                    .ok_or(ProtocolError::NoMatch)
            })
            .collect()
    }

    /// Verification phase 1 (the verification-mode protocol): the user
    /// *claims* an identity; the server retrieves that record directly and
    /// issues a challenge — the 1-to-1 path.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownUser`] for unenrolled ids.
    pub fn begin_verification<R: RngCore + ?Sized>(
        &mut self,
        claimed_id: &str,
        rng: &mut R,
    ) -> Result<IdentChallenge, ProtocolError> {
        let record_idx = *self
            .by_id
            .get(claimed_id)
            .ok_or_else(|| ProtocolError::UnknownUser(claimed_id.to_string()))?;
        Ok(self.issue_challenge(record_idx, rng))
    }

    fn issue_challenge<R: RngCore + ?Sized>(
        &mut self,
        record_idx: usize,
        rng: &mut R,
    ) -> IdentChallenge {
        let session = self.next_session;
        self.next_session += self.session_stride;
        let challenge: u64 = rng.gen();
        self.pending.insert(
            session,
            PendingChallenge {
                record_idx,
                challenge,
            },
        );
        let record = self.records[record_idx]
            .as_ref()
            .expect("challenges are only issued for live records");
        IdentChallenge {
            session,
            helper: record.helper.clone(),
            challenge,
        }
    }

    /// Phase 2 (both modes): verify the signed `(c, a)` response. The
    /// challenge is consumed whether or not verification succeeds —
    /// a response can never be replayed.
    ///
    /// # Errors
    /// [`ProtocolError::UnknownSession`] for unknown/expired sessions;
    /// [`ProtocolError::Malformed`] if the signature bytes do not parse.
    pub fn finish_identification(
        &mut self,
        response: &IdentResponse,
    ) -> Result<IdentOutcome, ProtocolError> {
        let pending = self
            .pending
            .remove(&response.session)
            .ok_or(ProtocolError::UnknownSession)?;
        // A user can be revoked between challenge and response.
        let record = self.records[pending.record_idx]
            .as_ref()
            .ok_or(ProtocolError::UnknownSession)?;
        let signature = DsaSignature::from_bytes(&response.signature, self.params.dsa_params())
            .ok_or(ProtocolError::Malformed("signature length"))?;
        let msg = challenge_message(response.session, pending.challenge, response.nonce);
        let dsa = self.params.dsa();
        if dsa.verify(&record.public_key, &msg, &signature) {
            Ok(IdentOutcome::Identified(record.id.clone()))
        } else {
            Ok(IdentOutcome::Rejected)
        }
    }

    /// Cancels an outstanding challenge without verifying a response
    /// (timeout handling: a device that never answers must not leave
    /// its session consumable forever). Returns `false` for unknown or
    /// already-consumed sessions.
    pub fn cancel_session(&mut self, session: SessionId) -> bool {
        self.pending.remove(&session).is_some()
    }

    /// Number of sketch lookups performed (diagnostics).
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Serializes every live record with the wire codec, for durable
    /// storage. Only public data leaves the server — exactly what an
    /// insider adversary could read anyway (Sec. VI-B threat model).
    pub fn export_records(&self) -> Vec<Vec<u8>> {
        self.records
            .iter()
            .flatten()
            .map(|r| {
                crate::wire::encode(&crate::wire::Message::Enroll(EnrollmentRecord {
                    id: r.id.clone(),
                    public_key: r.public_key.to_bytes(self.params.dsa_params()),
                    helper: r.helper.clone(),
                }))
            })
            .collect()
    }

    /// Restores records exported by [`AuthenticationServer::export_records`]
    /// into this server, returning how many were imported.
    ///
    /// # Errors
    /// [`ProtocolError::Malformed`] on undecodable blobs (import stops at
    /// the first bad blob); [`ProtocolError::DuplicateUser`] if an id is
    /// already enrolled.
    pub fn import_records(&mut self, blobs: &[Vec<u8>]) -> Result<usize, ProtocolError> {
        let mut imported = 0;
        for blob in blobs {
            match crate::wire::decode(blob)? {
                crate::wire::Message::Enroll(record) => {
                    self.enroll(record)?;
                    imported += 1;
                }
                _ => return Err(ProtocolError::Malformed("expected enrollment record")),
            }
        }
        Ok(imported)
    }

    /// Attaches a durable store to an **empty** server: subsequent
    /// enroll/revoke calls are journaled through it. The store must be
    /// empty too — to resume from a store that already holds events,
    /// use [`AuthenticationServer::recover`] /
    /// [`AuthenticationServer::recover_with_store`] instead (silently
    /// appending after unreplayed history would corrupt the next
    /// recovery).
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] when the store already holds events;
    /// load failures pass through.
    ///
    /// # Panics
    /// Panics if the server already holds records (their enrollment
    /// would be missing from the journal, so a recovery would silently
    /// drop them).
    pub fn attach_store(
        &mut self,
        mut store: Box<dyn EnrollmentStore>,
    ) -> Result<(), ProtocolError> {
        assert!(
            self.records.is_empty(),
            "attach_store requires an empty server (existing records would not be journaled)"
        );
        let persisted = store.load()?.len();
        if persisted != 0 {
            return Err(ProtocolError::Storage(format!(
                "store already holds {persisted} event(s); use recover() to adopt them"
            )));
        }
        self.store = Some(store);
        Ok(())
    }

    /// The attached enrollment store, if any (for journal diagnostics).
    pub fn store(&self) -> Option<&dyn EnrollmentStore> {
        self.store.as_deref()
    }

    /// Whether `id` is currently enrolled — pre-validation for journal
    /// appends that happen outside the state lock (see
    /// [`crate::concurrent::SharedServer`]).
    pub(crate) fn is_enrolled(&self, id: &str) -> bool {
        self.by_id.contains_key(id)
    }

    /// The record slot a user id currently occupies (`None` when not
    /// enrolled) — the inverse of [`AuthenticationServer::user_at`],
    /// for concurrent wrappers that scan lock-free by slot.
    pub(crate) fn slot_of(&self, id: &str) -> Option<usize> {
        self.by_id.get(id).copied()
    }

    /// Detaches and returns the enrollment store, leaving the server
    /// store-less. The sharded server uses this to move each shard's
    /// journal *outside* the state lock so appends (and their fsyncs)
    /// never run inside a critical section a reader could observe.
    pub(crate) fn detach_store(&mut self) -> Option<Box<dyn EnrollmentStore>> {
        self.store.take()
    }

    /// The index's structural generation (see
    /// [`SketchIndex::generation`]): lock-free readers capture this
    /// before a scan and re-check it under the lock to detect a
    /// compaction/renumbering that would invalidate raw record ids.
    pub fn index_generation(&self) -> u64 {
        self.index.generation()
    }

    /// Total record slots held, live **and** tombstoned — what revocation
    /// leaves behind until [`AuthenticationServer::compact`] runs.
    pub fn record_slots(&self) -> usize {
        self.records.len()
    }

    /// Reclaims tombstone slots left by revocation: live records are
    /// renumbered densely (preserving enrollment order), the sketch
    /// index is compacted in lockstep, and outstanding challenge
    /// sessions are remapped — they keep working across the compaction.
    /// Returns the number of slots reclaimed.
    ///
    /// Without this, a long-lived server's record table and index grow
    /// with the number of enrollments *ever*, not the population
    /// currently live. It is exposed separately from
    /// [`AuthenticationServer::checkpoint`] for in-memory deployments,
    /// but checkpointing is the natural trigger: the snapshot pass
    /// rewrites every live record anyway.
    pub fn compact(&mut self) -> usize {
        let reclaimed = self.records.len() - self.by_id.len();
        if reclaimed == 0 {
            return 0;
        }
        let mapping: HashMap<usize, usize> = self.index.compact().into_iter().collect();
        let old_records = std::mem::take(&mut self.records);
        for (old_idx, slot) in old_records.into_iter().enumerate() {
            let Some(record) = slot else { continue };
            let new_idx = *mapping
                .get(&old_idx)
                .expect("live record must appear in the index compaction mapping");
            // Both structures drop tombstones in ascending order, so the
            // index's renumbering must equal the record table's.
            assert_eq!(
                new_idx,
                self.records.len(),
                "index compaction must renumber densely in enrollment order"
            );
            self.by_id.insert(record.id.clone(), new_idx);
            self.records.push(Some(record));
        }
        for pending in self.pending.values_mut() {
            pending.record_idx = *mapping
                .get(&pending.record_idx)
                .expect("pending challenges only reference live records");
        }
        reclaimed
    }

    /// Every live record re-assembled as the wire-shaped
    /// [`EnrollmentRecord`] (public data only), in enrollment order —
    /// the snapshot payload.
    pub fn live_enrollment_records(&self) -> Vec<EnrollmentRecord> {
        self.records
            .iter()
            .flatten()
            .map(|r| EnrollmentRecord {
                id: r.id.clone(),
                public_key: r.public_key.to_bytes(self.params.dsa_params()),
                helper: r.helper.clone(),
            })
            .collect()
    }

    /// Compacts in memory, then (with a store attached) writes a fresh
    /// snapshot of the live population and truncates the journal —
    /// bounding storage, recovery time *and* in-memory tombstone growth
    /// in one pass. Returns the number of record slots reclaimed.
    ///
    /// Snapshot rows are **streamed** out of the record table
    /// ([`crate::store::SnapshotRow`] borrows the id and helper data),
    /// so a checkpoint never clones the enrolled population into an
    /// intermediate vector — the only per-row materialization is the
    /// serialized public key.
    ///
    /// # Errors
    /// [`ProtocolError::Storage`] when the snapshot cannot be written;
    /// the in-memory compaction still took effect (it is not undone),
    /// and the previous snapshot + journal remain authoritative on disk.
    pub fn checkpoint(&mut self) -> Result<usize, ProtocolError> {
        let reclaimed = self.compact();
        if let Some(mut store) = self.store.take() {
            let result = self.write_snapshot(&mut *store);
            self.store = Some(store);
            result?;
        }
        Ok(reclaimed)
    }

    /// [`AuthenticationServer::checkpoint`] against an *external* store
    /// — the sharded server keeps each shard's journal outside the
    /// state lock (see [`crate::concurrent::SharedServer`]) and hands
    /// it in here while holding both.
    ///
    /// # Errors
    /// As [`AuthenticationServer::checkpoint`].
    pub(crate) fn checkpoint_into(
        &mut self,
        store: &mut dyn EnrollmentStore,
    ) -> Result<usize, ProtocolError> {
        let reclaimed = self.compact();
        self.write_snapshot(store)?;
        Ok(reclaimed)
    }

    /// The snapshot pass shared by both checkpoint entry points: the
    /// streamed [`SnapshotRow`] rewrite, then — when the index can
    /// export one — the sealed-segment sidecar bound to that snapshot.
    /// Must run *after* [`AuthenticationServer::compact`], which is
    /// what makes snapshot row `i` and index row `i` the same record
    /// (the coherence the segment fast path in
    /// [`AuthenticationServer::recover_with_store`] relies on).
    fn write_snapshot(&self, store: &mut dyn EnrollmentStore) -> Result<(), ProtocolError> {
        let count = self.by_id.len();
        let dsa_params = self.params.dsa_params();
        let mut rows = self.records.iter().flatten().map(|r| SnapshotRow {
            id: &r.id,
            public_key: r.public_key.to_bytes(dsa_params),
            helper: &r.helper,
        });
        store.compact(count, &mut rows)?;
        if let Some(blob) = self.index.export_segments() {
            store.save_index_cache(&blob)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IndexConfig;
    use crate::BiometricDevice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(users: usize) -> (BiometricDevice, AuthenticationServer, Vec<Vec<i64>>, StdRng) {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut server = AuthenticationServer::new(params.clone());
        let mut rng = StdRng::seed_from_u64(77_000 + users as u64);
        let mut bios = Vec::new();
        for u in 0..users {
            let bio = params.sketch().line().random_vector(48, &mut rng);
            let record = device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap();
            server.enroll(record).unwrap();
            bios.push(bio);
        }
        (device, server, bios, rng)
    }

    fn noisy(bio: &[i64], rng: &mut StdRng) -> Vec<i64> {
        use rand::Rng;
        bio.iter()
            .map(|&x| x + rng.gen_range(-100i64..=100))
            .collect()
    }

    #[test]
    fn full_identification_happy_path() {
        let (device, mut server, bios, mut rng) = setup(10);
        for (u, bio) in bios.iter().enumerate() {
            let reading = noisy(bio, &mut rng);
            let probe = device.probe_sketch(&reading, &mut rng).unwrap();
            let chal = server.begin_identification(&probe, &mut rng).unwrap();
            let resp = device.respond(&reading, &chal, &mut rng).unwrap();
            let outcome = server.finish_identification(&resp).unwrap();
            assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
        }
    }

    #[test]
    fn generic_servers_identify_across_index_backends() {
        // The same protocol flow works with every index type the server
        // can build from params — including the sharded ones.
        let params = SystemParams::insecure_test_defaults()
            .with_index_config(IndexConfig::ShardedScan { shards: 3 });
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(77_500);

        fn run<I: SketchIndex>(
            mut server: AuthenticationServer<I>,
            device: &BiometricDevice,
            rng: &mut StdRng,
        ) {
            let params = server.params().clone();
            let mut bios = Vec::new();
            for u in 0..6 {
                let bio = params.sketch().line().random_vector(48, rng);
                server
                    .enroll(device.enroll(&format!("user-{u}"), &bio, rng).unwrap())
                    .unwrap();
                bios.push(bio);
            }
            for (u, bio) in bios.iter().enumerate() {
                use rand::Rng;
                let reading: Vec<i64> = bio
                    .iter()
                    .map(|&x| x + rng.gen_range(-90i64..=90))
                    .collect();
                let probe = device.probe_sketch(&reading, rng).unwrap();
                let chal = server.begin_identification(&probe, rng).unwrap();
                let resp = device.respond(&reading, &chal, rng).unwrap();
                let outcome = server.finish_identification(&resp).unwrap();
                assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
            }
        }

        run(
            AuthenticationServer::<ScanIndex>::from_params(params.clone()),
            &device,
            &mut rng,
        );
        run(
            AuthenticationServer::<BucketIndex>::from_params(params.clone()),
            &device,
            &mut rng,
        );
        run(
            AuthenticationServer::<ShardedIndex<ScanIndex>>::from_params(params.clone()),
            &device,
            &mut rng,
        );
        run(
            AuthenticationServer::<ShardedIndex<BucketIndex>>::from_params(params),
            &device,
            &mut rng,
        );
    }

    #[test]
    fn identify_batch_matches_single_path() {
        let (device, mut server, bios, mut rng) = setup(8);
        let mut readings = Vec::new();
        let mut probes = Vec::new();
        for bio in &bios {
            let reading = noisy(bio, &mut rng);
            probes.push(device.probe_sketch(&reading, &mut rng).unwrap());
            readings.push(reading);
        }
        // One impostor probe in the middle of the batch.
        let stranger = server.params().sketch().line().random_vector(48, &mut rng);
        probes.insert(3, device.probe_sketch(&stranger, &mut rng).unwrap());

        let results = server.identify_batch(&probes, &mut rng);
        assert_eq!(results.len(), probes.len());
        assert_eq!(results[3].as_ref().unwrap_err(), &ProtocolError::NoMatch);
        for (i, result) in results.into_iter().enumerate() {
            if i == 3 {
                continue;
            }
            let u = if i < 3 { i } else { i - 1 };
            let chal = result.unwrap();
            let resp = device.respond(&readings[u], &chal, &mut rng).unwrap();
            let outcome = server.finish_identification(&resp).unwrap();
            assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
        }
        // Batch lookups count toward the diagnostic counter.
        assert_eq!(server.lookup_count(), 9);
    }

    #[test]
    fn session_namespace_interleaves() {
        let (device, _server, bios, mut rng) = setup(1);
        let params = SystemParams::insecure_test_defaults();
        let mut server = AuthenticationServer::new(params);
        server.set_session_namespace(2, 3);
        let record = device.enroll("user-0", &bios[0], &mut rng).unwrap();
        server.enroll(record).unwrap();
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let c1 = server.begin_identification(&probe, &mut rng).unwrap();
        let c2 = server.begin_identification(&probe, &mut rng).unwrap();
        assert_eq!((c1.session, c2.session), (2, 5));
        // Responses still verify under namespaced sessions.
        let resp = device.respond(&reading, &c2, &mut rng).unwrap();
        assert!(server.finish_identification(&resp).unwrap().is_identified());
    }

    #[test]
    #[should_panic(expected = "before issuing challenges")]
    fn session_namespace_rejected_after_first_challenge() {
        let (device, mut server, bios, mut rng) = setup(1);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        server.begin_identification(&probe, &mut rng).unwrap();
        let _ = device;
        server.set_session_namespace(1, 2);
    }

    #[test]
    fn cancelled_session_cannot_be_answered() {
        let (device, mut server, bios, mut rng) = setup(2);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        assert!(server.cancel_session(chal.session));
        assert!(!server.cancel_session(chal.session), "already cancelled");
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap_err(),
            ProtocolError::UnknownSession
        );
    }

    #[test]
    #[should_panic(expected = "index ids must mirror record slots")]
    fn drained_index_is_caught_at_first_enroll() {
        // A drained index passes the is_empty construction check but has
        // already assigned id 0; the id-mirror assert must fire loudly
        // on the first enrollment (release builds included).
        let params = SystemParams::insecure_test_defaults();
        let mut index = ScanIndex::new(100, 400);
        let stale = index.insert(&[0; 16]);
        index.remove(stale);
        let mut server = AuthenticationServer::with_index(params.clone(), index);
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(1);
        let bio = params.sketch().line().random_vector(16, &mut rng);
        let _ = server.enroll(device.enroll("x", &bio, &mut rng).unwrap());
    }

    #[test]
    fn challenge_for_record_revalidates_liveness() {
        let (device, mut server, bios, mut rng) = setup(2);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let idx = server.lookup_probe(&probe).unwrap();
        server.revoke("user-0").unwrap();
        // The slot was found before revocation; issuing must refuse.
        assert!(server.challenge_for_record(idx, &mut rng).is_none());
        assert!(server.challenge_for_record(999, &mut rng).is_none());
    }

    #[test]
    fn impostor_gets_no_match() {
        let (device, mut server, _bios, mut rng) = setup(5);
        let stranger = server.params().sketch().line().random_vector(48, &mut rng);
        let probe = device.probe_sketch(&stranger, &mut rng).unwrap();
        assert_eq!(
            server.begin_identification(&probe, &mut rng).unwrap_err(),
            ProtocolError::NoMatch
        );
    }

    #[test]
    fn verification_mode_with_claimed_identity() {
        let (device, mut server, bios, mut rng) = setup(5);
        let reading = noisy(&bios[3], &mut rng);
        let chal = server.begin_verification("user-3", &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap().identity(),
            Some("user-3")
        );
        // Unknown identity is rejected upfront.
        assert!(matches!(
            server.begin_verification("nobody", &mut rng),
            Err(ProtocolError::UnknownUser(_))
        ));
    }

    #[test]
    fn wrong_user_cannot_answer_verification_challenge() {
        let (device, mut server, bios, mut rng) = setup(5);
        // Claim user-2 but present user-4's biometric: Rep fails on the
        // device (wrong helper data).
        let chal = server.begin_verification("user-2", &mut rng).unwrap();
        let reading = noisy(&bios[4], &mut rng);
        assert!(device.respond(&reading, &chal, &mut rng).is_err());
    }

    #[test]
    fn duplicate_enrollment_rejected() {
        let (device, mut server, bios, mut rng) = setup(2);
        let record = device.enroll("user-0", &bios[0], &mut rng).unwrap();
        assert!(matches!(
            server.enroll(record),
            Err(ProtocolError::DuplicateUser(_))
        ));
    }

    #[test]
    fn enroll_unique_refuses_matching_biometric_and_journals_it() {
        let (device, mut server, bios, mut rng) = setup(0);
        server
            .attach_store(Box::new(crate::store::MemoryStore::new()))
            .unwrap();
        let _ = bios;
        let params = server.params().clone();
        let bio = params.sketch().line().random_vector(48, &mut rng);
        server
            .enroll_unique(device.enroll("alice", &bio, &mut rng).unwrap())
            .unwrap();

        // Same biometric (within noise), fresh id: refused, with the
        // matched user named, and the refusal lands in the journal.
        let again = noisy(&bio, &mut rng);
        let dup = device.enroll("alice-2", &again, &mut rng).unwrap();
        assert_eq!(
            server.enroll_unique(dup).unwrap_err(),
            ProtocolError::DuplicateBiometric("alice".into())
        );
        assert_eq!(server.user_count(), 1);
        assert_eq!(server.store().unwrap().journal_len(), 2);

        // A genuinely different biometric is accepted.
        let other = params.sketch().line().random_vector(48, &mut rng);
        server
            .enroll_unique(device.enroll("bob", &other, &mut rng).unwrap())
            .unwrap();
        assert_eq!(server.user_count(), 2);
    }

    #[test]
    fn dedup_policy_routes_plain_enroll() {
        use crate::params::DedupPolicy;
        let params =
            SystemParams::insecure_test_defaults().with_dedup_policy(DedupPolicy::RejectMatching);
        let device = BiometricDevice::new(params.clone());
        let mut server = AuthenticationServer::new(params.clone());
        let mut rng = StdRng::seed_from_u64(86_000);
        let bio = params.sketch().line().random_vector(48, &mut rng);
        server
            .enroll(device.enroll("alice", &bio, &mut rng).unwrap())
            .unwrap();
        let dup = device
            .enroll("alice-2", &noisy(&bio, &mut rng), &mut rng)
            .unwrap();
        assert!(matches!(
            server.enroll(dup),
            Err(ProtocolError::DuplicateBiometric(_))
        ));
        // The permissive default accepts the same double-enrollment.
        let mut permissive = AuthenticationServer::new(SystemParams::insecure_test_defaults());
        permissive
            .enroll(device.enroll("alice", &bio, &mut rng).unwrap())
            .unwrap();
        permissive
            .enroll(
                device
                    .enroll("alice-2", &noisy(&bio, &mut rng), &mut rng)
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(permissive.user_count(), 2);
    }

    #[test]
    fn reset_requires_exactly_one_match() {
        let (device, mut server, bios, mut rng) = setup(3);
        // One clean match → the id.
        let probe = device
            .probe_sketch(&noisy(&bios[1], &mut rng), &mut rng)
            .unwrap();
        assert_eq!(server.reset(&probe).unwrap(), "user-1");
        // No match → NoMatch.
        let stranger = server.params().sketch().line().random_vector(48, &mut rng);
        let probe = device.probe_sketch(&stranger, &mut rng).unwrap();
        assert_eq!(server.reset(&probe).unwrap_err(), ProtocolError::NoMatch);
        // Enroll the same biometric under a second id (permissive
        // default): a probe that matches both is ambiguous.
        let record = device
            .enroll("user-1-dup", &noisy(&bios[1], &mut rng), &mut rng)
            .unwrap();
        server.enroll(record).unwrap();
        let probe = device.probe_sketch(&bios[1], &mut rng).unwrap();
        assert_eq!(
            server.reset(&probe).unwrap_err(),
            ProtocolError::AmbiguousMatch
        );
    }

    #[test]
    fn authenticate_claimed_is_targeted() {
        let (device, server, bios, mut rng) = setup(4);
        let probe = device
            .probe_sketch(&noisy(&bios[2], &mut rng), &mut rng)
            .unwrap();
        assert!(server.authenticate_claimed("user-2", &probe).unwrap());
        // Matching SOME user is not enough: the claim is checked against
        // exactly the claimed record.
        assert!(!server.authenticate_claimed("user-0", &probe).unwrap());
        assert!(matches!(
            server.authenticate_claimed("nobody", &probe),
            Err(ProtocolError::UnknownUser(_))
        ));
    }

    #[test]
    fn check_local_uniqueness_masks_to_subset() {
        let (device, server, bios, mut rng) = setup(4);
        let probe = device
            .probe_sketch(&noisy(&bios[3], &mut rng), &mut rng)
            .unwrap();
        let others: Vec<UserId> = vec!["user-0".into(), "user-1".into()];
        // user-3's biometric is unique among {0, 1}…
        assert!(server.check_local_uniqueness(&probe, &others).unwrap());
        // …but not once user-3 joins the subset.
        let all: Vec<UserId> = (0..4).map(|u| format!("user-{u}")).collect();
        assert!(!server.check_local_uniqueness(&probe, &all).unwrap());
        // Empty subset: trivially unique.
        assert!(server.check_local_uniqueness(&probe, &[]).unwrap());
        assert!(matches!(
            server.check_local_uniqueness(&probe, &["ghost".into()]),
            Err(ProtocolError::UnknownUser(_))
        ));
        // user_at resolves live slots and refuses tombstones.
        assert_eq!(server.user_at(3), Some("user-3"));
        assert_eq!(server.user_at(99), None);
    }

    #[test]
    fn replayed_response_rejected() {
        let (device, mut server, bios, mut rng) = setup(3);
        let reading = noisy(&bios[1], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert!(server.finish_identification(&resp).unwrap().is_identified());
        // Same response again: the session is consumed.
        assert_eq!(
            server.finish_identification(&resp).unwrap_err(),
            ProtocolError::UnknownSession
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let (device, mut server, bios, mut rng) = setup(3);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let mut resp = device.respond(&reading, &chal, &mut rng).unwrap();
        resp.signature[3] ^= 0xff;
        assert_eq!(
            server.finish_identification(&resp).unwrap(),
            IdentOutcome::Rejected
        );
    }

    #[test]
    fn tampered_nonce_rejected() {
        let (device, mut server, bios, mut rng) = setup(3);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let mut resp = device.respond(&reading, &chal, &mut rng).unwrap();
        resp.nonce ^= 1; // signature no longer covers (c, a)
        assert_eq!(
            server.finish_identification(&resp).unwrap(),
            IdentOutcome::Rejected
        );
    }

    #[test]
    fn revocation_removes_user() {
        let (device, mut server, bios, mut rng) = setup(3);
        assert_eq!(server.user_count(), 3);
        server.revoke("user-1").unwrap();
        assert_eq!(server.user_count(), 2);
        // user-1 can no longer be identified…
        let reading = noisy(&bios[1], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        assert_eq!(
            server.begin_identification(&probe, &mut rng).unwrap_err(),
            ProtocolError::NoMatch
        );
        // …or verified by claim…
        assert!(matches!(
            server.begin_verification("user-1", &mut rng),
            Err(ProtocolError::UnknownUser(_))
        ));
        // …while other users are untouched.
        let reading2 = noisy(&bios[2], &mut rng);
        let probe2 = device.probe_sketch(&reading2, &mut rng).unwrap();
        assert!(server.begin_identification(&probe2, &mut rng).is_ok());
        // Revoking twice fails.
        assert!(server.revoke("user-1").is_err());
    }

    #[test]
    fn revocation_cancels_pending_challenges() {
        let (device, mut server, bios, mut rng) = setup(2);
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        server.revoke("user-0").unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap_err(),
            ProtocolError::UnknownSession
        );
    }

    #[test]
    fn reenrollment_after_revocation() {
        let (device, mut server, bios, mut rng) = setup(2);
        server.revoke("user-0").unwrap();
        // Same biometric, same id, fresh enrollment → fresh key pair.
        let record = device.enroll("user-0", &bios[0], &mut rng).unwrap();
        server.enroll(record).unwrap();
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = server.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp).unwrap().identity(),
            Some("user-0")
        );
    }

    #[test]
    fn export_import_roundtrip_preserves_identification() {
        let (device, mut server, bios, mut rng) = setup(4);
        server.revoke("user-2").unwrap(); // tombstones are not exported
        let blobs = server.export_records();
        assert_eq!(blobs.len(), 3);

        // Cold restart: a fresh server imports the records — into a
        // *sharded* index this time, proving exports are portable across
        // index backends.
        let mut restored = AuthenticationServer::<ShardedIndex<ScanIndex>>::from_params(
            server
                .params()
                .clone()
                .with_index_config(IndexConfig::ShardedScan { shards: 2 }),
        );
        assert_eq!(restored.import_records(&blobs).unwrap(), 3);
        assert_eq!(restored.user_count(), 3);

        // Identification still works against the restored state.
        let reading = noisy(&bios[0], &mut rng);
        let probe = device.probe_sketch(&reading, &mut rng).unwrap();
        let chal = restored.begin_identification(&probe, &mut rng).unwrap();
        let resp = device.respond(&reading, &chal, &mut rng).unwrap();
        assert_eq!(
            restored.finish_identification(&resp).unwrap().identity(),
            Some("user-0")
        );
        // The revoked user stays revoked.
        let reading2 = noisy(&bios[2], &mut rng);
        let probe2 = device.probe_sketch(&reading2, &mut rng).unwrap();
        assert!(restored.begin_identification(&probe2, &mut rng).is_err());
    }

    #[test]
    fn import_rejects_garbage_and_duplicates() {
        let (_device, mut server, _bios, _rng) = setup(2);
        let blobs = server.export_records();
        let mut fresh = AuthenticationServer::new(server.params().clone());
        fresh.import_records(&blobs).unwrap();
        // Importing the same records again duplicates ids.
        assert!(matches!(
            fresh.import_records(&blobs),
            Err(ProtocolError::DuplicateUser(_))
        ));
        // Garbage bytes are rejected cleanly.
        assert!(matches!(
            server.import_records(&[vec![1, 2, 3]]),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn compact_reclaims_slots_and_preserves_protocol_state() {
        let (device, mut server, bios, mut rng) = setup(6);
        // Open a challenge for user-5 *before* compaction; it must
        // survive the renumbering.
        let reading5 = noisy(&bios[5], &mut rng);
        let probe5 = device.probe_sketch(&reading5, &mut rng).unwrap();
        let chal5 = server.begin_identification(&probe5, &mut rng).unwrap();

        for u in 0..4 {
            server.revoke(&format!("user-{u}")).unwrap();
        }
        assert_eq!(server.record_slots(), 6);
        assert_eq!(server.compact(), 4);
        assert_eq!(server.record_slots(), 2);
        assert_eq!(server.index().slots(), 2);
        assert_eq!(server.compact(), 0, "second compaction is a no-op");

        // The outstanding challenge still resolves to the right user.
        let resp5 = device.respond(&reading5, &chal5, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp5).unwrap().identity(),
            Some("user-5")
        );
        // Survivors identify; revoked users stay gone; fresh enrollments
        // land on dense slots.
        let reading4 = noisy(&bios[4], &mut rng);
        let probe4 = device.probe_sketch(&reading4, &mut rng).unwrap();
        let chal4 = server.begin_identification(&probe4, &mut rng).unwrap();
        let resp4 = device.respond(&reading4, &chal4, &mut rng).unwrap();
        assert_eq!(
            server.finish_identification(&resp4).unwrap().identity(),
            Some("user-4")
        );
        let reading0 = noisy(&bios[0], &mut rng);
        let probe0 = device.probe_sketch(&reading0, &mut rng).unwrap();
        assert_eq!(
            server.begin_identification(&probe0, &mut rng).unwrap_err(),
            ProtocolError::NoMatch
        );
        let bio = server.params().sketch().line().random_vector(48, &mut rng);
        let record = device.enroll("user-new", &bio, &mut rng).unwrap();
        server.enroll(record).unwrap();
        assert_eq!(server.record_slots(), 3);
    }

    #[test]
    fn churn_with_checkpoints_keeps_memory_proportional_to_live() {
        let (device, mut server, _bios, mut rng) = setup(2);
        for round in 0..30 {
            // Same dimension as the standing population: one index holds
            // one stamped dimension (see the SketchIndex contract).
            let bio = server.params().sketch().line().random_vector(48, &mut rng);
            let record = device
                .enroll(&format!("churn-{round}"), &bio, &mut rng)
                .unwrap();
            server.enroll(record).unwrap();
            server.revoke(&format!("churn-{round}")).unwrap();
            server.checkpoint().unwrap();
            assert_eq!(server.user_count(), 2);
            assert_eq!(server.record_slots(), 2, "round {round}");
            assert_eq!(server.index().slots(), 2, "round {round}");
        }
    }

    #[test]
    fn durable_server_journals_and_recovers() {
        let dir = std::env::temp_dir().join(format!("fe-server-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(81_000);

        let mut server: AuthenticationServer =
            AuthenticationServer::recover(params.clone(), &dir).unwrap();
        let mut bios = Vec::new();
        for u in 0..4 {
            let bio = params.sketch().line().random_vector(32, &mut rng);
            server
                .enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng).unwrap())
                .unwrap();
            bios.push(bio);
        }
        server.revoke("user-1").unwrap();
        assert_eq!(server.store().unwrap().journal_len(), 5);
        // Checkpoint mid-history, then more events on the fresh journal.
        server.checkpoint().unwrap();
        assert_eq!(server.store().unwrap().journal_len(), 0);
        server.revoke("user-2").unwrap();
        drop(server); // crash

        let mut server: AuthenticationServer =
            AuthenticationServer::recover(params.clone(), &dir).unwrap();
        assert_eq!(server.user_count(), 2);
        for u in [0usize, 3] {
            let reading = noisy(&bios[u], &mut rng);
            let probe = device.probe_sketch(&reading, &mut rng).unwrap();
            let chal = server.begin_identification(&probe, &mut rng).unwrap();
            let resp = device.respond(&reading, &chal, &mut rng).unwrap();
            assert_eq!(
                server.finish_identification(&resp).unwrap().identity(),
                Some(format!("user-{u}").as_str())
            );
        }
        for u in [1usize, 2] {
            let reading = noisy(&bios[u], &mut rng);
            let probe = device.probe_sketch(&reading, &mut rng).unwrap();
            assert_eq!(
                server.begin_identification(&probe, &mut rng).unwrap_err(),
                ProtocolError::NoMatch
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_mismatched_params() {
        let dir = std::env::temp_dir().join(format!("fe-server-fp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let params = SystemParams::insecure_test_defaults();
        let server: AuthenticationServer =
            AuthenticationServer::recover(params.clone(), &dir).unwrap();
        drop(server);
        // Same sketch line, different DSA group ⇒ different fingerprint.
        let other = SystemParams::paper_defaults();
        assert!(matches!(
            AuthenticationServer::<ScanIndex>::recover(other, &dir),
            Err(ProtocolError::Codec(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "empty server")]
    fn attach_store_refuses_populated_server() {
        let (_device, mut server, _bios, _rng) = setup(1);
        server
            .attach_store(Box::new(crate::store::MemoryStore::new()))
            .unwrap();
    }

    #[test]
    fn attach_store_refuses_non_fresh_store() {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(83_000);
        // A store with prior history must be adopted via recover(), not
        // silently appended to.
        let mut populated = crate::store::MemoryStore::new();
        let bio = params.sketch().line().random_vector(8, &mut rng);
        let record = device.enroll("old", &bio, &mut rng).unwrap();
        populated
            .append(crate::store::LogEventRef::Enroll(&record))
            .unwrap();
        let mut server = AuthenticationServer::new(params.clone());
        assert!(matches!(
            server.attach_store(Box::new(populated)),
            Err(ProtocolError::Storage(_))
        ));
        assert!(server.store().is_none());
    }

    #[test]
    fn failed_enroll_does_not_reach_the_journal() {
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(82_000);
        let mut server = AuthenticationServer::new(params.clone());
        server
            .attach_store(Box::new(crate::store::MemoryStore::new()))
            .unwrap();

        let bio = params.sketch().line().random_vector(16, &mut rng);
        let record = device.enroll("dup", &bio, &mut rng).unwrap();
        server.enroll(record.clone()).unwrap();
        assert!(server.enroll(record).is_err());
        assert!(server.revoke("ghost").is_err());
        // Only the successful enrollment was journaled.
        assert_eq!(server.store().unwrap().journal_len(), 1);
    }

    #[test]
    fn mismatched_sketch_dimension_is_refused_before_journaling() {
        // The index would panic on a mixed-dimension insert; the server
        // must catch it in validation — *before* the write-ahead append
        // — or the bad record becomes durable and poisons every
        // subsequent recovery.
        let params = SystemParams::insecure_test_defaults();
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(84_000);
        let mut server = AuthenticationServer::new(params.clone());
        server
            .attach_store(Box::new(crate::store::MemoryStore::new()))
            .unwrap();

        let bio16 = params.sketch().line().random_vector(16, &mut rng);
        server
            .enroll(device.enroll("alice", &bio16, &mut rng).unwrap())
            .unwrap();
        let bio32 = params.sketch().line().random_vector(32, &mut rng);
        let bad = device.enroll("bob", &bio32, &mut rng).unwrap();
        assert!(matches!(
            server.enroll(bad),
            Err(ProtocolError::Malformed("sketch dimension mismatch"))
        ));
        // Only alice reached the journal; the server still works.
        assert_eq!(server.store().unwrap().journal_len(), 1);
        assert_eq!(server.user_count(), 1);
    }

    #[test]
    fn bucket_prefix_shortfall_is_refused_before_journaling() {
        // A bucket index also refuses sketches shorter than its key
        // prefix — including the very FIRST enrollment, where no
        // dimension stamp exists yet. Like the mixed-dimension case,
        // this must fail validation, not panic after the journal
        // append.
        let params = SystemParams::insecure_test_defaults()
            .with_index_config(IndexConfig::Bucket { prefix_dims: 4 });
        let device = BiometricDevice::new(params.clone());
        let mut rng = StdRng::seed_from_u64(85_000);
        let mut server = AuthenticationServer::<BucketIndex>::from_params(params.clone());
        server
            .attach_store(Box::new(crate::store::MemoryStore::new()))
            .unwrap();

        let bio2 = params.sketch().line().random_vector(2, &mut rng);
        let short = device.enroll("shorty", &bio2, &mut rng).unwrap();
        assert!(matches!(
            server.enroll(short),
            Err(ProtocolError::Malformed("sketch dimension mismatch"))
        ));
        assert_eq!(server.store().unwrap().journal_len(), 0);

        // A long-enough first enrollment is accepted as before.
        let bio8 = params.sketch().line().random_vector(8, &mut rng);
        server
            .enroll(device.enroll("ok", &bio8, &mut rng).unwrap())
            .unwrap();
        assert_eq!(server.user_count(), 1);
    }

    #[test]
    fn unknown_session_rejected() {
        let (_device, mut server, _bios, _rng) = setup(1);
        let resp = IdentResponse {
            session: 999,
            signature: vec![0; 40],
            nonce: 7,
        };
        assert_eq!(
            server.finish_identification(&resp).unwrap_err(),
            ProtocolError::UnknownSession
        );
    }
}
