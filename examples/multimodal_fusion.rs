//! Multimodal fusion — the paper's Sec. VI-B remedy for false accepts:
//! "these issues can be relieved by using multiple types of biometrics,
//! such as fingerprint and iris."
//!
//! One key from two modalities: a fingerprint-style feature vector
//! (Chebyshev sketch, the paper's construction) AND an iris-style bit
//! string (code-offset sketch over BCH). Both must match.
//!
//! Run with: `cargo run --release --example multimodal_fusion`

use fuzzy_id::biometric::IrisCodeModel;
use fuzzy_id::core::baselines::BinaryFuzzyExtractor;
use fuzzy_id::core::fusion::FusedExtractor;
use fuzzy_id::core::{ChebyshevSketch, FuzzyExtractor};
use fuzzy_id::ecc::Bch;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);

    let fused = FusedExtractor::new(
        FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32),
        BinaryFuzzyExtractor::new(Bch::new(10, 25)?, 32),
        32,
    );

    // Enrollment: capture both modalities.
    let finger = fused
        .vector_extractor()
        .sketcher()
        .line()
        .random_vector(2000, &mut rng);
    let iris_model = IrisCodeModel::new(fused.binary_extractor().sketcher().input_len(), 0.01);
    let iris = iris_model.random_code(&mut rng);
    let (key, helper) = fused.generate(&finger, &iris, &mut rng)?;
    println!(
        "enrolled fingerprint (2000 features) + iris ({} bits)",
        iris.len()
    );
    println!("fused key: {} bytes", key.len());

    // Genuine presentation: both modalities noisy but within tolerance.
    let finger2: Vec<i64> = finger
        .iter()
        .map(|&x| x + rng.gen_range(-95i64..=95))
        .collect();
    let iris2 = iris_model.genuine_reading(&iris, &mut rng);
    assert_eq!(fused.reproduce(&finger2, &iris2, &helper)?, key);
    println!("genuine (both modalities):     key reproduced ✓");

    // Attacker has stolen a matching fingerprint replica but not the iris.
    let wrong_iris = iris_model.impostor_reading(&mut rng);
    match fused.reproduce(&finger2, &wrong_iris, &helper) {
        Err(e) => println!("fingerprint only (fake iris):  rejected ({e}) ✓"),
        Ok(_) => unreachable!(),
    }

    // Or the iris but not the fingerprint.
    let wrong_finger = fused
        .vector_extractor()
        .sketcher()
        .line()
        .random_vector(2000, &mut rng);
    match fused.reproduce(&wrong_finger, &iris2, &helper) {
        Err(e) => println!("iris only (fake fingerprint):  rejected ({e}) ✓"),
        Ok(_) => unreachable!(),
    }

    Ok(())
}
