//! The connection handshake: version and parameter-fingerprint
//! agreement before any request flows.
//!
//! A sketch is only meaningful under the exact [`SystemParams`] it was
//! produced with (ring, threshold, key length, DSA domain — everything
//! [`SystemParams::fingerprint`] digests). A client on mismatched
//! parameters would not crash the server; it would silently never
//! match, which is worse. So the very first frame each way settles both
//! questions, and a mismatched client fails fast with a typed error
//! instead of a sea of `NO_MATCH`es.
//!
//! Layout (each inside one transport frame, see [`crate::frame`]):
//!
//! ```text
//! client hello:  "FENH" | u16 BE version | 8-byte params fingerprint
//! server reply:  "FENH" | u16 BE version | u8 status | 8-byte fingerprint
//! ```
//!
//! Reply status: `0` accepted, `1` version mismatch, `2` fingerprint
//! mismatch. On a nonzero status the server closes the connection after
//! the reply; the reply carries the *server's* version and fingerprint
//! so the client can report exactly what differed.
//!
//! [`SystemParams`]: fe_protocol::SystemParams
//! [`SystemParams::fingerprint`]: fe_protocol::SystemParams::fingerprint

use crate::error::NetError;
use crate::frame::{read_frame, write_frame};
use fe_core::codec::Fingerprint;
use std::io::{Read, Write};

/// Magic prefix of both handshake messages.
pub const HANDSHAKE_MAGIC: [u8; 4] = *b"FENH";

/// The transport protocol version this crate speaks.
///
/// Versioning policy (normative, see `PROTOCOL.md`): additive changes —
/// new request tags, new response kinds, new error codes — do **not**
/// bump this; peers reject unknown tags per-request. Any change to the
/// frame layout, handshake, envelope, or the meaning of an existing
/// code does.
pub const NET_VERSION: u16 = 1;

/// Server verdict on a client hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HandshakeStatus {
    /// Versions and fingerprints agree; requests may flow.
    Accepted = 0,
    /// The peer speaks a different transport version.
    VersionMismatch = 1,
    /// Same transport, different system parameters.
    FingerprintMismatch = 2,
}

impl HandshakeStatus {
    fn from_u8(v: u8) -> Option<HandshakeStatus> {
        Some(match v {
            0 => HandshakeStatus::Accepted,
            1 => HandshakeStatus::VersionMismatch,
            2 => HandshakeStatus::FingerprintMismatch,
            _ => return None,
        })
    }
}

/// Encodes the client hello payload.
pub fn encode_hello(fingerprint: &Fingerprint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(14);
    buf.extend_from_slice(&HANDSHAKE_MAGIC);
    buf.extend_from_slice(&NET_VERSION.to_be_bytes());
    buf.extend_from_slice(fingerprint.as_bytes());
    buf
}

/// Decodes a client hello payload into `(version, fingerprint)`.
///
/// # Errors
/// [`NetError::BadHandshake`] unless the payload is exactly a
/// well-formed hello. The version is *returned*, not validated — the
/// server decides how to answer a mismatch.
pub fn decode_hello(payload: &[u8]) -> Result<(u16, Fingerprint), NetError> {
    if payload.len() != 14 {
        return Err(NetError::BadHandshake("hello length"));
    }
    if payload[..4] != HANDSHAKE_MAGIC {
        return Err(NetError::BadHandshake("hello magic"));
    }
    let version = u16::from_be_bytes(payload[4..6].try_into().expect("2 bytes"));
    let mut fp = [0u8; 8];
    fp.copy_from_slice(&payload[6..14]);
    Ok((version, Fingerprint(fp)))
}

/// Encodes the server reply payload.
pub fn encode_reply(status: HandshakeStatus, fingerprint: &Fingerprint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(15);
    buf.extend_from_slice(&HANDSHAKE_MAGIC);
    buf.extend_from_slice(&NET_VERSION.to_be_bytes());
    buf.push(status as u8);
    buf.extend_from_slice(fingerprint.as_bytes());
    buf
}

/// Decodes a server reply payload into `(version, status, fingerprint)`.
///
/// # Errors
/// [`NetError::BadHandshake`] on anything but a well-formed reply.
pub fn decode_reply(payload: &[u8]) -> Result<(u16, HandshakeStatus, Fingerprint), NetError> {
    if payload.len() != 15 {
        return Err(NetError::BadHandshake("reply length"));
    }
    if payload[..4] != HANDSHAKE_MAGIC {
        return Err(NetError::BadHandshake("reply magic"));
    }
    let version = u16::from_be_bytes(payload[4..6].try_into().expect("2 bytes"));
    let status =
        HandshakeStatus::from_u8(payload[6]).ok_or(NetError::BadHandshake("reply status"))?;
    let mut fp = [0u8; 8];
    fp.copy_from_slice(&payload[7..15]);
    Ok((version, status, Fingerprint(fp)))
}

/// Runs the client side of the handshake on a fresh stream: sends the
/// hello, reads the reply, and maps a rejection to its typed error.
/// Used by [`crate::Client::connect`] and usable directly by custom
/// transports (the loopback load generator drives raw split sockets
/// through this).
///
/// # Errors
/// [`NetError::VersionMismatch`] / [`NetError::FingerprintMismatch`]
/// when the server rejected us (carrying both sides' values);
/// [`NetError::BadHandshake`] on a malformed reply; framing/IO errors
/// as usual.
pub fn client_handshake<S: Read + Write>(
    stream: &mut S,
    fingerprint: &Fingerprint,
    max_frame: usize,
) -> Result<(), NetError> {
    write_frame(stream, &encode_hello(fingerprint), max_frame)?;
    let reply = read_frame(stream, max_frame)?;
    let (version, status, theirs) = decode_reply(&reply)?;
    match status {
        HandshakeStatus::Accepted => Ok(()),
        HandshakeStatus::VersionMismatch => Err(NetError::VersionMismatch {
            ours: NET_VERSION,
            theirs: version,
        }),
        HandshakeStatus::FingerprintMismatch => Err(NetError::FingerprintMismatch {
            ours: *fingerprint,
            theirs,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(byte: u8) -> Fingerprint {
        Fingerprint([byte; 8])
    }

    #[test]
    fn hello_roundtrip() {
        let (version, got) = decode_hello(&encode_hello(&fp(7))).unwrap();
        assert_eq!(version, NET_VERSION);
        assert_eq!(got, fp(7));
    }

    #[test]
    fn reply_roundtrip_all_statuses() {
        for status in [
            HandshakeStatus::Accepted,
            HandshakeStatus::VersionMismatch,
            HandshakeStatus::FingerprintMismatch,
        ] {
            let (version, got_status, got_fp) =
                decode_reply(&encode_reply(status, &fp(9))).unwrap();
            assert_eq!(version, NET_VERSION);
            assert_eq!(got_status, status);
            assert_eq!(got_fp, fp(9));
        }
    }

    #[test]
    fn malformed_hellos_rejected() {
        assert!(decode_hello(&[]).is_err());
        assert!(decode_hello(&encode_hello(&fp(1))[..13]).is_err());
        let mut long = encode_hello(&fp(1));
        long.push(0);
        assert!(decode_hello(&long).is_err());
        let mut bad_magic = encode_hello(&fp(1));
        bad_magic[0] = b'X';
        assert!(decode_hello(&bad_magic).is_err());
        // A reply is not a hello (and vice versa): lengths differ.
        assert!(decode_hello(&encode_reply(HandshakeStatus::Accepted, &fp(1))).is_err());
        assert!(decode_reply(&encode_hello(&fp(1))).is_err());
    }

    #[test]
    fn unknown_reply_status_rejected() {
        let mut reply = encode_reply(HandshakeStatus::Accepted, &fp(2));
        reply[6] = 99;
        assert!(matches!(
            decode_reply(&reply).unwrap_err(),
            NetError::BadHandshake("reply status")
        ));
    }
}
