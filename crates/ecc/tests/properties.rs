//! Property-based tests for the coding substrate.

use fe_ecc::{berlekamp_welch, Bch, BinaryCode, Gf2m, Poly, ReedSolomon};
use fe_metrics::BitVec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Field axioms on random GF(2^m) elements.
    #[test]
    fn field_axioms(m in 2u32..12, a in any::<u16>(), b in any::<u16>(), c in any::<u16>()) {
        let f = Gf2m::new(m).unwrap();
        let mask = (f.size() - 1) as u16;
        let (a, b, c) = (a & mask, b & mask, c & mask);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
        prop_assert_eq!(f.mul(a, 1), a);
        if a != 0 {
            prop_assert_eq!(f.mul(a, f.inv(a).unwrap()), 1);
        }
    }

    /// Polynomial division: p = q·d + r with deg r < deg d.
    #[test]
    fn poly_div_rem(pc in prop::collection::vec(0u16..256, 0..12),
                    dc in prop::collection::vec(0u16..256, 1..6)) {
        let f = Gf2m::new(8).unwrap();
        let p = Poly::from_coeffs(pc);
        let d = Poly::from_coeffs(dc);
        prop_assume!(!d.is_zero());
        let (q, r) = p.div_rem(&d, &f);
        prop_assert_eq!(q.mul(&d, &f).add(&r, &f), p);
        if let (Some(rd), Some(dd)) = (r.degree(), d.degree()) {
            prop_assert!(rd < dd);
        }
    }

    /// Interpolation inverts evaluation.
    #[test]
    fn interpolation_inverts_evaluation(coeffs in prop::collection::vec(0u16..256, 1..8)) {
        let f = Gf2m::new(8).unwrap();
        let p = Poly::from_coeffs(coeffs);
        let k = p.coeffs().len().max(1);
        let pts: Vec<(u16, u16)> = (1..=k as u16).map(|x| (x, p.eval(x, &f))).collect();
        let q = Poly::interpolate(&pts, &f).unwrap();
        prop_assert_eq!(q, p);
    }

    /// BCH corrects any error pattern of weight ≤ t.
    #[test]
    fn bch_corrects_within_capacity(seed in any::<u64>(), num_err_raw in 0usize..8) {
        let code = Bch::new(6, 4).unwrap();
        let num_err = num_err_raw % (code.t() + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = BitVec::from_fn(code.k(), |_| rng.gen_bool(0.5));
        let word = code.encode(&msg).unwrap();
        let mut corrupted = word.clone();
        let mut positions = std::collections::HashSet::new();
        while positions.len() < num_err {
            positions.insert(rng.gen_range(0..code.n()));
        }
        for &p in &positions {
            corrupted.flip(p);
        }
        let dec = code.decode(&corrupted).unwrap();
        prop_assert_eq!(dec.message, msg);
        prop_assert_eq!(dec.corrected_errors, num_err);
    }

    /// BCH codewords are closed under XOR (linearity).
    #[test]
    fn bch_linear(seed in any::<u64>()) {
        let code = Bch::new(5, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let m1 = BitVec::from_fn(code.k(), |_| rng.gen_bool(0.5));
        let m2 = BitVec::from_fn(code.k(), |_| rng.gen_bool(0.5));
        let c1 = code.encode(&m1).unwrap();
        let c2 = code.encode(&m2).unwrap();
        let m12: BitVec = (0..code.k()).map(|i| m1.get(i) ^ m2.get(i)).collect();
        prop_assert_eq!(code.encode(&m12).unwrap(), &c1 ^ &c2);
    }

    /// Reed–Solomon corrects any pattern of ≤ t symbol errors.
    #[test]
    fn rs_corrects_within_capacity(seed in any::<u64>(), num_err_raw in 0usize..6) {
        let rs = ReedSolomon::new(6, 31, 23).unwrap(); // t = 4
        let num_err = num_err_raw % (rs.t() + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<u16> = (0..rs.k()).map(|_| rng.gen_range(0..64)).collect();
        let word = rs.encode(&msg).unwrap();
        let mut corrupted = word.clone();
        let mut positions = std::collections::HashSet::new();
        while positions.len() < num_err {
            positions.insert(rng.gen_range(0..rs.n()));
        }
        for &p in &positions {
            corrupted[p] ^= rng.gen_range(1..64) as u16;
        }
        let dec = rs.decode(&corrupted).unwrap();
        prop_assert_eq!(dec.message, msg);
    }

    /// Berlekamp–Welch recovers under any ≤ e_max corruption.
    #[test]
    fn bw_recovers(seed in any::<u64>(), k in 2usize..6) {
        let f = Gf2m::new(8).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs: Vec<u16> = (0..k).map(|_| rng.gen_range(0..256)).collect();
        let p = Poly::from_coeffs(coeffs);
        let n = k + 6; // e_max = 3
        let mut pts: Vec<(u16, u16)> = (1..=n as u16).map(|x| (x, p.eval(x, &f))).collect();
        let e = rng.gen_range(0..=3usize);
        let mut bad = std::collections::HashSet::new();
        while bad.len() < e {
            bad.insert(rng.gen_range(0..n));
        }
        for &i in &bad {
            pts[i].1 ^= rng.gen_range(1..256) as u16;
        }
        prop_assert_eq!(berlekamp_welch(&f, &pts, k).unwrap(), p);
    }
}
