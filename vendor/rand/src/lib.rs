//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s 0.8 API it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! and [`rngs::StdRng`]. The generator behind `StdRng` is xoshiro256++
//! seeded through SplitMix64 — deterministic, `Clone`, `Send`, and more
//! than adequate for tests and benchmarks (it is **not** a CSPRNG; the
//! workspace's cryptographic randomness comes from `fe-crypto`'s
//! HMAC-DRBG, which only needs the `RngCore` trait from here).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the
/// vendored generators; exists so `try_fill_bytes` has the upstream
/// signature).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw word and byte output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly from raw RNG output (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one uniform value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Uniform f64 in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = (rng.next_u64() as u128 % span) as $wide;
                (self.start as $wide).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as $wide;
                (lo as $wide).wrapping_add(off) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns a uniform value within `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Unlike upstream's ChaCha12-backed `StdRng` this is not
    /// cryptographically secure; the workspace only draws test data and
    /// nonces-for-tests from it.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-100i64..=100);
            assert!((-100..=100).contains(&v));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
