//! Multimodal fusion: one key from two biometric modalities.
//!
//! The paper's security discussion (Sec. VI-B) notes that false accepts
//! "can be relieved by using multiple types of biometrics, such as
//! fingerprint and iris". This module implements AND-fusion: a
//! Chebyshev-metric modality (feature vectors, the paper's construction)
//! and a Hamming-metric modality (iris-style bit strings, the code-offset
//! baseline) each run their own fuzzy extractor, and the final key is
//! derived from *both* sub-keys — an attacker must defeat both
//! modalities.

use crate::baselines::{BinaryFuzzyExtractor, BinaryHelperData};
use crate::fuzzy::HelperData;
use crate::key::ExtractedKey;
use crate::robust::RobustData;
use crate::{DefaultFuzzyExtractor, SketchError};
use fe_crypto::{Hkdf, Sha256};
use fe_metrics::BitVec;
use rand::RngCore;

/// Helper data for a fused enrollment: one blob per modality.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedHelperData {
    /// Helper data of the Chebyshev (feature-vector) modality.
    pub vector: HelperData<RobustData<Vec<i64>>>,
    /// Helper data of the Hamming (bit-string) modality.
    pub binary: BinaryHelperData,
}

/// AND-fusion of the paper's Chebyshev extractor with the code-offset
/// (Hamming) extractor.
///
/// ```rust
/// use fe_core::fusion::FusedExtractor;
/// use fe_core::{ChebyshevSketch, FuzzyExtractor};
/// use fe_core::baselines::BinaryFuzzyExtractor;
/// use fe_ecc::Bch;
/// use fe_metrics::BitVec;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let fused = FusedExtractor::new(
///     FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32),
///     BinaryFuzzyExtractor::new(Bch::new(6, 3)?, 32),
///     32,
/// );
/// let finger = fused.vector_extractor().sketcher().line().random_vector(64, &mut rng);
/// let iris = BitVec::from_fn(63, |i| i % 3 == 0);
/// let (key, helper) = fused.generate(&finger, &iris, &mut rng)?;
///
/// // Both modalities within tolerance → same key.
/// let finger2: Vec<i64> = finger.iter().map(|x| x + 50).collect();
/// let mut iris2 = iris.clone();
/// iris2.flip(7);
/// assert_eq!(fused.reproduce(&finger2, &iris2, &helper)?, key);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FusedExtractor {
    vector: DefaultFuzzyExtractor,
    binary: BinaryFuzzyExtractor,
    key_len: usize,
}

impl FusedExtractor {
    /// Combines the two modality extractors; the fused key has
    /// `key_len` bytes.
    pub fn new(
        vector: DefaultFuzzyExtractor,
        binary: BinaryFuzzyExtractor,
        key_len: usize,
    ) -> Self {
        FusedExtractor {
            vector,
            binary,
            key_len,
        }
    }

    /// The Chebyshev-modality extractor.
    pub fn vector_extractor(&self) -> &DefaultFuzzyExtractor {
        &self.vector
    }

    /// The Hamming-modality extractor.
    pub fn binary_extractor(&self) -> &BinaryFuzzyExtractor {
        &self.binary
    }

    fn fuse(&self, k1: &ExtractedKey, k2: &ExtractedKey) -> ExtractedKey {
        let mut ikm = Vec::with_capacity(k1.len() + k2.len());
        ikm.extend_from_slice(k1.as_bytes());
        ikm.extend_from_slice(k2.as_bytes());
        ExtractedKey::new(Hkdf::<Sha256>::derive(
            &ikm,
            b"fe-fusion-v1",
            b"and-fusion",
            self.key_len,
        ))
    }

    /// Enrolls both modalities and derives the fused key.
    ///
    /// # Errors
    /// Propagates either modality's sketch errors.
    pub fn generate<R: RngCore + ?Sized>(
        &self,
        features: &[i64],
        code: &BitVec,
        rng: &mut R,
    ) -> Result<(ExtractedKey, FusedHelperData), SketchError> {
        let (k1, vector) = self.vector.generate(features, rng)?;
        let (k2, binary) = self.binary.generate(code, rng)?;
        Ok((self.fuse(&k1, &k2), FusedHelperData { vector, binary }))
    }

    /// Reproduces the fused key: **both** modalities must be within their
    /// tolerance.
    ///
    /// # Errors
    /// Fails if either modality fails to reproduce.
    pub fn reproduce(
        &self,
        features: &[i64],
        code: &BitVec,
        helper: &FusedHelperData,
    ) -> Result<ExtractedKey, SketchError> {
        let k1 = self.vector.reproduce(features, &helper.vector)?;
        let k2 = self.binary.reproduce(code, &helper.binary)?;
        Ok(self.fuse(&k1, &k2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChebyshevSketch, FuzzyExtractor};
    use fe_ecc::Bch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fused() -> FusedExtractor {
        FusedExtractor::new(
            FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32),
            BinaryFuzzyExtractor::new(Bch::new(6, 3).unwrap(), 32),
            32,
        )
    }

    fn enroll(
        f: &FusedExtractor,
        rng: &mut StdRng,
    ) -> (Vec<i64>, BitVec, ExtractedKey, FusedHelperData) {
        let features = f
            .vector_extractor()
            .sketcher()
            .line()
            .random_vector(32, rng);
        let code = BitVec::from_fn(63, |_| rng.gen_bool(0.5));
        let (key, helper) = f.generate(&features, &code, rng).unwrap();
        (features, code, key, helper)
    }

    #[test]
    fn both_modalities_good_reproduces() {
        let f = fused();
        let mut rng = StdRng::seed_from_u64(60);
        let (features, code, key, helper) = enroll(&f, &mut rng);
        let features2: Vec<i64> = features.iter().map(|x| x - 75).collect();
        let mut code2 = code.clone();
        code2.flip(10);
        code2.flip(40);
        assert_eq!(f.reproduce(&features2, &code2, &helper).unwrap(), key);
    }

    #[test]
    fn wrong_vector_modality_fails() {
        let f = fused();
        let mut rng = StdRng::seed_from_u64(61);
        let (_, code, _, helper) = enroll(&f, &mut rng);
        let wrong = f
            .vector_extractor()
            .sketcher()
            .line()
            .random_vector(32, &mut rng);
        assert!(f.reproduce(&wrong, &code, &helper).is_err());
    }

    #[test]
    fn wrong_binary_modality_fails() {
        let f = fused();
        let mut rng = StdRng::seed_from_u64(62);
        let (features, _, _, helper) = enroll(&f, &mut rng);
        let wrong = BitVec::from_fn(63, |_| rng.gen_bool(0.5));
        assert!(f.reproduce(&features, &wrong, &helper).is_err());
    }

    #[test]
    fn fused_key_differs_from_sub_keys() {
        let f = fused();
        let mut rng = StdRng::seed_from_u64(63);
        let (features, code, key, helper) = enroll(&f, &mut rng);
        let k1 = f.vector.reproduce(&features, &helper.vector).unwrap();
        let k2 = f.binary.reproduce(&code, &helper.binary).unwrap();
        assert_ne!(key, k1);
        assert_ne!(key, k2);
    }

    #[test]
    fn key_length_honoured() {
        let mut rng = StdRng::seed_from_u64(64);
        let f = FusedExtractor::new(
            FuzzyExtractor::with_defaults(ChebyshevSketch::paper_defaults(), 32),
            BinaryFuzzyExtractor::new(Bch::new(6, 3).unwrap(), 32),
            48,
        );
        let features = f
            .vector_extractor()
            .sketcher()
            .line()
            .random_vector(8, &mut rng);
        let code = BitVec::from_fn(63, |_| rng.gen_bool(0.5));
        let (key, _) = f.generate(&features, &code, &mut rng).unwrap();
        assert_eq!(key.len(), 48);
    }
}
