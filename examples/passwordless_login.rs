//! Passwordless login — verification mode: the user claims an identity
//! ("alice") and proves it with a biometric instead of a password.
//!
//! Run with: `cargo run --release --example passwordless_login`

use fuzzy_id::protocol::{ProtocolRunner, SystemParams};
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let params = SystemParams::insecure_test_defaults();
    let mut runner = ProtocolRunner::new(params.clone());

    // Account creation: alice and bob register fingerprints.
    let dim = 2000;
    let alice_bio = params.sketch().line().random_vector(dim, &mut rng);
    let bob_bio = params.sketch().line().random_vector(dim, &mut rng);
    runner.enroll_user("alice", &alice_bio, &mut rng)?;
    runner.enroll_user("bob", &bob_bio, &mut rng)?;
    println!("registered users: alice, bob");

    // Alice logs in: claimed identity + fresh fingerprint scan.
    let scan: Vec<i64> = alice_bio
        .iter()
        .map(|&x| x + rng.gen_range(-90i64..=90))
        .collect();
    let (outcome, stats) = runner.verify("alice", &scan, &mut rng)?;
    println!(
        "alice + alice's finger:  {:?} in {:?} ✓",
        outcome, stats.elapsed
    );
    assert!(outcome.is_identified());

    // Bob tries to log in as alice with *his* finger: the device cannot
    // recover alice's key from bob's biometric, so no response exists.
    match runner.verify("alice", &bob_bio, &mut rng) {
        Err(e) => println!("alice + bob's finger:    rejected ({e}) ✓"),
        Ok((o, _)) => println!("alice + bob's finger:    UNEXPECTED {o:?}"),
    }

    // A claim for an unregistered account fails immediately.
    match runner.verify("carol", &scan, &mut rng) {
        Err(e) => println!("carol (not enrolled):    rejected ({e}) ✓"),
        Ok((o, _)) => println!("carol (not enrolled):    UNEXPECTED {o:?}"),
    }

    Ok(())
}
