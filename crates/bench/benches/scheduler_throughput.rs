//! **Scheduler throughput (ours)**: does adaptive micro-batching beat
//! one-scan-per-request under concurrent identification load?
//!
//! Three layers are measured, all on a 10⁵-record population (the
//! acceptance-criterion scale — the sweep stays at 10⁵ even under
//! `FE_BENCH_SMOKE=1`; smoke mode only trims the measurement budget):
//!
//! * `index/*` — the raw kernel ablation: resolving a queue of K probes
//!   one `lookup` at a time (K full memory sweeps) vs one
//!   `lookup_batch` call (a single multi-query sweep, see
//!   `SketchArena::find_first_batch`).
//! * `modes/*` — the matching-modes kernels on the same population: a
//!   plain lookup vs `reset`'s count-bounded sweep (`FE_BENCH_GATE`
//!   fails the run if the budget costs more than 1.25× the lookup —
//!   `reset_10e5_us` in `BENCH_SMOKE.json`) and the subset-masked scan
//!   behind `check_local_uniqueness` (`local_check_1k_subset_us`).
//! * `service/*` — the protocol layer, closed-loop: C concurrent
//!   clients hammer `SharedServer::begin_identification` directly vs
//!   the same clients going through `ScheduledServer::identify`, whose
//!   workers coalesce them into micro-batches. This is the
//!   acceptance comparison (`concurrency ≥ 8`, recorded in
//!   `BENCH_SMOKE.json` as `direct_rps_c8` / `scheduled_rps_c8` /
//!   `speedup_c8`).
//! * open-loop sweep — offered load × batch window × shard count:
//!   requests arrive on a fixed schedule through the non-blocking
//!   [`ScheduledServer::submit`]; achieved throughput, shed count and
//!   the scheduler's own latency histogram (p50/p99) go to stdout and
//!   `target/experiments/scheduler_throughput.csv`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fe_bench::{smoke, time_it, write_csv, SynthPopulation};
use fe_core::{EpochIndex, FilterConfig, ScanIndex, SecureSketch, SketchIndex};
use fe_protocol::concurrent::SharedServer;
use fe_protocol::scheduler::{IdentifyTicket, ScheduledServer, SchedulerConfig};
use fe_protocol::SystemParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const DIM: usize = 64;
/// 10⁵ enrolled users: the acceptance-criterion scale.
const POPULATION: usize = 100_000;
/// The acceptance concurrency level.
const CONCURRENCY: usize = 8;

struct Setup {
    params: SystemParams,
    pop: SynthPopulation,
    /// Genuine probes spread across the whole population (so scan
    /// depths are uniformly distributed, like production traffic).
    probes: Vec<Vec<i64>>,
}

fn build_setup(num_probes: usize) -> Setup {
    let params = SystemParams::insecure_test_defaults();
    let mut rng = StdRng::seed_from_u64(0x5CED);
    let pop = SynthPopulation::build(&params, POPULATION, DIM, &mut rng);
    let probes = (0..num_probes)
        .map(|i| {
            pop.genuine_probe(
                &params,
                (i * POPULATION / num_probes) % POPULATION,
                &mut rng,
            )
        })
        .collect();
    Setup {
        params,
        pop,
        probes,
    }
}

fn enrolled_server(setup: &Setup, shards: usize) -> SharedServer<EpochIndex> {
    let server = SharedServer::<EpochIndex>::with_shards(setup.params.clone(), shards);
    for record in &setup.pop.records {
        server.enroll(record.clone()).unwrap();
    }
    server
}

/// Index layer: K scans vs one multi-query pass — for both the scalar
/// columnar kernel and the vectorized two-phase scan (runtime-dispatch
/// default), so the batch path the scheduler rides on is ablated in
/// `BENCH_SMOKE.json` too (`batch32_scalar_us` / `batch32_vectorized_us`).
fn bench_index_kernel(c: &mut Criterion, setup: &Setup) {
    let smoke_run = smoke::smoke_mode();
    let mut group = c.benchmark_group("scheduler_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 500 }));

    let (t, ka) = (
        setup.params.sketch().threshold(),
        setup.params.sketch().line().interval_len(),
    );
    let mut index = ScanIndex::new(t, ka);
    let mut scalar = ScanIndex::with_filter(t, ka, FilterConfig::disabled());
    index.reserve(POPULATION, DIM);
    scalar.reserve(POPULATION, DIM);
    for record in &setup.pop.records {
        index.insert(&record.helper.sketch.inner);
        scalar.insert(&record.helper.sketch.inner);
    }

    let mut batch_metrics: Vec<(String, f64)> = Vec::new();
    for k in [CONCURRENCY, 32] {
        // Sample the queue across the whole probe pool so scan depths
        // stay uniformly distributed at every K.
        let queue: Vec<Vec<i64>> = (0..k)
            .map(|i| setup.probes[i * setup.probes.len() / k].clone())
            .collect();
        let queue = queue.as_slice();
        assert_eq!(index.lookup_batch(queue), scalar.lookup_batch(queue));
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(
            BenchmarkId::new("index/one_scan_per_request", k),
            &k,
            |b, _| {
                b.iter(|| {
                    queue
                        .iter()
                        .filter_map(|p| index.lookup(std::hint::black_box(p)))
                        .count()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("index/shared_scan", k), &k, |b, _| {
            b.iter(|| index.lookup_batch(std::hint::black_box(queue)))
        });
        group.bench_with_input(
            BenchmarkId::new("index/shared_scan_scalar", k),
            &k,
            |b, _| b.iter(|| scalar.lookup_batch(std::hint::black_box(queue))),
        );

        let (_, scalar_secs) = fe_bench::time_best(5, || scalar.lookup_batch(queue));
        let (_, vect_secs) = fe_bench::time_best(5, || index.lookup_batch(queue));
        batch_metrics.push((format!("batch{k}_scalar_us"), scalar_secs * 1e6));
        batch_metrics.push((format!("batch{k}_vectorized_us"), vect_secs * 1e6));
        println!(
            "scheduler_throughput/index: batch {k} on 10^5 records — scalar {:.0} µs, \
             {} {:.0} µs ({:.2}×)",
            scalar_secs * 1e6,
            index.arena().filter_kernel(),
            vect_secs * 1e6,
            scalar_secs / vect_secs
        );
    }
    let named: Vec<(&str, f64)> = batch_metrics
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    smoke::record("scheduler_batch_kernel", &named);
    group.finish();
}

/// Matching modes at the acceptance scale: `reset` is a count-bounded
/// scan (`budget = 2`) and must stay within 1.25× of a plain lookup on
/// the same 10⁵-record population — the budget must ride the prefilter
/// plane, not forfeit it. Both sides probe a *non-matching* sketch so
/// each is a full worst-case sweep (a matching probe would make both
/// early-exit and measure nothing). `check_local_uniqueness`'s masked
/// scan over a 1 000-id subset is recorded alongside: the mask is ANDed
/// into the liveness words, so it should sit far below the full sweep.
fn bench_matching_modes(c: &mut Criterion, setup: &Setup) {
    let smoke_run = smoke::smoke_mode();
    let (t, ka) = (
        setup.params.sketch().threshold(),
        setup.params.sketch().line().interval_len(),
    );
    let mut index = ScanIndex::new(t, ka);
    index.reserve(POPULATION, DIM);
    for record in &setup.pop.records {
        index.insert(&record.helper.sketch.inner);
    }

    // A sketch of an independent random biometric: no-match at 10⁵
    // with overwhelming probability, asserted rather than assumed.
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let scheme = setup.params.sketch();
    let stranger = scheme.line().random_vector(DIM, &mut rng);
    let miss = scheme.sketch(&stranger, &mut rng).unwrap();
    assert!(index.lookup(&miss).is_none(), "probe must be a clean miss");
    assert!(index.lookup_at_most(&miss, 2).is_empty());

    // 1 000 ids spread uniformly across the population.
    let subset: Vec<usize> = (0..1_000).map(|i| i * (POPULATION / 1_000)).collect();
    assert!(index.lookup_in_subset(&miss, &subset, 1).is_empty());

    let (_, lookup_secs) = fe_bench::time_best(5, || index.lookup(&miss));
    let (_, reset_secs) = fe_bench::time_best(5, || index.lookup_at_most(&miss, 2));
    let (_, local_secs) = fe_bench::time_best(5, || index.lookup_in_subset(&miss, &subset, 1));
    let ratio = reset_secs / lookup_secs;
    println!(
        "scheduler_throughput/modes: 10^5 records — plain lookup {:.0} µs, reset \
         (budget 2) {:.0} µs ({ratio:.2}×), local check over 1k subset {:.1} µs",
        lookup_secs * 1e6,
        reset_secs * 1e6,
        local_secs * 1e6,
    );
    smoke::record(
        "matching_modes",
        &[
            ("lookup_10e5_us", lookup_secs * 1e6),
            ("reset_10e5_us", reset_secs * 1e6),
            ("reset_over_lookup", ratio),
            ("local_check_1k_subset_us", local_secs * 1e6),
        ],
    );
    // The acceptance gate: the count budget must not forfeit the
    // prefilter — reset's bounded sweep stays within 1.25× of the
    // plain lookup it generalizes.
    if std::env::var_os("FE_BENCH_GATE").is_some() {
        assert!(
            ratio <= 1.25,
            "FE_BENCH_GATE: reset at 10^5 ({:.1} µs) exceeds 1.25× plain lookup ({:.1} µs)",
            reset_secs * 1e6,
            lookup_secs * 1e6,
        );
    }

    let mut group = c.benchmark_group("scheduler_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 500 }));
    group.bench_function(BenchmarkId::new("modes/plain_lookup", POPULATION), |b| {
        b.iter(|| index.lookup(std::hint::black_box(&miss)))
    });
    group.bench_function(BenchmarkId::new("modes/reset", POPULATION), |b| {
        b.iter(|| index.lookup_at_most(std::hint::black_box(&miss), 2))
    });
    group.bench_function(BenchmarkId::new("modes/local_check_1k", POPULATION), |b| {
        b.iter(|| index.lookup_in_subset(std::hint::black_box(&miss), &subset, 1))
    });
    group.finish();
}

/// Closed-loop service storm: every client thread issues `per_client`
/// identifications back-to-back; returns requests/second.
fn storm<F>(clients: usize, per_client: usize, run_one: F) -> f64
where
    F: Fn(usize, usize) + Sync,
{
    let (_, secs) = time_it(|| {
        std::thread::scope(|scope| {
            for c in 0..clients {
                let run_one = &run_one;
                scope.spawn(move || {
                    for r in 0..per_client {
                        run_one(c, r);
                    }
                });
            }
        });
    });
    (clients * per_client) as f64 / secs
}

/// Protocol layer: direct concurrent identification vs scheduled, at
/// the acceptance concurrency. Also records the smoke-report numbers.
fn bench_service(c: &mut Criterion, setup: &Setup) {
    let smoke_run = smoke::smoke_mode();
    let per_client = if smoke_run { 10 } else { 24 };
    let server = enrolled_server(setup, 2);

    // The same probe pool for both paths; each (client, round) pair
    // picks a deterministic probe.
    let probes = &setup.probes;
    let pick = |c: usize, r: usize| &probes[(c * 31 + r) % probes.len()];

    let direct_rps = storm(CONCURRENCY, per_client, |c, r| {
        let mut rng = StdRng::seed_from_u64((c * 1000 + r) as u64);
        let chal = server.begin_identification(pick(c, r), &mut rng).unwrap();
        assert!(server.cancel_session(chal.session));
    });

    let scheduler = ScheduledServer::new(
        server.clone(),
        SchedulerConfig {
            max_batch: CONCURRENCY,
            max_delay: Duration::from_millis(2),
            ..SchedulerConfig::default()
        },
    );
    let scheduled_rps = storm(CONCURRENCY, per_client, |c, r| {
        let chal = scheduler.identify(pick(c, r).clone()).unwrap();
        assert!(scheduler.server().cancel_session(chal.session));
    });

    let latency = scheduler.metrics().latency_us.snapshot();
    let batch = scheduler.metrics().batch_size.snapshot();
    println!(
        "scheduler_throughput/service: direct {direct_rps:.0} req/s, scheduled \
         {scheduled_rps:.0} req/s ({:.2}×) at concurrency {CONCURRENCY} on 10^5 records \
         (mean batch {:.1}, p50 {} µs, p99 {} µs)",
        scheduled_rps / direct_rps,
        batch.mean(),
        latency.p50,
        latency.p99,
    );
    smoke::record(
        "scheduler_throughput",
        &[
            ("population", POPULATION as f64),
            ("concurrency", CONCURRENCY as f64),
            ("direct_rps_c8", direct_rps),
            ("scheduled_rps_c8", scheduled_rps),
            ("speedup_c8", scheduled_rps / direct_rps),
            ("mean_batch", batch.mean()),
            ("latency_p50_us", latency.p50 as f64),
            ("latency_p99_us", latency.p99 as f64),
        ],
    );

    // Criterion tracks the same two paths over time (smaller rounds).
    let mut group = c.benchmark_group("scheduler_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke_run { 1 } else { 3 }));
    group.warm_up_time(Duration::from_millis(if smoke_run { 100 } else { 500 }));
    let rounds = if smoke_run { 2 } else { 4 };
    group.throughput(Throughput::Elements((CONCURRENCY * rounds) as u64));
    group.bench_function(BenchmarkId::new("service/direct", CONCURRENCY), |b| {
        b.iter(|| {
            storm(CONCURRENCY, rounds, |c, r| {
                let mut rng = StdRng::seed_from_u64((c * 1000 + r) as u64);
                let chal = server.begin_identification(pick(c, r), &mut rng).unwrap();
                assert!(server.cancel_session(chal.session));
            })
        })
    });
    group.bench_function(BenchmarkId::new("service/scheduled", CONCURRENCY), |b| {
        b.iter(|| {
            storm(CONCURRENCY, rounds, |c, r| {
                let chal = scheduler.identify(pick(c, r).clone()).unwrap();
                assert!(scheduler.server().cancel_session(chal.session));
            })
        })
    });
    group.finish();
}

/// Open-loop arrival sweep: offered load × batch window × shard count.
fn bench_open_loop(setup: &Setup) {
    let smoke_run = smoke::smoke_mode();
    let shard_counts: &[usize] = if smoke_run { &[2] } else { &[1, 2, 4] };
    let windows_us: &[u64] = &[500, 2_000];
    let offered_rps: &[u64] = if smoke_run {
        &[1_000, 4_000]
    } else {
        &[1_000, 4_000, 16_000]
    };
    let requests = if smoke_run { 300 } else { 2_000 };

    let mut csv_rows = Vec::new();
    for &shards in shard_counts {
        let server = enrolled_server(setup, shards);
        for &window in windows_us {
            for &offered in offered_rps {
                let scheduler = ScheduledServer::new(
                    server.clone(),
                    SchedulerConfig {
                        max_batch: 32,
                        max_delay: Duration::from_micros(window),
                        queue_capacity: 256,
                        ..SchedulerConfig::default()
                    },
                );
                let interval = Duration::from_secs(1) / offered as u32;
                let start = Instant::now();
                let mut tickets: Vec<IdentifyTicket> = Vec::with_capacity(requests);
                let mut shed = 0usize;
                for i in 0..requests {
                    // Open loop: arrivals follow the schedule regardless
                    // of completions; a full queue sheds, never blocks.
                    let due = start + interval * i as u32;
                    while Instant::now() < due {
                        std::hint::spin_loop();
                    }
                    match scheduler.submit(setup.probes[i % setup.probes.len()].clone()) {
                        Ok(ticket) => tickets.push(ticket),
                        Err(_) => shed += 1,
                    }
                }
                let served = tickets.len();
                for ticket in tickets {
                    let chal = ticket.wait().unwrap();
                    assert!(scheduler.server().cancel_session(chal.session));
                }
                let elapsed = start.elapsed().as_secs_f64();
                let achieved = served as f64 / elapsed;
                let latency = scheduler.metrics().latency_us.snapshot();
                let batch = scheduler.metrics().batch_size.snapshot();
                println!(
                    "scheduler_throughput/open_loop: shards {shards}, window {window} µs, \
                     offered {offered} req/s → achieved {achieved:.0} req/s, shed {shed}, \
                     mean batch {:.1}, p50 {} µs, p99 {} µs",
                    batch.mean(),
                    latency.p50,
                    latency.p99,
                );
                csv_rows.push(format!(
                    "{shards},{window},{offered},{achieved:.0},{shed},{:.1},{},{}",
                    batch.mean(),
                    latency.p50,
                    latency.p99,
                ));
            }
        }
    }
    let path = write_csv(
        "scheduler_throughput.csv",
        "shards,window_us,offered_rps,achieved_rps,shed,mean_batch,p50_us,p99_us",
        &csv_rows,
    );
    println!(
        "scheduler_throughput: open-loop sweep written to {}",
        path.display()
    );
}

fn benches(c: &mut Criterion) {
    let setup = build_setup(64);
    bench_index_kernel(c, &setup);
    bench_matching_modes(c, &setup);
    bench_service(c, &setup);
    bench_open_loop(&setup);
}

criterion_group!(scheduler, benches);
criterion_main!(scheduler);
