//! The paper-faithful early-abort linear scan, on columnar storage.

use super::store::{FilterConfig, RowMask, SketchArena};
use super::{RecordId, SketchIndex};

/// Early-abort linear scan (the paper's strategy), backed by a
/// [`SketchArena`]: one contiguous width-adaptive buffer instead of a
/// `Vec` of boxed rows, so the conditions (1)–(4) scan streams through
/// memory with no pointer chasing. On `i16` rings the arena's
/// prefilter plane turns full scans into the two-phase vectorized
/// kernel (see [`FilterConfig`]).
#[derive(Debug, Clone)]
pub struct ScanIndex {
    arena: SketchArena,
}

impl ScanIndex {
    /// Creates a scan index for sketches over a ring of circumference
    /// `ka` with threshold `t`, with the default prefilter plane (see
    /// [`ScanIndex::with_filter`]).
    pub fn new(t: u64, ka: u64) -> Self {
        ScanIndex {
            arena: SketchArena::new(t, ka),
        }
    }

    /// Creates a scan index with an explicit prefilter configuration
    /// (e.g. [`FilterConfig::disabled`] for the pure scalar kernel, or
    /// [`FilterConfig::swar`] to pin the portable vector path).
    pub fn with_filter(t: u64, ka: u64, filter: FilterConfig) -> Self {
        ScanIndex {
            arena: SketchArena::with_filter(t, ka, filter),
        }
    }

    /// Materializes an enrolled sketch by id (`None` for removed or
    /// unknown ids). Values are the canonical ring representatives the
    /// arena stores.
    pub fn sketch(&self, id: RecordId) -> Option<Vec<i64>> {
        self.arena.row(id)
    }

    /// The backing arena (diagnostics and benches).
    pub fn arena(&self) -> &SketchArena {
        &self.arena
    }
}

impl SketchIndex for ScanIndex {
    fn insert(&mut self, sketch: &[i64]) -> RecordId {
        self.arena.push(sketch)
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        self.arena.find_first(probe)
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        self.arena.find_all(probe)
    }

    fn lookup_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        // The arena's bounded sweep: stops at the budget-th hit while
        // keeping the prefilter plane and parallel fan-out.
        self.arena.find_at_most(probe, budget)
    }

    fn lookup_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        if budget == 0 || subset.is_empty() {
            return Vec::new();
        }
        let mask = RowMask::from_rows(subset.iter().copied());
        self.arena.find_at_most_masked(probe, &mask, budget)
    }

    fn lookup_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        // One pass over the arena serves the whole batch (the scan is
        // memory-bound at scale; see SketchArena::find_first_batch).
        self.arena.find_first_batch(probes)
    }

    fn remove(&mut self, id: RecordId) -> bool {
        self.arena.remove(id)
    }

    fn len(&self) -> usize {
        self.arena.len()
    }

    fn slots(&self) -> usize {
        self.arena.rows()
    }

    fn dim(&self) -> Option<usize> {
        self.arena.dim()
    }

    fn copy_row_into(&self, id: RecordId, out: &mut Vec<i64>) -> bool {
        self.arena.copy_row_into(id, out)
    }

    fn for_each_live(&self, f: &mut dyn FnMut(RecordId, &[i64])) {
        self.arena.for_each_live(f);
    }

    fn reserve(&mut self, additional: usize, dim: usize) {
        self.arena.reserve(additional, dim);
    }

    fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
    }

    fn clear(&mut self) {
        self.arena.clear();
    }

    fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        self.arena.compact()
    }
}
