//! **Sec. VII text**: "The dimension n of input data is selected from
//! 1,000 to 31,000 … dimensions have negligible impact to the protocol
//! performance."
//!
//! We sweep the same range. In our implementation the sketch-side work is
//! O(n) but so cheap next to the fixed-size DSA operations that the curve
//! stays nearly flat — the paper's observation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fe_bench::Population;
use fe_protocol::SystemParams;
use std::time::Duration;

const DIMS: [usize; 4] = [1000, 11_000, 21_000, 31_000];

fn bench_dimension_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dimension_sweep");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &dim in &DIMS {
        let params = SystemParams::insecure_test_defaults();
        let mut pop = Population::build(params, 5, dim, 0xD13 + dim as u64);
        let reading = pop.genuine_reading(3);
        group.bench_with_input(BenchmarkId::new("identification", dim), &dim, |b, _| {
            b.iter(|| {
                let (outcome, _) = pop
                    .runner
                    .identify(std::hint::black_box(&reading), &mut pop.rng)
                    .expect("identified");
                assert!(outcome.is_identified());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dimension_sweep);
criterion_main!(benches);
