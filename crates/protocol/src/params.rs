//! System setup (`SysSetup`): the public parameters shared by every
//! party.

use fe_core::ChebyshevSketch;
use fe_crypto::dsa::{Dsa, DsaParams};

/// Public system parameters: the number line + threshold, the extracted
/// key length, and the DSA domain parameters.
///
/// Produced once by the authentication server and published
/// (`params = (La, t, H, Ext)` in Sec. V, plus the signature group).
#[derive(Debug, Clone)]
pub struct SystemParams {
    sketch: ChebyshevSketch,
    key_len: usize,
    dsa: DsaParams,
}

impl SystemParams {
    /// Assembles system parameters.
    pub fn new(sketch: ChebyshevSketch, key_len: usize, dsa: DsaParams) -> Self {
        SystemParams {
            sketch,
            key_len,
            dsa,
        }
    }

    /// The paper's Table II configuration with 1024-bit DSA (the classic
    /// strength of the paper's era).
    pub fn paper_defaults() -> Self {
        SystemParams::new(
            ChebyshevSketch::paper_defaults(),
            32,
            DsaParams::dsa_1024_160().clone(),
        )
    }

    /// Table II sketch parameters with **small, insecure** 512-bit DSA —
    /// fast enough for exhaustive test suites.
    pub fn insecure_test_defaults() -> Self {
        SystemParams::new(
            ChebyshevSketch::paper_defaults(),
            32,
            DsaParams::insecure_512().clone(),
        )
    }

    /// The sketch scheme (`La` and `t`).
    pub fn sketch(&self) -> &ChebyshevSketch {
        &self.sketch
    }

    /// Extracted key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// DSA domain parameters.
    pub fn dsa_params(&self) -> &DsaParams {
        &self.dsa
    }

    /// Instantiates the signature scheme.
    pub fn dsa(&self) -> Dsa {
        Dsa::new(self.dsa.clone())
    }

    /// Instantiates the fuzzy extractor (the paper's default stack).
    pub fn fuzzy_extractor(&self) -> fe_core::DefaultFuzzyExtractor {
        fe_core::FuzzyExtractor::with_defaults(self.sketch, self.key_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_defaults_shape() {
        let p = SystemParams::insecure_test_defaults();
        assert_eq!(p.sketch().line().a(), 100);
        assert_eq!(p.sketch().threshold(), 100);
        assert_eq!(p.key_len(), 32);
        assert_eq!(p.dsa_params().bits(), (512, 160));
    }

    #[test]
    fn fuzzy_extractor_instantiates() {
        let p = SystemParams::insecure_test_defaults();
        let fe = p.fuzzy_extractor();
        assert_eq!(fe.sketcher().threshold(), 100);
    }
}
