//! Property-based tests for the cryptographic primitives.

use fe_crypto::dsa::{Dsa, DsaParams};
use fe_crypto::extractor::{HmacExtractor, StrongExtractor, ToeplitzExtractor};
use fe_crypto::schnorr::Schnorr;
use fe_crypto::sig::SignatureScheme;
use fe_crypto::{ct, Digest, Hkdf, Hmac, HmacDrbg, Sha256, Sha512};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental hashing equals one-shot hashing for any chunking.
    #[test]
    fn sha256_chunking_invariance(data in prop::collection::vec(any::<u8>(), 0..2048), split in any::<u16>()) {
        let cut = (split as usize) % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_chunking_invariance(data in prop::collection::vec(any::<u8>(), 0..2048), split in any::<u16>()) {
        let cut = (split as usize) % (data.len() + 1);
        let mut h = Sha512::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), Sha512::digest(&data));
    }

    /// Different inputs hash differently (collision would be a miracle).
    #[test]
    fn sha256_injective_in_practice(a in prop::collection::vec(any::<u8>(), 0..128),
                                     b in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assume!(a != b);
        prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
    }

    /// HMAC differs under different keys and messages.
    #[test]
    fn hmac_key_separation(k1 in prop::collection::vec(any::<u8>(), 1..64),
                           k2 in prop::collection::vec(any::<u8>(), 1..64),
                           msg in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(Hmac::<Sha256>::mac(&k1, &msg), Hmac::<Sha256>::mac(&k2, &msg));
    }

    /// HKDF output length is exact and prefix-consistent.
    #[test]
    fn hkdf_lengths(ikm in prop::collection::vec(any::<u8>(), 1..64), len in 1usize..200) {
        let long = Hkdf::<Sha256>::derive(&ikm, b"salt", b"info", len);
        prop_assert_eq!(long.len(), len);
        let short = Hkdf::<Sha256>::derive(&ikm, b"salt", b"info", len.min(16));
        prop_assert_eq!(&long[..short.len()], &short[..]);
    }

    /// DRBG determinism: same seed + same call pattern = same stream.
    #[test]
    fn drbg_deterministic(seed in prop::collection::vec(any::<u8>(), 1..64), n in 1usize..128) {
        let mut a = HmacDrbg::new(&seed, b"p");
        let mut b = HmacDrbg::new(&seed, b"p");
        prop_assert_eq!(a.generate_vec(n), b.generate_vec(n));
    }

    /// Constant-time equality agrees with ==.
    #[test]
    fn ct_eq_correct(a in prop::collection::vec(any::<u8>(), 0..64),
                     b in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct::ct_eq(&a, &b), a == b);
    }

    /// DSA: any message round-trips; any *other* message fails.
    #[test]
    fn dsa_roundtrip(seed in prop::collection::vec(any::<u8>(), 1..48),
                     msg in prop::collection::vec(any::<u8>(), 0..256),
                     other in prop::collection::vec(any::<u8>(), 0..256)) {
        let dsa = Dsa::new(DsaParams::insecure_512().clone());
        let (sk, vk) = dsa.keypair_from_seed(&seed);
        let sig = dsa.sign(&sk, &msg);
        prop_assert!(dsa.verify(&vk, &msg, &sig));
        if other != msg {
            prop_assert!(!dsa.verify(&vk, &other, &sig));
        }
    }

    /// Schnorr: same contract.
    #[test]
    fn schnorr_roundtrip(seed in prop::collection::vec(any::<u8>(), 1..48),
                         msg in prop::collection::vec(any::<u8>(), 0..256)) {
        let s = Schnorr::new(DsaParams::insecure_512().clone());
        let (sk, vk) = s.keypair_from_seed(&seed);
        let sig = s.sign(&sk, &msg);
        prop_assert!(s.verify(&vk, &msg, &sig));
    }

    /// Extractors are deterministic and full-length.
    #[test]
    fn extractors_deterministic(input in prop::collection::vec(any::<u8>(), 1..128),
                                seed_byte in any::<u8>()) {
        let hmac_ext = HmacExtractor::new(32);
        let seed = vec![seed_byte; 32];
        prop_assert_eq!(hmac_ext.extract(&input, &seed), hmac_ext.extract(&input, &seed));

        let toep = ToeplitzExtractor::new(16);
        let tseed = vec![seed_byte.wrapping_add(1); toep.seed_len(input.len())];
        let out = toep.extract(&input, &tseed);
        prop_assert_eq!(out.len(), 16);
        prop_assert_eq!(out, toep.extract(&input, &tseed));
    }

    /// Toeplitz GF(2)-linearity: T(x ⊕ y) = T(x) ⊕ T(y).
    #[test]
    fn toeplitz_linear(x in prop::collection::vec(any::<u8>(), 1..64),
                       y_seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(y_seed);
        let y: Vec<u8> = (0..x.len()).map(|_| rng.gen()).collect();
        let toep = ToeplitzExtractor::new(8);
        let seed: Vec<u8> = (0..toep.seed_len(x.len())).map(|_| rng.gen()).collect();
        let xy: Vec<u8> = x.iter().zip(&y).map(|(a, b)| a ^ b).collect();
        let t_xy = toep.extract(&xy, &seed);
        let expected: Vec<u8> = toep
            .extract(&x, &seed)
            .iter()
            .zip(toep.extract(&y, &seed))
            .map(|(a, b)| a ^ b)
            .collect();
        prop_assert_eq!(t_xy, expected);
    }
}
