//! Watch-list identification — the paper's motivating scenario: a user
//! presents *only* a biometric (no identity claim) and the server must
//! find who it is among N enrolled users.
//!
//! Compares the proposed constant-cost protocol (Fig. 3) against the
//! normal O(N) approach (Fig. 2) on the same population, then scales the
//! same watch list onto the **sharded server**: users partitioned across
//! 4 independently-locked shards, with a whole camera-feed batch of
//! probes resolved per lock acquisition via `identify_batch`.
//!
//! Run with: `cargo run --release --example watchlist_identification`

use fuzzy_id::core::{EpochIndex, ShardedIndex};
use fuzzy_id::protocol::concurrent::SharedServer;
use fuzzy_id::protocol::{BiometricDevice, IndexConfig, ProtocolRunner, SystemParams};
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let params = SystemParams::insecure_test_defaults();
    let mut runner = ProtocolRunner::new(params.clone());

    // Enroll a 25-person watch list.
    let users = 25;
    let dim = 1000;
    println!("enrolling {users} users (n = {dim} features each)…");
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(dim, &mut rng);
        runner.enroll_user(&format!("suspect-{u:02}"), &bio, &mut rng)?;
        bios.push(bio);
    }

    // An unknown person walks past the camera: it is suspect-17.
    let reading: Vec<i64> = bios[17]
        .iter()
        .map(|&x| x + rng.gen_range(-95i64..=95))
        .collect();

    // Proposed protocol: sketch match + ONE signature round.
    let start = Instant::now();
    let (outcome, stats) = runner.identify(&reading, &mut rng)?;
    println!(
        "proposed protocol:  identified {:?} in {:?} ({} Rep, {} signature ops)",
        outcome.identity().unwrap_or("nobody"),
        start.elapsed(),
        stats.rep_attempts,
        stats.signature_ops,
    );

    // Normal approach: the device must grind through helper data records.
    let start = Instant::now();
    let (outcome_n, stats_n, normal) = runner.identify_normal(&reading, &mut rng)?;
    println!(
        "normal approach:    identified {:?} in {:?} ({} Rep, {} signature ops)",
        outcome_n.identity().unwrap_or("nobody"),
        start.elapsed(),
        normal.rep_attempts,
        stats_n.signature_ops,
    );
    assert_eq!(outcome, outcome_n);

    // Someone NOT on the list walks past.
    let stranger = params.sketch().line().random_vector(dim, &mut rng);
    match runner.identify(&stranger, &mut rng) {
        Err(e) => println!("stranger:           not identified ({e}) ✓"),
        Ok((o, _)) => println!("stranger:           UNEXPECTED match {o:?}"),
    }

    // ── Scaling out: the sharded server ────────────────────────────────
    // The same watch list, now partitioned across 4 server shards whose
    // per-shard index is itself a 2-way sharded scan (the IndexConfig
    // knob), serving a whole batch of camera frames per lock acquisition.
    let sharded_params = params
        .clone()
        .with_index_config(IndexConfig::ShardedScan { shards: 2 });
    let server = SharedServer::<ShardedIndex<EpochIndex>>::with_shards(sharded_params.clone(), 4);
    let device = BiometricDevice::new(sharded_params);
    println!(
        "\nsharded server:     {} shards, re-enrolling watch list…",
        server.num_shards()
    );
    for (u, bio) in bios.iter().enumerate() {
        server.enroll(device.enroll(&format!("suspect-{u:02}"), bio, &mut rng)?)?;
    }

    // A burst of frames: suspects 3, 17, 9 and one stranger in one batch.
    let frames: Vec<Vec<i64>> = [3usize, 17, 9]
        .iter()
        .map(|&u| {
            let reading: Vec<i64> = bios[u]
                .iter()
                .map(|&x| x + rng.gen_range(-95i64..=95))
                .collect();
            device.probe_sketch(&reading, &mut rng)
        })
        .collect::<Result<_, _>>()?;
    let mut batch = frames;
    batch.push(device.probe_sketch(&stranger, &mut rng)?);

    let start = Instant::now();
    let results = server.identify_batch(&batch, &mut rng);
    println!(
        "batch of {}:         resolved in {:?} ({} lookups served)",
        batch.len(),
        start.elapsed(),
        server.lookup_count(),
    );
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(chal) => println!("  frame {i}: matched (session {})", chal.session),
            Err(e) => println!("  frame {i}: no match ({e}) ✓"),
        }
    }
    assert!(results[0].is_ok() && results[1].is_ok() && results[2].is_ok());
    assert!(results[3].is_err());

    Ok(())
}
