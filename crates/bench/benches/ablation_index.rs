//! **Ablation B (ours)**: sketch lookup strategies at scale.
//!
//! * `scan` — the paper's early-abort linear scan: linear in N but with a
//!   ~2-coordinate expected cost per non-matching record.
//! * `bucket` — the LSH-style bucket index (extension): sublinear when
//!   `ka ≫ t` (here `t = 25`, 7 cells per coordinate).
//! * `scan_paper_t` — the scan at the paper's own `t = 100`, where no
//!   coordinate-level index can prune (2 cells per coordinate) and the
//!   scan is the right answer.
//! * `sharded{N}_paper_t` — the scan partitioned over N parallel shards:
//!   the only strategy that beats the single scan at the paper's own
//!   parameters, because it divides the same work across cores instead
//!   of trying (and failing) to prune it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fe_core::{
    BucketIndex, ChebyshevSketch, NumberLine, ScanIndex, SecureSketch, ShardedIndex, SketchIndex,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const DIM: usize = 64;
const SIZES: [usize; 3] = [1_000, 10_000, 50_000];

fn build(t: u64, users: usize, rng: &mut StdRng) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
    let line = NumberLine::new(100, 4, 500).unwrap();
    let scheme = ChebyshevSketch::new(line, t).unwrap();
    let mut sketches = Vec::with_capacity(users);
    let mut probes = Vec::with_capacity(users);
    for _ in 0..users {
        let x = scheme.line().random_vector(DIM, rng);
        sketches.push(scheme.sketch(&x, rng).unwrap());
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                scheme
                    .line()
                    .wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        probes.push(scheme.sketch(&noisy, rng).unwrap());
    }
    (sketches, probes)
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_index");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let ka = 400u64;

    for &users in &SIZES {
        let mut rng = StdRng::seed_from_u64(0x1DE + users as u64);

        // Small-noise regime (t = 25): bucket index can prune.
        let t = 25u64;
        let (sketches, probes) = build(t, users, &mut rng);
        let mut scan = ScanIndex::new(t, ka);
        let mut bucket = BucketIndex::new(t, ka, 4);
        for s in &sketches {
            scan.insert(s);
            bucket.insert(s);
        }
        // Probe for the last enrolled user (worst case for the scan).
        let probe = probes.last().unwrap().clone();

        group.bench_with_input(BenchmarkId::new("scan_t25", users), &users, |b, _| {
            b.iter(|| scan.lookup(std::hint::black_box(&probe)).expect("found"))
        });
        group.bench_with_input(BenchmarkId::new("bucket_t25", users), &users, |b, _| {
            b.iter(|| bucket.lookup(std::hint::black_box(&probe)).expect("found"))
        });

        // Paper regime (t = 100): bucketing cannot prune, so the
        // contenders are the plain scan and the sharded (parallel) scan.
        let t = 100u64;
        let (sketches, probes) = build(t, users, &mut rng);
        let mut scan = ScanIndex::new(t, ka);
        let mut sharded4 = ShardedIndex::scan(4, t, ka);
        let mut sharded8 = ShardedIndex::scan(8, t, ka);
        for s in &sketches {
            scan.insert(s);
            sharded4.insert(s);
            sharded8.insert(s);
        }
        let probe = probes.last().unwrap().clone();
        group.bench_with_input(BenchmarkId::new("scan_paper_t", users), &users, |b, _| {
            b.iter(|| scan.lookup(std::hint::black_box(&probe)).expect("found"))
        });
        group.bench_with_input(
            BenchmarkId::new("sharded4_paper_t", users),
            &users,
            |b, _| {
                b.iter(|| {
                    sharded4
                        .lookup(std::hint::black_box(&probe))
                        .expect("found")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded8_paper_t", users),
            &users,
            |b, _| {
                b.iter(|| {
                    sharded8
                        .lookup(std::hint::black_box(&probe))
                        .expect("found")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
