//! High-level modular arithmetic on [`Natural`]: `mod_add`, `mod_sub`,
//! `mod_mul`, `mod_pow`, `mod_inv` and the extended Euclidean algorithm.

use crate::montgomery::Montgomery;
use crate::{ExtendedGcd, Integer, Natural};

impl Natural {
    /// `(self + other) mod m`. Operands need not be reduced.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn mod_add(&self, other: &Natural, m: &Natural) -> Natural {
        (self + other).rem_nat(m)
    }

    /// `(self - other) mod m`, well-defined even when `other > self`.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn mod_sub(&self, other: &Natural, m: &Natural) -> Natural {
        let a = self.rem_nat(m);
        let b = other.rem_nat(m);
        if a >= b {
            &a - &b
        } else {
            &(m - &b) + &a
        }
    }

    /// `(self * other) mod m`.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn mod_mul(&self, other: &Natural, m: &Natural) -> Natural {
        (self * other).rem_nat(m)
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication (4-bit window) when `m` is odd; falls
    /// back to square-and-multiply with full reductions when `m` is even.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// let p = Natural::from(23u64);
    /// let y = Natural::from(5u64).mod_pow(&Natural::from(6u64), &p);
    /// assert_eq!(y, Natural::from(8u64)); // 5^6 = 15625 ≡ 8 (mod 23)
    /// ```
    pub fn mod_pow(&self, exp: &Natural, m: &Natural) -> Natural {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m.is_one() {
            return Natural::zero();
        }
        if let Some(ctx) = Montgomery::new(m) {
            return ctx.pow(self, exp);
        }
        // Even modulus: plain left-to-right square-and-multiply.
        let mut acc = Natural::one();
        let base = self.rem_nat(m);
        for i in (0..exp.bit_length()).rev() {
            acc = acc.mod_mul(&acc, m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
        }
        acc
    }

    /// Extended Euclidean algorithm: returns `g = gcd(self, other)` and
    /// Bézout coefficients `x`, `y` with `self·x + other·y = g`.
    pub fn extended_gcd(&self, other: &Natural) -> ExtendedGcd {
        let mut r0 = Integer::from_natural(self.clone());
        let mut r1 = Integer::from_natural(other.clone());
        let mut x0 = Integer::one();
        let mut x1 = Integer::zero();
        let mut y0 = Integer::zero();
        let mut y1 = Integer::one();
        while !r1.is_zero() {
            let (q, _) = r0.magnitude().div_rem(r1.magnitude());
            let q = Integer::from_natural(q);
            let r2 = &r0 - &(&q * &r1);
            let x2 = &x0 - &(&q * &x1);
            let y2 = &y0 - &(&q * &y1);
            r0 = r1;
            r1 = r2;
            x0 = x1;
            x1 = x2;
            y0 = y1;
            y1 = y2;
        }
        ExtendedGcd {
            gcd: r0.magnitude().clone(),
            x: x0,
            y: y0,
        }
    }

    /// Modular inverse: `self^{-1} mod m`, or `None` if
    /// `gcd(self, m) != 1`.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// let inv = Natural::from(3u64).mod_inv(&Natural::from(7u64)).unwrap();
    /// assert_eq!(inv, Natural::from(5u64)); // 3·5 = 15 ≡ 1 (mod 7)
    /// ```
    pub fn mod_inv(&self, m: &Natural) -> Option<Natural> {
        assert!(!m.is_zero(), "modulus must be non-zero");
        let a = self.rem_nat(m);
        if a.is_zero() {
            return None;
        }
        let ext = a.extended_gcd(m);
        if !ext.gcd.is_one() {
            return None;
        }
        Some(ext.x.mod_floor(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn mod_add_wraps() {
        let m = n(10);
        assert_eq!(n(7).mod_add(&n(8), &m), n(5));
        assert_eq!(n(123).mod_add(&n(456), &m), n(9));
    }

    #[test]
    fn mod_sub_handles_underflow() {
        let m = n(10);
        assert_eq!(n(3).mod_sub(&n(8), &m), n(5));
        assert_eq!(n(8).mod_sub(&n(3), &m), n(5));
        assert_eq!(n(3).mod_sub(&n(3), &m), n(0));
        // Unreduced operands.
        assert_eq!(n(13).mod_sub(&n(28), &m), n(5));
    }

    #[test]
    fn mod_mul_reduces() {
        let m = n(97);
        assert_eq!(n(96).mod_mul(&n(96), &m), n(1));
    }

    #[test]
    fn mod_pow_odd_and_even_moduli() {
        // Odd modulus goes through Montgomery.
        assert_eq!(n(5).mod_pow(&n(6), &n(23)), n(8));
        // Even modulus goes through the fallback.
        assert_eq!(n(5).mod_pow(&n(6), &n(24)), n(15625 % 24));
        // Modulus one.
        assert_eq!(n(5).mod_pow(&n(6), &n(1)), n(0));
    }

    #[test]
    fn mod_pow_large_prime() {
        // Fermat: a^(p-1) = 1 mod p for 127-bit Mersenne prime 2^127 - 1.
        let p = Natural::power_of_two(127)
            .checked_sub(&Natural::one())
            .unwrap();
        let exp = p.checked_sub(&Natural::one()).unwrap();
        assert_eq!(n(3).mod_pow(&exp, &p), Natural::one());
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        let a = n(240);
        let b = n(46);
        let ext = a.extended_gcd(&b);
        assert_eq!(ext.gcd, n(2));
        let lhs = &(&Integer::from_natural(a) * &ext.x) + &(&Integer::from_natural(b) * &ext.y);
        assert_eq!(lhs, Integer::from_natural(n(2)));
    }

    #[test]
    fn mod_inv_basic() {
        assert_eq!(n(3).mod_inv(&n(7)), Some(n(5)));
        assert_eq!(n(2).mod_inv(&n(4)), None); // not coprime
        assert_eq!(n(0).mod_inv(&n(7)), None);
        assert_eq!(n(1).mod_inv(&n(7)), Some(n(1)));
    }

    #[test]
    fn mod_inv_roundtrip_large() {
        let p = Natural::power_of_two(127)
            .checked_sub(&Natural::one())
            .unwrap();
        let a = Natural::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        let inv = a.mod_inv(&p).expect("p is prime, inverse exists");
        assert_eq!(a.mod_mul(&inv, &p), Natural::one());
    }

    #[test]
    fn mod_inv_unreduced_input() {
        // self larger than modulus.
        let inv = n(10).mod_inv(&n(7)).unwrap();
        assert_eq!(n(10).mod_mul(&inv, &n(7)), Natural::one());
    }
}
