//! The finite field GF(2^m) with log/antilog table arithmetic (2 ≤ m ≤ 16).

use crate::CodeError;

/// Standard primitive polynomials for GF(2^m), index = m.
/// Bit `i` of the entry is the coefficient of `x^i`.
const PRIMITIVE_POLYS: [u32; 17] = [
    0,
    0,
    0b111,               // m=2:  x^2 + x + 1
    0b1011,              // m=3:  x^3 + x + 1
    0b10011,             // m=4:  x^4 + x + 1
    0b100101,            // m=5:  x^5 + x^2 + 1
    0b1000011,           // m=6:  x^6 + x + 1
    0b10001001,          // m=7:  x^7 + x^3 + 1
    0b100011101,         // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,        // m=9:  x^9 + x^4 + 1
    0b10000001001,       // m=10: x^10 + x^3 + 1
    0b100000000101,      // m=11: x^11 + x^2 + 1
    0b1000001010011,     // m=12: x^12 + x^6 + x^4 + x + 1
    0b10000000011011,    // m=13: x^13 + x^4 + x^3 + x + 1
    0b100010001000011,   // m=14: x^14 + x^10 + x^6 + x + 1
    0b1000000000000011,  // m=15: x^15 + x + 1
    0b10001000000001011, // m=16: x^16 + x^12 + x^3 + x + 1
];

/// GF(2^m): elements are `u16` values in `[0, 2^m)`, addition is XOR,
/// multiplication uses log/antilog tables built from a primitive
/// polynomial.
///
/// ```rust
/// use fe_ecc::Gf2m;
///
/// # fn main() -> Result<(), fe_ecc::CodeError> {
/// let f = Gf2m::new(8)?; // GF(256), the AES field size (different poly)
/// let a = 0x57;
/// let inv = f.inv(a).unwrap();
/// assert_eq!(f.mul(a, inv), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gf2m {
    m: u32,
    order: u32, // 2^m - 1, the multiplicative order
    log: Vec<u32>,
    antilog: Vec<u16>,
}

impl Gf2m {
    /// Constructs GF(2^m).
    ///
    /// # Errors
    /// Returns [`CodeError::BadParameters`] if `m` is outside `2..=16`.
    pub fn new(m: u32) -> Result<Gf2m, CodeError> {
        if !(2..=16).contains(&m) {
            return Err(CodeError::BadParameters);
        }
        let poly = PRIMITIVE_POLYS[m as usize];
        let size = 1u32 << m;
        let order = size - 1;
        let mut log = vec![u32::MAX; size as usize];
        let mut antilog = vec![0u16; order as usize];
        let mut x = 1u32;
        for i in 0..order {
            antilog[i as usize] = x as u16;
            debug_assert_eq!(log[x as usize], u32::MAX, "polynomial not primitive");
            log[x as usize] = i;
            x <<= 1;
            if x & size != 0 {
                x ^= poly;
            }
        }
        Ok(Gf2m {
            m,
            order,
            log,
            antilog,
        })
    }

    /// Field extension degree `m`.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Field size `2^m`.
    pub fn size(&self) -> usize {
        1usize << self.m
    }

    /// Multiplicative group order `2^m - 1`.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Field addition (XOR).
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = (self.log[a as usize] + self.log[b as usize]) % self.order;
        self.antilog[idx as usize]
    }

    /// Multiplicative inverse; `None` for zero.
    #[inline]
    pub fn inv(&self, a: u16) -> Option<u16> {
        if a == 0 {
            return None;
        }
        let idx = (self.order - self.log[a as usize]) % self.order;
        Some(self.antilog[idx as usize])
    }

    /// Field division `a / b`; `None` when `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> Option<u16> {
        self.inv(b).map(|bi| self.mul(a, bi))
    }

    /// `a^e` with `e` reduced modulo the group order (negative allowed).
    pub fn pow(&self, a: u16, e: i64) -> u16 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let log_a = self.log[a as usize] as i64;
        let exp = (log_a * e).rem_euclid(self.order as i64) as u32;
        self.antilog[exp as usize]
    }

    /// `α^e`, a power of the primitive element.
    #[inline]
    pub fn alpha_pow(&self, e: i64) -> u16 {
        let exp = e.rem_euclid(self.order as i64) as u32;
        self.antilog[exp as usize]
    }

    /// Discrete log base α; `None` for zero.
    #[inline]
    pub fn log(&self, a: u16) -> Option<u32> {
        if a == 0 {
            None
        } else {
            Some(self.log[a as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(Gf2m::new(1).is_err());
        assert!(Gf2m::new(17).is_err());
        for m in 2..=16 {
            assert!(Gf2m::new(m).is_ok(), "m={m}");
        }
    }

    #[test]
    fn all_table_polynomials_are_primitive() {
        // α must generate the full multiplicative group: every non-zero
        // element gets a discrete log during table construction. (This
        // runs in release mode too, unlike the builder's debug_assert —
        // it caught a typo'd m=14 polynomial once.)
        for m in 2..=16 {
            let f = Gf2m::new(m).unwrap();
            for a in 1..f.size() as u32 {
                assert!(
                    f.log(a as u16).is_some_and(|l| l < f.order()),
                    "m={m}: element {a} unreachable from α"
                );
            }
        }
    }

    #[test]
    fn gf16_multiplication_table_spot_checks() {
        // GF(16) with x^4 + x + 1: α^4 = α + 1 = 0b0011 = 3.
        let f = Gf2m::new(4).unwrap();
        assert_eq!(f.alpha_pow(0), 1);
        assert_eq!(f.alpha_pow(1), 2);
        assert_eq!(f.alpha_pow(4), 3);
        assert_eq!(f.mul(2, 2), 4); // α·α = α²
        assert_eq!(f.mul(8, 2), 3); // α³·α = α⁴ = α+1
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for m in [3u32, 4, 8, 10] {
            let f = Gf2m::new(m).unwrap();
            for a in 1..f.size() as u16 {
                let inv = f.inv(a).unwrap();
                assert_eq!(f.mul(a, inv), 1, "m={m} a={a}");
            }
            assert_eq!(f.inv(0), None);
        }
    }

    #[test]
    fn mul_commutative_associative_gf256() {
        let f = Gf2m::new(8).unwrap();
        let elems = [0u16, 1, 2, 3, 0x53, 0xca, 0xff];
        for &a in &elems {
            for &b in &elems {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for &c in &elems {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity_gf256() {
        let f = Gf2m::new(8).unwrap();
        for a in [3u16, 0x57, 0xfe] {
            for b in [1u16, 0x13, 0x80] {
                for c in [0u16, 5, 0xaa] {
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn pow_laws() {
        let f = Gf2m::new(6).unwrap();
        let a = 0x2a;
        assert_eq!(f.pow(a, 0), 1);
        assert_eq!(f.pow(a, 1), a);
        assert_eq!(f.pow(a, 2), f.mul(a, a));
        // a^order = 1, a^-1 = inverse.
        assert_eq!(f.pow(a, f.order() as i64), 1);
        assert_eq!(f.pow(a, -1), f.inv(a).unwrap());
        // 0^e
        assert_eq!(f.pow(0, 5), 0);
        assert_eq!(f.pow(0, 0), 1);
    }

    #[test]
    fn alpha_generates_whole_group() {
        let f = Gf2m::new(5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in 0..f.order() as i64 {
            seen.insert(f.alpha_pow(e));
        }
        assert_eq!(seen.len(), f.order() as usize);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn log_antilog_roundtrip() {
        let f = Gf2m::new(8).unwrap();
        for a in 1..256u16 {
            assert_eq!(f.alpha_pow(f.log(a).unwrap() as i64), a);
        }
        assert_eq!(f.log(0), None);
    }
}
