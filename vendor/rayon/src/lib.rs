//! Offline, API-compatible subset of `rayon`.
//!
//! Provides `par_iter()` over slices with `map` / `filter_map` /
//! `enumerate` / `for_each` / `collect` / `find_map_first`, executed on
//! `std::thread::scope` worker threads (one contiguous chunk per
//! hardware thread) instead of a work-stealing pool. Unlike real rayon
//! the adaptors are **eager** — each stage materializes its results —
//! which is equivalent for this workspace's usage (coarse-grained shard
//! and batch fan-out) and keeps the shim tiny.
//!
//! `map`/`collect` preserve input order, and `find_map_first` returns
//! the match with the lowest index (cancelling workers that can no
//! longer win), matching rayon's semantics.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads for `n` items.
fn workers_for(n: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    hw.min(n).max(1)
}

/// Splits `items` into at most `workers` contiguous chunks.
fn chunk_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let per = len.div_ceil(workers);
    (0..workers)
        .map(|w| (w * per, ((w + 1) * per).min(len)))
        .filter(|(lo, hi)| lo < hi)
        .collect()
}

/// An eager parallel iterator holding its items.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let n = self.items.len();
        let workers = workers_for(n);
        if workers <= 1 {
            return ParIter {
                items: self.items.into_iter().map(f).collect(),
            };
        }
        let bounds = chunk_bounds(n, workers);
        let mut slots: Vec<Mutex<Vec<R>>> = bounds.iter().map(|_| Mutex::new(Vec::new())).collect();
        {
            let f = &f;
            let mut rest: Vec<I> = self.items;
            // Drain chunks back-to-front so each thread owns its items.
            let mut chunks: Vec<Vec<I>> = Vec::with_capacity(bounds.len());
            for &(lo, _hi) in bounds.iter().rev() {
                chunks.push(rest.split_off(lo));
            }
            chunks.reverse();
            std::thread::scope(|scope| {
                for (chunk, slot) in chunks.into_iter().zip(&slots) {
                    scope.spawn(move || {
                        let out: Vec<R> = chunk.into_iter().map(f).collect();
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = out;
                    });
                }
            });
        }
        let mut items = Vec::with_capacity(n);
        for slot in &mut slots {
            items.append(slot.get_mut().unwrap_or_else(|p| p.into_inner()));
        }
        ParIter { items }
    }

    /// `map` + drop `None` results, preserving order.
    pub fn filter_map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(I) -> Option<R> + Sync,
    {
        let mapped = self.map(f);
        ParIter {
            items: mapped.items.into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        self.map(f).items.clear();
    }

    /// Collects the (already materialized) items.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// The minimum item, if any (items are already materialized, so
    /// this is a plain reduction).
    pub fn min(self) -> Option<I>
    where
        I: Ord,
    {
        self.items.into_iter().min()
    }

    /// Returns `f`'s result for the lowest-indexed item where it is
    /// `Some`, cancelling workers whose remaining indices cannot win.
    pub fn find_map_first<R, F>(self, f: F) -> Option<R>
    where
        R: Send,
        F: Fn(I) -> Option<R> + Sync,
    {
        let n = self.items.len();
        let workers = workers_for(n);
        if workers <= 1 {
            return self.items.into_iter().find_map(f);
        }
        let bounds = chunk_bounds(n, workers);
        let best_idx = AtomicUsize::new(usize::MAX);
        let best: Mutex<Option<(usize, R)>> = Mutex::new(None);
        {
            let f = &f;
            let best = &best;
            let best_idx = &best_idx;
            let mut rest: Vec<I> = self.items;
            let mut chunks: Vec<(usize, Vec<I>)> = Vec::with_capacity(bounds.len());
            for &(lo, _hi) in bounds.iter().rev() {
                chunks.push((lo, rest.split_off(lo)));
            }
            chunks.reverse();
            std::thread::scope(|scope| {
                for (lo, chunk) in chunks {
                    scope.spawn(move || {
                        for (off, item) in chunk.into_iter().enumerate() {
                            let idx = lo + off;
                            if best_idx.load(Ordering::Acquire) < idx {
                                return; // an earlier match already won
                            }
                            if let Some(r) = f(item) {
                                best_idx.fetch_min(idx, Ordering::AcqRel);
                                let mut guard = best.lock().unwrap_or_else(|p| p.into_inner());
                                match guard.as_ref() {
                                    Some((cur, _)) if *cur <= idx => {}
                                    _ => *guard = Some((idx, r)),
                                }
                                return;
                            }
                        }
                    });
                }
            });
        }
        best.into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .map(|(_, r)| r)
    }
}

/// `.par_iter()` on shared slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'data> {
    /// The per-item reference type.
    type Item: Send;
    /// Starts a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Consuming parallel iteration over owned collections.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;
    /// Starts a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_then_map() {
        let input = ["a", "b", "c"];
        let out: Vec<String> = input
            .par_iter()
            .enumerate()
            .map(|(i, s)| format!("{i}{s}"))
            .collect();
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn find_map_first_returns_lowest_index() {
        let input: Vec<u64> = (0..100_000).collect();
        // Many items qualify; the first (index 17) must win every time.
        for _ in 0..20 {
            let found = input.par_iter().find_map_first(|&x| (x >= 17).then_some(x));
            assert_eq!(found, Some(17));
        }
    }

    #[test]
    fn find_map_first_none_when_absent() {
        let input: Vec<u64> = (0..1000).collect();
        assert_eq!(
            input
                .par_iter()
                .find_map_first(|&x| (x > 5000).then_some(x)),
            None
        );
    }

    #[test]
    fn filter_map_drops_none() {
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = input
            .par_iter()
            .filter_map(|&x| (x % 10 == 0).then_some(x))
            .collect();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn into_par_iter_owned() {
        let out: Vec<u64> = vec![3u64, 1, 2].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 3]);
    }

    #[test]
    fn empty_input() {
        let empty: Vec<u64> = Vec::new();
        let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        assert_eq!(empty.par_iter().find_map_first(|&x| Some(x)), None);
    }
}
