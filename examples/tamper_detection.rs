//! Active-adversary demo: the robust sketch (Sec. IV-C, Boyen et al.)
//! detects helper-data tampering, both at rest and in flight on the
//! device↔server link.
//!
//! Run with: `cargo run --release --example tamper_detection`

use fuzzy_id::protocol::transport::{Link, Tamper};
use fuzzy_id::protocol::{AuthenticationServer, BiometricDevice, IdentChallenge, SystemParams};
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut server = AuthenticationServer::new(params.clone());

    let bio = params.sketch().line().random_vector(500, &mut rng);
    server.enroll(device.enroll("alice", &bio, &mut rng)?)?;

    let reading: Vec<i64> = bio
        .iter()
        .map(|&x| x + rng.gen_range(-80i64..=80))
        .collect();

    // 1. Honest run over a clean link.
    let probe = device.probe_sketch(&reading, &mut rng)?;
    let mut link: Link<IdentChallenge> = Link::new();
    let challenge = server.begin_identification(&probe, &mut rng)?;
    link.send(challenge).map_err(|_| "link closed")?;
    let delivered = link
        .recv(Duration::from_secs(1))
        .expect("message delivered");
    let response = device.respond(&reading, &delivered, &mut rng)?;
    let outcome = server.finish_identification(&response)?;
    println!("clean link:     {outcome:?} ✓");

    // 2. A man-in-the-middle perturbs the helper data in flight: the
    //    robust sketch's hash check on the device catches it.
    let probe = device.probe_sketch(&reading, &mut rng)?;
    let mut evil_link: Link<IdentChallenge> = Link::new().with_adversary(Box::new(|mut msg| {
        msg.helper.sketch.inner[0] += 4; // nudge one movement
        Tamper::Modify(msg)
    }));
    let challenge = server.begin_identification(&probe, &mut rng)?;
    evil_link.send(challenge).map_err(|_| "link closed")?;
    let tampered = evil_link.recv(Duration::from_secs(1)).expect("delivered");
    match device.respond(&reading, &tampered, &mut rng) {
        Err(e) => println!("tampered link:  device refuses to answer ({e}) ✓"),
        Ok(_) => println!("tampered link:  UNEXPECTED response"),
    }

    // 3. The adversary drops the challenge entirely: the device times out
    //    and the pending session on the server can never be replayed.
    let probe = device.probe_sketch(&reading, &mut rng)?;
    let mut black_hole: Link<IdentChallenge> =
        Link::new().with_adversary(Box::new(|_| Tamper::Drop));
    let challenge = server.begin_identification(&probe, &mut rng)?;
    let session = challenge.session;
    black_hole.send(challenge).map_err(|_| "link closed")?;
    assert!(black_hole.recv(Duration::from_millis(50)).is_none());
    println!("dropped link:   device times out (session {session} stays unanswered) ✓");

    Ok(())
}
