//! In-memory transport simulation: typed duplex links with optional
//! latency injection and an adversary hook that can observe or tamper
//! with messages in flight.
//!
//! The paper's threat model (Sec. VI-B) gives the adversary the ability
//! to eavesdrop and to modify, inject or delete messages on the channel
//! between the biometric device and the authentication server. The
//! [`Link`] type makes those capabilities explicit and testable.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// What the adversary does with each message it sees.
pub enum Tamper<T> {
    /// Deliver unchanged.
    Pass(T),
    /// Deliver a modified message.
    Modify(T),
    /// Drop the message entirely.
    Drop,
}

/// A function inspecting every in-flight message.
pub type Adversary<T> = Box<dyn FnMut(T) -> Tamper<T> + Send>;

/// One directional, typed message link.
///
/// Latency is simulated with **deliver-at deadlines**: `send` stamps
/// each message with `now + latency` and returns immediately; `recv`
/// waits out whatever remains of the *earliest* message's deadline.
/// Senders are never blocked, and `n` messages in flight become
/// receivable after one latency period — not `n` of them back to back —
/// matching how a real network pipelines in-flight packets.
pub struct Link<T> {
    tx: Sender<(Instant, T)>,
    rx: Receiver<(Instant, T)>,
    latency: Duration,
    adversary: Option<Adversary<T>>,
    delivered: u64,
    dropped: u64,
}

impl<T> std::fmt::Debug for Link<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("latency", &self.latency)
            .field("has_adversary", &self.adversary.is_some())
            .field("delivered", &self.delivered)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl<T> Link<T> {
    /// Creates a clean link with no latency and no adversary.
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        Link {
            tx,
            rx,
            latency: Duration::ZERO,
            adversary: None,
            delivered: 0,
            dropped: 0,
        }
    }

    /// Sets a fixed one-way latency: each message becomes receivable
    /// `latency` after its `send` (deliver-at deadline), without
    /// blocking the sender or serializing in-flight messages.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Installs an adversary that sees every message.
    pub fn with_adversary(mut self, adversary: Adversary<T>) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Sends a message into the link, stamping its deliver-at deadline.
    /// Never blocks, whatever the configured latency.
    ///
    /// # Errors
    /// Returns the message back if the link is disconnected.
    pub fn send(&mut self, msg: T) -> Result<(), T> {
        let msg = match self.adversary.as_mut() {
            Some(adv) => match adv(msg) {
                Tamper::Pass(m) | Tamper::Modify(m) => m,
                Tamper::Drop => {
                    self.dropped += 1;
                    return Ok(());
                }
            },
            None => msg,
        };
        self.tx
            .send((Instant::now() + self.latency, msg))
            .map_err(|e| e.0 .1)
    }

    /// Receives the next message, waiting out whatever remains of its
    /// deliver-at deadline. Returns `None` when no message arrives
    /// within `timeout` (covers adversarial drops).
    pub fn recv(&mut self, timeout: Duration) -> Option<T> {
        match self.rx.recv_timeout(timeout) {
            Ok((deliver_at, m)) => {
                // Channel order is send order, and every message gets
                // the same latency, so the head's deadline is earliest.
                let now = Instant::now();
                if deliver_at > now {
                    std::thread::sleep(deliver_at - now);
                }
                self.delivered += 1;
                Some(m)
            }
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Messages successfully delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped by the adversary.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<T> Default for Link<T> {
    fn default() -> Self {
        Link::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMEOUT: Duration = Duration::from_millis(100);

    #[test]
    fn clean_link_delivers_in_order() {
        let mut link: Link<u32> = Link::new();
        link.send(1).unwrap();
        link.send(2).unwrap();
        assert_eq!(link.recv(TIMEOUT), Some(1));
        assert_eq!(link.recv(TIMEOUT), Some(2));
        assert_eq!(link.delivered(), 2);
    }

    #[test]
    fn empty_link_times_out() {
        let mut link: Link<u32> = Link::new();
        assert_eq!(link.recv(Duration::from_millis(10)), None);
    }

    #[test]
    fn adversary_modifies_messages() {
        let mut link: Link<u32> = Link::new().with_adversary(Box::new(|m| Tamper::Modify(m ^ 1)));
        link.send(10).unwrap();
        assert_eq!(link.recv(TIMEOUT), Some(11));
    }

    #[test]
    fn adversary_drops_messages() {
        let mut link: Link<u32> = Link::new().with_adversary(Box::new(|m| {
            if m % 2 == 0 {
                Tamper::Drop
            } else {
                Tamper::Pass(m)
            }
        }));
        link.send(2).unwrap();
        link.send(3).unwrap();
        assert_eq!(link.recv(TIMEOUT), Some(3));
        assert_eq!(link.dropped(), 1);
    }

    #[test]
    fn latency_is_applied() {
        let mut link: Link<u32> = Link::new().with_latency(Duration::from_millis(20));
        link.send(5).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(link.recv(TIMEOUT), Some(5));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn latency_does_not_serialize_in_flight_messages() {
        // 10 messages at 40 ms latency: deliver-at deadlines overlap, so
        // draining the queue costs ~one latency period, not ~400 ms.
        // Bounds are generous (a serialized drain would take 10×) so a
        // scheduler stall on a loaded 1-CPU runner cannot flake them.
        let latency = Duration::from_millis(40);
        let mut link: Link<u32> = Link::new().with_latency(latency);
        let send_start = std::time::Instant::now();
        for m in 0..10 {
            link.send(m).unwrap();
        }
        // Capture the bound *before* draining: the last message's
        // deliver-at deadline is at least `latency − sent` away, so a
        // recv that skipped the deadline wait would finish early and
        // fail the lower bound.
        let sent = send_start.elapsed();
        assert!(
            sent < latency * 3,
            "senders must not block on latency (took {sent:?})"
        );
        let drain_start = std::time::Instant::now();
        for m in 0..10 {
            assert_eq!(link.recv(Duration::from_secs(5)), Some(m));
        }
        let drained = drain_start.elapsed();
        if sent < latency {
            // Only provable when the sends beat the first deadline.
            assert!(
                drained >= latency - sent,
                "recv must wait out the deliver-at deadline ({drained:?})"
            );
        }
        assert!(
            drained < latency * 6,
            "draining 10 messages took {drained:?}: latency is serializing"
        );
    }
}
