//! Hamming distance over bit vectors and byte strings — the metric of the
//! code-offset sketch and fuzzy commitment baselines.

use crate::{BitVec, Metric};

/// Hamming distance on [`BitVec`]s: the number of differing bit positions.
///
/// ```rust
/// use fe_metrics::{BitVec, Hamming, Metric};
///
/// let a = BitVec::from_bools(&[true, false, true]);
/// let b = BitVec::from_bools(&[true, true, false]);
/// assert_eq!(Hamming.distance(&a, &b), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Hamming;

impl Metric<BitVec> for Hamming {
    type Distance = u64;

    /// # Panics
    /// Panics if the vectors have different lengths.
    fn distance(&self, a: &BitVec, b: &BitVec) -> u64 {
        a.xor_weight(b) as u64
    }
}

/// Hamming distance on byte slices (per-byte inequality count — the
/// "symbol Hamming distance" used by Reed–Solomon style codes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteHamming;

impl Metric<[u8]> for ByteHamming {
    type Distance = u64;

    /// # Panics
    /// Panics if the slices have different lengths.
    fn distance(&self, a: &[u8], b: &[u8]) -> u64 {
        assert_eq!(a.len(), b.len(), "length mismatch");
        a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_hamming() {
        let a = BitVec::from_fn(128, |i| i % 2 == 0);
        let b = BitVec::from_fn(128, |i| i % 4 == 0);
        assert_eq!(Hamming.distance(&a, &b), 32);
        assert_eq!(Hamming.distance(&a, &a), 0);
    }

    #[test]
    fn byte_hamming() {
        assert_eq!(ByteHamming.distance(b"karolin", b"kathrin"), 3);
        assert_eq!(ByteHamming.distance(b"", b""), 0);
    }

    #[test]
    fn symmetry() {
        let a = BitVec::from_fn(50, |i| i % 3 == 0);
        let b = BitVec::from_fn(50, |i| i % 5 == 0);
        assert_eq!(Hamming.distance(&a, &b), Hamming.distance(&b, &a));
    }
}
