//! Cross-crate property-based tests: the paper's theorems as proptest
//! properties over randomized configurations.

use fuzzy_id::core::codec::{
    self, decode_helper, decode_sketch, encode_helper, encode_sketch, CodecError, Fingerprint,
};
use fuzzy_id::core::conditions::{cyclic_close, paper_conditions_hold, sketches_match};
use fuzzy_id::core::{
    ChebyshevSketch, FuzzyExtractor, HelperData, NumberLine, RobustData, ScanIndex, SecureSketch,
    ShardedIndex, SketchIndex,
};
use fuzzy_id::metrics::{Metric, RingChebyshev};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random but always-valid (line, threshold) configurations.
/// `a >= 2` keeps the interval length `ka >= 4`, so a threshold
/// `1 <= t < ka/2` always exists.
fn line_and_t() -> impl Strategy<Value = (NumberLine, u64)> {
    (2u64..50, 1u64..6, 2u64..40).prop_flat_map(|(a, half_k, v)| {
        let k = half_k * 2;
        let line = NumberLine::new(a, k, v).expect("valid by construction");
        let t_max = line.interval_len() / 2 - 1;
        (Just(line), 1..=t_max)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 (forward direction): any reading within cyclic Chebyshev
    /// distance t recovers the enrolled vector exactly.
    #[test]
    fn theorem1_recovery_within_t(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..20,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        prop_assert_eq!(scheme.recover(&noisy, &sketch).unwrap(), x);
    }

    /// Theorem 1 (converse): a reading farther than t in some coordinate
    /// either fails or recovers a *different* vector — never silently the
    /// right one.
    #[test]
    fn theorem1_no_false_recovery(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..10,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let mut bad = x.clone();
        // Push one coordinate strictly beyond t (cyclically).
        let delta = (t + 1).min(line.period() / 2) as i64;
        bad[0] = line.wrap(bad[0] + delta);
        let ring = RingChebyshev::new(line.period());
        prop_assume!(ring.distance(&x[..], &bad[..]) > t);
        match scheme.recover(&bad, &sketch) {
            Err(_) => {}
            Ok(recovered) => prop_assert_ne!(recovered, x),
        }
    }

    /// The sketch never stores anything but bounded movements:
    /// |s_i| ≤ ka/2 — the Theorem 3 storage accounting assumption.
    #[test]
    fn sketch_values_bounded(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..20,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let half = (line.interval_len() / 2) as i64;
        prop_assert!(sketch.iter().all(|&s| -half <= s && s <= half));
    }

    /// Theorem 2 equivalence: the paper's four conditions equal the
    /// cyclic-distance test for all legal sketch pairs.
    #[test]
    fn conditions_equal_cyclic(
        ka_half in 2i64..500,
        t_raw in 1u64..500,
        s in -500i64..=500,
        sp in -500i64..=500,
    ) {
        let ka = (2 * ka_half) as u64;
        let t = t_raw % (ka / 2);
        prop_assume!(t >= 1);
        let s = s.clamp(-ka_half, ka_half);
        let sp = sp.clamp(-ka_half, ka_half);
        prop_assert_eq!(
            paper_conditions_hold(s, sp, t, ka),
            cyclic_close(s, sp, t, ka)
        );
    }

    /// Theorem 2 (completeness): sketches of close readings always match.
    #[test]
    fn close_readings_always_match(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..16,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        let sx = scheme.sketch(&x, &mut rng).unwrap();
        let sy = scheme.sketch(&noisy, &mut rng).unwrap();
        prop_assert!(sketches_match(&sx, &sy, t, line.interval_len()));
    }

    /// Full fuzzy extractor roundtrip under random configurations.
    #[test]
    fn fuzzy_extractor_roundtrip(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..12,
        key_len in 16usize..48,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let fe = FuzzyExtractor::with_defaults(scheme, key_len);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let (key, helper) = fe.generate(&x, &mut rng).unwrap();
        prop_assert_eq!(key.len(), key_len);
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        prop_assert_eq!(fe.reproduce(&noisy, &helper).unwrap(), key);
    }

    /// Sharding is transparent: on a random sketch population,
    /// `ShardedIndex<ScanIndex>` and a plain `ScanIndex` assign the same
    /// record ids and return identical `lookup` / `lookup_all` /
    /// `lookup_batch` results — including after random removals, which
    /// must leave the surviving ids stable.
    #[test]
    fn sharded_index_equivalent_to_scan(
        shards in 1usize..=6,
        users in 1usize..60,
        dim in 1usize..8,
        seed in any::<u64>(),
        removal_mask in any::<u64>(),
    ) {
        const T: u64 = 100;
        const KA: u64 = 400;
        let mut rng = StdRng::seed_from_u64(seed);
        let half = (KA / 2) as i64;

        // Random sketch population (coordinates span the legal sketch
        // range [-ka/2, ka/2]; duplicates and near-duplicates arise
        // naturally, which is exactly what lookup_all must agree on).
        let sketches: Vec<Vec<i64>> = (0..users)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        use rand::Rng;
                        rng.gen_range(-half..=half)
                    })
                    .collect()
            })
            .collect();

        let mut scan = ScanIndex::new(T, KA);
        let mut sharded = ShardedIndex::scan(shards, T, KA);
        for s in &sketches {
            let a = scan.insert(s.clone());
            let b = sharded.insert(s.clone());
            prop_assert_eq!(a, b, "ids must be assigned identically");
        }

        // Random removals (bit u of the mask removes user u).
        for u in 0..users.min(64) {
            if removal_mask & (1 << u) != 0 {
                prop_assert_eq!(scan.remove(u), sharded.remove(u));
            }
        }
        prop_assert_eq!(scan.len(), sharded.len());

        // Probes: every enrolled sketch plus a perturbed copy.
        let mut probes = sketches.clone();
        probes.extend(sketches.iter().map(|s| {
            s.iter()
                .map(|&c| {
                    use rand::Rng;
                    (c + rng.gen_range(-(T as i64)..=T as i64)).clamp(-half, half)
                })
                .collect::<Vec<i64>>()
        }));

        for probe in &probes {
            prop_assert_eq!(scan.lookup(probe), sharded.lookup(probe));
            prop_assert_eq!(scan.lookup_all(probe), sharded.lookup_all(probe));
        }
        prop_assert_eq!(scan.lookup_batch(&probes), sharded.lookup_batch(&probes));
    }

    /// Codec round-trip: any sketch a legal scheme can produce survives
    /// the durable encoding under its own parameter fingerprint — and is
    /// rejected under any other fingerprint.
    #[test]
    fn codec_sketch_roundtrip_under_arbitrary_params(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 0usize..24,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();

        // Fingerprint the (line, t) configuration the way fe-protocol
        // fingerprints SystemParams: any parameter change changes it.
        let mut canon = codec::Writer::new();
        canon.put_u64(line.a());
        canon.put_u64(line.k());
        canon.put_u64(line.v());
        canon.put_u64(t);
        let fp = Fingerprint::of(canon.as_slice());

        let bytes = encode_sketch(&sketch, &fp);
        prop_assert_eq!(decode_sketch(&bytes, &fp).unwrap(), sketch);

        let mut other_canon = codec::Writer::new();
        other_canon.put_u64(line.a() + 1);
        other_canon.put_u64(line.k());
        other_canon.put_u64(line.v());
        other_canon.put_u64(t);
        let other = Fingerprint::of(other_canon.as_slice());
        prop_assert!(matches!(
            decode_sketch(&bytes, &other),
            Err(CodecError::FingerprintMismatch { .. })
        ));
    }

    /// Codec round-trip for full helper data (robust sketch + tag +
    /// seed) with arbitrary byte contents, plus truncation robustness:
    /// every strict prefix errors, never panics and never
    /// round-trips to a wrong value.
    #[test]
    fn codec_helper_roundtrip_and_truncation(
        inner in proptest::collection::vec(any::<i64>(), 0..32),
        tag in proptest::collection::vec(any::<u8>(), 0..48),
        extract_seed in proptest::collection::vec(any::<u8>(), 0..48),
        fp_seed in any::<u64>(),
        cut_permille in 0u32..1000,
    ) {
        let helper = HelperData {
            sketch: RobustData { inner, tag },
            seed: extract_seed,
        };
        let fp = Fingerprint::of(&fp_seed.to_be_bytes());
        let bytes = encode_helper(&helper, &fp);
        prop_assert_eq!(decode_helper(&bytes, &fp).unwrap(), helper);

        let cut = bytes.len() * cut_permille as usize / 1000;
        if cut < bytes.len() {
            prop_assert!(decode_helper(&bytes[..cut], &fp).is_err());
        }
    }

    /// Journal-frame robustness: a stream of CRC-framed payloads reads
    /// back exactly; any truncation point yields a clean prefix of the
    /// framed payloads plus a detected torn tail (no misparse).
    #[test]
    fn framed_stream_truncation_yields_clean_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        cut_permille in 0u32..1000,
    ) {
        let mut w = codec::Writer::new();
        for p in &payloads {
            w.put_framed(p);
        }
        let bytes = w.into_bytes();

        // Full read returns every payload.
        let mut r = codec::Reader::new(&bytes);
        for p in &payloads {
            prop_assert_eq!(r.get_framed().unwrap(), &p[..]);
        }
        prop_assert!(r.is_empty());

        // A truncated stream reads a prefix, then reports a torn frame.
        let cut = bytes.len() * cut_permille as usize / 1000;
        let mut r = codec::Reader::new(&bytes[..cut]);
        let mut recovered = 0usize;
        loop {
            if r.is_empty() {
                break;
            }
            match r.get_framed() {
                Ok(p) => {
                    prop_assert_eq!(p, &payloads[recovered][..]);
                    recovered += 1;
                }
                Err(CodecError::Truncated) | Err(CodecError::BadChecksum) => break,
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert!(recovered <= payloads.len());
    }

    /// Ring-wrap invariance: shifting the whole input by one full period
    /// leaves the sketch-recovered value unchanged.
    #[test]
    fn period_shift_invariance(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..10,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let shifted: Vec<i64> = x.iter().map(|&v| v + line.period() as i64).collect();
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        prop_assert_eq!(
            scheme.recover(&shifted, &sketch).unwrap(),
            x
        );
    }
}
