//! Offline, API-compatible subset of `criterion`.
//!
//! Benchmarks written against the real criterion API compile and run
//! unchanged; this shim measures with a simple adaptive loop (calibrate
//! iteration count, take N samples, report min/mean/max of the per-
//! iteration time) instead of criterion's statistical machinery. Output
//! is one line per benchmark on stdout; there are no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of one benchmark, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name + parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the measured closure; drives timed iterations.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean seconds per iteration, filled by `iter`.
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
}

impl Bencher {
    /// Runs `f` under the timer.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // Warm-up + calibration: how many iterations fit in ~1/10 of a
        // sample so the clock resolution stops mattering.
        let mut iters_per_sample = 1u64;
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed();
            let target = self.measurement_time.max(Duration::from_millis(1)) / 10;
            if elapsed >= target.min(Duration::from_millis(50)) {
                break;
            }
            if Instant::now() >= warm_deadline && iters_per_sample > 1 {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(2);
        }

        let deadline = Instant::now() + self.measurement_time;
        let mut sample_secs = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            sample_secs.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        let n = sample_secs.len().max(1) as f64;
        self.mean_secs = sample_secs.iter().sum::<f64>() / n;
        self.min_secs = sample_secs.iter().copied().fold(f64::INFINITY, f64::min);
        self.max_secs = sample_secs.iter().copied().fold(0.0, f64::max);
    }
}

fn human(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declares throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            mean_secs: 0.0,
            min_secs: 0.0,
            max_secs: 0.0,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean_secs > 0.0 => {
                format!("  thrpt: {:.0} elem/s", n as f64 / b.mean_secs)
            }
            Some(Throughput::Bytes(n)) if b.mean_secs > 0.0 => {
                format!(
                    "  thrpt: {:.1} MiB/s",
                    n as f64 / b.mean_secs / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<40} time: [{} {} {}]{}",
            self.name,
            id.id,
            human(b.min_secs),
            human(b.mean_secs),
            human(b.max_secs),
            rate
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports; the shim prints as it
    /// goes, so this is bookkeeping only).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Upstream parses CLI args here; the shim accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| k * 2)
        });
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn group_runs_and_counts() {
        benches();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("scan", 1000).id, "scan/1000");
    }

    #[test]
    fn human_units() {
        assert!(human(2e-9).ends_with("ns"));
        assert!(human(2e-6).ends_with("µs"));
        assert!(human(2e-3).ends_with("ms"));
        assert!(human(2.0).ends_with('s'));
    }
}
