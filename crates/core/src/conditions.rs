//! The per-coordinate sketch match conditions (1)–(4) of the proposed
//! identification protocol (Sec. V, Theorem 2).
//!
//! Given an enrolled sketch element `s_i` and a probe sketch element
//! `s'_i`, the server accepts the pair when one of the paper's four
//! conditions holds. We implement both the literal four-case form and the
//! equivalent *cyclic* form — the conditions are exactly "the cyclic
//! distance between `s_i` and `s'_i` on the ring `Z_{ka}` is at most `t`"
//! — and property-test their equivalence.

/// Literal transcription of conditions (1)–(4) from the paper.
///
/// * (1) `s_i > 0, s'_i > 0`: `|s_i − s'_i| ∈ [0, t]`
/// * (2) `s_i ≤ 0, s'_i ≤ 0`: `|s_i − s'_i| ∈ [0, t]`
/// * (3) `s_i > 0, s'_i ≤ 0`: `|s_i − s'_i − ka| ∉ (t, ka−t)`
/// * (4) `s_i ≤ 0, s'_i > 0`: `|s_i − s'_i + ka| ∉ (t, ka−t)`
///
/// ```rust
/// use fe_core::conditions::paper_conditions_hold;
///
/// // Same interval, close offsets.
/// assert!(paper_conditions_hold(50, 30, 100, 400));
/// // Opposite signs across a boundary.
/// assert!(paper_conditions_hold(190, -190, 100, 400));
/// // Far apart.
/// assert!(!paper_conditions_hold(150, -30, 100, 400));
/// ```
pub fn paper_conditions_hold(s_i: i64, sp_i: i64, t: u64, ka: u64) -> bool {
    let t = t as i64;
    let ka = ka as i64;
    match (s_i > 0, sp_i > 0) {
        (true, true) | (false, false) => (s_i - sp_i).abs() <= t,
        (true, false) => {
            let v = (s_i - sp_i - ka).abs();
            !(v > t && v < ka - t)
        }
        (false, true) => {
            let v = (s_i - sp_i + ka).abs();
            !(v > t && v < ka - t)
        }
    }
}

/// The cyclic form: distance between `s_i` and `s'_i` on the ring
/// `Z_{ka}` is at most `t`. Equivalent to [`paper_conditions_hold`] for
/// all legal sketch values (`|s| ≤ ka/2`, `t < ka/2`).
pub fn cyclic_close(s_i: i64, sp_i: i64, t: u64, ka: u64) -> bool {
    let diff = s_i.abs_diff(sp_i) % ka;
    diff.min(ka - diff) <= t
}

/// Vector form with early abort: `true` iff every coordinate pair
/// satisfies the conditions. This is the cheap integer test the server
/// runs per record — the reason identification needs only ONE signature
/// verification instead of `N` `Rep` executions.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn sketches_match(s: &[i64], probe: &[i64], t: u64, ka: u64) -> bool {
    assert_eq!(s.len(), probe.len(), "sketch dimension mismatch");
    s.iter()
        .zip(probe.iter())
        .all(|(&a, &b)| cyclic_close(a, b, t, ka))
}

/// Like [`sketches_match`] but counts how many coordinates were examined
/// before aborting (used by the index ablation to demonstrate the
/// early-abort behaviour that makes the scan cheap).
pub fn sketches_match_counting(s: &[i64], probe: &[i64], t: u64, ka: u64) -> (bool, usize) {
    assert_eq!(s.len(), probe.len(), "sketch dimension mismatch");
    let mut examined = 0usize;
    for (&a, &b) in s.iter().zip(probe.iter()) {
        examined += 1;
        if !cyclic_close(a, b, t, ka) {
            return (false, examined);
        }
    }
    (true, examined)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u64 = 100;
    const KA: u64 = 400;

    #[test]
    fn same_sign_cases() {
        assert!(paper_conditions_hold(150, 60, T, KA)); // diff 90 ≤ 100
        assert!(!paper_conditions_hold(150, 40, T, KA)); // diff 110 > 100
        assert!(paper_conditions_hold(-10, -100, T, KA));
        assert!(!paper_conditions_hold(-10, -150, T, KA));
        assert!(paper_conditions_hold(0, -90, T, KA)); // zero counts as ≤ 0
    }

    #[test]
    fn opposite_sign_cases() {
        // s=190, s'=-190: |190+190-400| = 20 ≤ t → close (wrap case).
        assert!(paper_conditions_hold(190, -190, T, KA));
        // s=30, s'=-40: |30+40-400| = 330 ≥ ka-t=300 → close (same id).
        assert!(paper_conditions_hold(30, -40, T, KA));
        // s=150, s'=-30: |150+30-400| = 220 ∈ (100, 300) → NOT close.
        assert!(!paper_conditions_hold(150, -30, T, KA));
        // Mirror cases for condition (4).
        assert!(paper_conditions_hold(-190, 190, T, KA));
        assert!(!paper_conditions_hold(-30, 150, T, KA));
    }

    #[test]
    fn equivalence_with_cyclic_form_exhaustive() {
        // Exhaustive over all legal sketch values for a small line.
        let ka = 40u64;
        let half = (ka / 2) as i64;
        for t in [1u64, 5, 10, 19] {
            for s in -half..=half {
                for sp in -half..=half {
                    assert_eq!(
                        paper_conditions_hold(s, sp, t, ka),
                        cyclic_close(s, sp, t, ka),
                        "mismatch at s={s} sp={sp} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn reflexive_and_symmetric() {
        for s in [-200i64, -57, 0, 3, 200] {
            assert!(cyclic_close(s, s, T, KA));
        }
        for (a, b) in [(-200i64, 150i64), (30, -40), (0, 100)] {
            assert_eq!(cyclic_close(a, b, T, KA), cyclic_close(b, a, T, KA));
        }
    }

    #[test]
    fn vector_matching() {
        let s = vec![50, -120, 190];
        let close = vec![30, -40, -190];
        let far = vec![30, -40, 60];
        assert!(sketches_match(&s, &close, T, KA));
        assert!(!sketches_match(&s, &far, T, KA));
    }

    #[test]
    fn counting_early_abort() {
        let s = vec![0i64; 100];
        let mut probe = vec![0i64; 100];
        probe[2] = 150; // mismatch at coordinate 3
        let (ok, examined) = sketches_match_counting(&s, &probe, T, KA);
        assert!(!ok);
        assert_eq!(examined, 3);
        let (ok, examined) = sketches_match_counting(&s, &s.clone(), T, KA);
        assert!(ok);
        assert_eq!(examined, 100);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        sketches_match(&[1], &[1, 2], T, KA);
    }
}
