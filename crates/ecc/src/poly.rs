//! Polynomials over GF(2^m).

use crate::Gf2m;

/// A polynomial with coefficients in GF(2^m), stored little-endian
/// (`coeffs[i]` is the coefficient of `x^i`), normalized so the leading
/// coefficient is non-zero (the zero polynomial has no coefficients).
///
/// Operations take the field explicitly, keeping the type itself plain
/// data.
///
/// ```rust
/// use fe_ecc::{Gf2m, Poly};
///
/// # fn main() -> Result<(), fe_ecc::CodeError> {
/// let f = Gf2m::new(4)?;
/// let p = Poly::from_coeffs(vec![1, 1]); // x + 1
/// let q = p.mul(&p, &f);                 // (x+1)^2 = x^2 + 1 in char 2
/// assert_eq!(q.coeffs(), &[1, 0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u16>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Poly {
        Poly { coeffs: vec![1] }
    }

    /// Builds from little-endian coefficients, trimming leading zeros.
    pub fn from_coeffs(mut coeffs: Vec<u16>) -> Poly {
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The monomial `c·x^d`.
    pub fn monomial(c: u16, d: usize) -> Poly {
        if c == 0 {
            return Poly::zero();
        }
        let mut coeffs = vec![0u16; d + 1];
        coeffs[d] = c;
        Poly { coeffs }
    }

    /// Little-endian coefficients (no trailing zeros).
    pub fn coeffs(&self) -> &[u16] {
        &self.coeffs
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Coefficient of `x^i` (zero beyond the stored degree).
    pub fn coeff(&self, i: usize) -> u16 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// Polynomial addition (XOR of coefficients in char 2).
    pub fn add(&self, other: &Poly, _f: &Gf2m) -> Poly {
        let len = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u16; len];
        for (i, c) in out.iter_mut().enumerate() {
            *c = self.coeff(i) ^ other.coeff(i);
        }
        Poly::from_coeffs(out)
    }

    /// Polynomial multiplication.
    pub fn mul(&self, other: &Poly, f: &Gf2m) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![0u16; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] ^= f.mul(a, b);
            }
        }
        Poly::from_coeffs(out)
    }

    /// Multiplies every coefficient by the scalar `c`.
    pub fn scale(&self, c: u16, f: &Gf2m) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&a| f.mul(a, c)).collect())
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: u16, f: &Gf2m) -> u16 {
        let mut acc = 0u16;
        for &c in self.coeffs.iter().rev() {
            acc = f.mul(acc, x) ^ c;
        }
        acc
    }

    /// Formal derivative. In characteristic 2 the even-power terms vanish:
    /// `d/dx Σ c_i x^i = Σ_{i odd} c_i x^{i-1}`.
    pub fn derivative(&self, _f: &Gf2m) -> Poly {
        let mut out = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate().skip(1) {
            if i % 2 == 1 {
                // i·c = c when i odd (char 2)
                if out.len() < i {
                    out.resize(i, 0);
                }
                out[i - 1] = c;
            }
        }
        Poly::from_coeffs(out)
    }

    /// Division with remainder: `self = q·divisor + r`, `deg r < deg divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Poly, f: &Gf2m) -> (Poly, Poly) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dd = divisor.degree().unwrap();
        let lead_inv = f.inv(divisor.coeffs[dd]).expect("leading coeff non-zero");
        let mut rem = self.coeffs.clone();
        if rem.len() <= dd {
            return (Poly::zero(), self.clone());
        }
        let mut quot = vec![0u16; rem.len() - dd];
        for i in (dd..rem.len()).rev() {
            let c = rem[i];
            if c == 0 {
                continue;
            }
            let q = f.mul(c, lead_inv);
            quot[i - dd] = q;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i - dd + j] ^= f.mul(q, dc);
            }
        }
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }

    /// Lagrange interpolation through distinct points `(x_i, y_i)`.
    ///
    /// Returns the unique polynomial of degree `< points.len()` through all
    /// points, or `None` if two `x` values coincide.
    pub fn interpolate(points: &[(u16, u16)], f: &Gf2m) -> Option<Poly> {
        let mut acc = Poly::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Basis polynomial: Π_{j≠i} (x - x_j) / (x_i - x_j)
            let mut basis = Poly::one();
            let mut denom = 1u16;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                if xi == xj {
                    return None;
                }
                basis = basis.mul(&Poly::from_coeffs(vec![xj, 1]), f); // (x + xj) = (x - xj)
                denom = f.mul(denom, xi ^ xj);
            }
            let scale = f.div(yi, denom)?;
            acc = acc.add(&basis.scale(scale, f), f);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Gf2m {
        Gf2m::new(8).unwrap()
    }

    #[test]
    fn construction_trims() {
        let p = Poly::from_coeffs(vec![1, 2, 0, 0]);
        assert_eq!(p.coeffs(), &[1, 2]);
        assert_eq!(p.degree(), Some(1));
        assert!(Poly::from_coeffs(vec![0, 0]).is_zero());
        assert_eq!(Poly::zero().degree(), None);
    }

    #[test]
    fn add_is_xor() {
        let f = field();
        let p = Poly::from_coeffs(vec![1, 2, 3]);
        let q = Poly::from_coeffs(vec![1, 2, 3]);
        assert!(p.add(&q, &f).is_zero()); // char 2: p + p = 0
    }

    #[test]
    fn mul_by_zero_and_one() {
        let f = field();
        let p = Poly::from_coeffs(vec![5, 7, 9]);
        assert!(p.mul(&Poly::zero(), &f).is_zero());
        assert_eq!(p.mul(&Poly::one(), &f), p);
    }

    #[test]
    fn freshman_dream() {
        // (x + a)^2 = x^2 + a^2 in characteristic 2.
        let f = field();
        let a = 0x35;
        let p = Poly::from_coeffs(vec![a, 1]);
        let sq = p.mul(&p, &f);
        assert_eq!(sq.coeffs(), &[f.mul(a, a), 0, 1]);
    }

    #[test]
    fn eval_horner() {
        let f = field();
        // p(x) = 3 + 2x + x^2 at x=1: 3^2^1 = 3 XOR 2 XOR 1 = 0.
        let p = Poly::from_coeffs(vec![3, 2, 1]);
        assert_eq!(p.eval(1, &f), 0);
        assert_eq!(p.eval(0, &f), 3);
    }

    #[test]
    fn div_rem_reconstructs() {
        let f = field();
        let a = Poly::from_coeffs(vec![7, 0, 3, 1, 9]);
        let b = Poly::from_coeffs(vec![2, 1]);
        let (q, r) = a.div_rem(&b, &f);
        let back = q.mul(&b, &f).add(&r, &f);
        assert_eq!(back, a);
        assert!(r.degree().is_none_or(|d| d < 1));
    }

    #[test]
    fn div_by_higher_degree() {
        let f = field();
        let a = Poly::from_coeffs(vec![1, 1]);
        let b = Poly::from_coeffs(vec![1, 1, 1]);
        let (q, r) = a.div_rem(&b, &f);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn roots_divide() {
        let f = field();
        // Build (x - r1)(x - r2) and check both evaluate to zero.
        let r1 = 0x11;
        let r2 = 0xab;
        let p = Poly::from_coeffs(vec![r1, 1]).mul(&Poly::from_coeffs(vec![r2, 1]), &f);
        assert_eq!(p.eval(r1, &f), 0);
        assert_eq!(p.eval(r2, &f), 0);
        assert_ne!(p.eval(r1 ^ 1, &f), 0);
    }

    #[test]
    fn derivative_char2() {
        let f = field();
        // d/dx (c0 + c1 x + c2 x^2 + c3 x^3) = c1 + c3 x^2.
        let p = Poly::from_coeffs(vec![9, 7, 5, 3]);
        let d = p.derivative(&f);
        assert_eq!(d.coeffs(), &[7, 0, 3]);
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let f = field();
        let secret = Poly::from_coeffs(vec![42, 17, 200]);
        let points: Vec<(u16, u16)> = (1..=5u16).map(|x| (x, secret.eval(x, &f))).collect();
        let rec = Poly::interpolate(&points, &f).unwrap();
        assert_eq!(rec, secret);
    }

    #[test]
    fn interpolation_rejects_duplicate_x() {
        let f = field();
        assert_eq!(Poly::interpolate(&[(1, 2), (1, 3)], &f), None);
    }

    #[test]
    fn monomial() {
        let p = Poly::monomial(5, 3);
        assert_eq!(p.coeffs(), &[0, 0, 0, 5]);
        assert!(Poly::monomial(0, 3).is_zero());
    }
}
