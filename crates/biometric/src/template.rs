//! The [`Template`] newtype: an encoded biometric feature vector.

use serde::{Deserialize, Serialize};

/// An encoded biometric template: an `n`-dimensional integer feature
/// vector, the common input format of both the proposed protocol and the
/// normal approach (Sec. VII: "both … use the same format of data as
/// input").
///
/// ```rust
/// use fe_biometric::Template;
///
/// let t = Template::new(vec![10, -20, 30]);
/// assert_eq!(t.dim(), 3);
/// assert_eq!(t.features()[1], -20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Template {
    features: Vec<i64>,
}

impl Template {
    /// Wraps a feature vector.
    pub fn new(features: Vec<i64>) -> Self {
        Template { features }
    }

    /// Number of feature dimensions.
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// Borrows the features.
    pub fn features(&self) -> &[i64] {
        &self.features
    }

    /// Consumes the template, returning the feature vector.
    pub fn into_features(self) -> Vec<i64> {
        self.features
    }

    /// `true` when every feature lies in `[min, max]`.
    pub fn in_range(&self, min: i64, max: i64) -> bool {
        self.features.iter().all(|&f| (min..=max).contains(&f))
    }
}

impl From<Vec<i64>> for Template {
    fn from(v: Vec<i64>) -> Self {
        Template::new(v)
    }
}

impl AsRef<[i64]> for Template {
    fn as_ref(&self) -> &[i64] {
        &self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = Template::new(vec![1, 2, 3]);
        assert_eq!(t.dim(), 3);
        assert_eq!(t.as_ref(), &[1, 2, 3]);
        assert_eq!(t.clone().into_features(), vec![1, 2, 3]);
    }

    #[test]
    fn range_check() {
        let t = Template::new(vec![-5, 0, 5]);
        assert!(t.in_range(-5, 5));
        assert!(!t.in_range(-4, 5));
        assert!(!t.in_range(-5, 4));
        assert!(Template::new(vec![]).in_range(0, 0));
    }

    #[test]
    fn from_vec() {
        let t: Template = vec![7i64, 8].into();
        assert_eq!(t.dim(), 2);
    }
}
