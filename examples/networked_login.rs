//! Networked passwordless login — the TCP front door end to end.
//!
//! Everything the other examples do in-process, over a real socket: a
//! `NetServer` wraps the scheduled authentication server, a `Client`
//! connects with a handshake that pins the transport version *and* the
//! system-parameter fingerprint, and the full identification protocol —
//! probe → challenge → signed response → verdict — runs through framed,
//! CRC-checked wire messages (the byte-level contract is `PROTOCOL.md`).
//!
//! The demo:
//! 1. serves an enrolled population on `127.0.0.1` (ephemeral port),
//! 2. logs users in over concurrent client connections,
//! 3. shows a client on *different system parameters* being refused at
//!    the handshake — fail-fast, instead of a career of silent
//!    `NO_MATCH`es,
//! 4. floods a tiny admission queue through one pipelined connection
//!    and counts the wire-level `OVERLOADED` sheds — backpressure
//!    reaches the caller as an answer, never a dropped connection,
//! 5. prints the front door's own counters and shuts down cleanly.
//!
//! Run with: `cargo run --release --example networked_login`

use fuzzy_id::net::envelope;
use fuzzy_id::net::frame::{read_frame, write_frame};
use fuzzy_id::net::handshake::client_handshake;
use fuzzy_id::net::{Client, ErrorCode, NetConfig, NetError, NetServer, DEFAULT_MAX_FRAME};
use fuzzy_id::protocol::scheduler::{ScheduledServer, SchedulerConfig};
use fuzzy_id::protocol::wire::Message;
use fuzzy_id::protocol::{BiometricDevice, SystemParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = SystemParams::insecure_test_defaults();
    let device = BiometricDevice::new(params.clone());
    let mut rng = StdRng::seed_from_u64(11);

    // ---- 1. serve -----------------------------------------------------
    let scheduler = Arc::new(ScheduledServer::scan(
        params.clone(),
        2,
        SchedulerConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            ..SchedulerConfig::default()
        },
    ));
    let server = NetServer::spawn(Arc::clone(&scheduler), "127.0.0.1:0", NetConfig::default())?;
    let addr = server.local_addr();
    println!(
        "front door listening on {addr} (params fingerprint {:?})",
        params.fingerprint()
    );

    let users = 16;
    let dim = 64;
    println!("enrolling {users} users over the wire…");
    let mut enroll_client = Client::connect(addr, &params)?;
    let mut bios = Vec::new();
    for u in 0..users {
        let bio = params.sketch().line().random_vector(dim, &mut rng);
        enroll_client.enroll(device.enroll(&format!("user-{u}"), &bio, &mut rng)?)?;
        bios.push(bio);
    }
    drop(enroll_client);

    // ---- 2. concurrent logins ----------------------------------------
    let clients = 4usize;
    let logins_per_client = 4usize;
    println!("login storm: {clients} connections × {logins_per_client} logins…");
    std::thread::scope(|scope| {
        for c in 0..clients {
            let device = device.clone();
            let params = params.clone();
            let bios = &bios;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(2000 + c as u64);
                let mut client = Client::connect(addr, &params).expect("connect");
                for l in 0..logins_per_client {
                    let u = (c * logins_per_client + l) % bios.len();
                    let reading: Vec<i64> = bios[u]
                        .iter()
                        .map(|&x| x + rng.gen_range(-80i64..=80))
                        .collect();
                    let probe = device.probe_sketch(&reading, &mut rng).unwrap();
                    let chal = client.identify(probe).unwrap();
                    let resp = device.respond(&reading, &chal, &mut rng).unwrap();
                    let outcome = client.finish_identification(&resp).unwrap();
                    assert_eq!(outcome.identity(), Some(format!("user-{u}").as_str()));
                }
                // An impostor on the same connection: a typed NO_MATCH
                // response, not a dropped connection.
                let stranger = params.sketch().line().random_vector(dim, &mut rng);
                let probe = device.probe_sketch(&stranger, &mut rng).unwrap();
                match client.identify(probe) {
                    Err(NetError::Remote(e)) if e.code == ErrorCode::NoMatch => {}
                    other => panic!("expected NO_MATCH, got {other:?}"),
                }
            });
        }
    });
    println!(
        "  {} logins verified over {} connections",
        clients * logins_per_client,
        clients
    );

    // ---- 3. parameter mismatch fails fast at the handshake ------------
    // Same sketch, same DSA group — but a different extracted key
    // length changes the fingerprint, and that is enough to refuse.
    let other_params = SystemParams::new(
        fuzzy_id::core::ChebyshevSketch::paper_defaults(),
        16,
        fuzzy_id::crypto::dsa::DsaParams::insecure_512().clone(),
    );
    match Client::connect(addr, &other_params) {
        Err(NetError::FingerprintMismatch { ours, theirs }) => {
            println!("mismatched client refused at handshake: ours {ours:?} ≠ server {theirs:?}");
        }
        other => panic!("expected a fingerprint rejection, got {other:?}"),
    }

    // ---- 4. overload storms shed on the wire --------------------------
    // A second front door over a 2-slot admission queue with a long
    // batch window; a pipelined burst must mostly shed — every shed an
    // OVERLOADED *response* on a connection that stays up.
    println!("backpressure: pipelining 16 requests into a 2-slot queue…");
    let tiny = Arc::new(ScheduledServer::scan(
        params.clone(),
        1,
        SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(1500),
            queue_capacity: 2,
            workers: 1,
            ..SchedulerConfig::default()
        },
    ));
    tiny.server()
        .enroll(device.enroll("lone-user", &bios[0], &mut rng)?)?;
    let tiny_door = NetServer::spawn(Arc::clone(&tiny), "127.0.0.1:0", NetConfig::default())?;

    let probe = device.probe_sketch(&bios[0], &mut rng)?;
    let mut stream = TcpStream::connect(tiny_door.local_addr())?;
    client_handshake(&mut stream, &params.fingerprint(), DEFAULT_MAX_FRAME)?;
    let mut read_half = stream.try_clone()?;
    let burst = 16u64;
    for id in 0..burst {
        let req = envelope::encode_request(
            id,
            &Message::Identify {
                probe: probe.clone(),
            },
        );
        write_frame(&mut stream, &req, DEFAULT_MAX_FRAME)?;
    }
    let (mut served, mut shed) = (0u64, 0u64);
    for expect in 0..burst {
        let payload = read_frame(&mut read_half, DEFAULT_MAX_FRAME)?;
        let (id, response) = envelope::decode_response(&payload)?;
        assert_eq!(id, expect, "responses arrive in request order");
        match response {
            Ok(_) => served += 1,
            Err(e) if e.code == ErrorCode::Overloaded => shed += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(served + shed, burst);
    assert!(shed > 0, "a 2-slot queue must shed under a 16-deep burst");
    println!("  {served} served, {shed} shed as wire-level OVERLOADED; connection survived");
    assert_eq!(tiny_door.metrics().shed(), shed);

    // ---- 5. telemetry + clean shutdown --------------------------------
    let m = server.metrics();
    println!("front door telemetry:");
    println!(
        "  {} connections accepted ({} active), {} requests, {} ok / {} err responses",
        m.accepted(),
        m.active(),
        m.requests(),
        m.responses_ok(),
        m.responses_err()
    );
    println!(
        "  sheds {}, handshake rejections {}, idle closes {}, fatal frames {}",
        m.shed(),
        m.handshake_failures(),
        m.idle_closed(),
        m.fatal_frames()
    );
    tiny_door.shutdown();
    server.shutdown();
    println!("networked login demo: OK");
    Ok(())
}
