//! Error-correcting codes for the classical fuzzy-extractor baselines.
//!
//! The paper's related work (Sec. VIII) builds secure sketches from error
//! correction: the **code-offset construction / fuzzy commitment**
//! (Juels–Wattenberg) needs a binary code with a syndrome-style decoder —
//! we provide **BCH codes** — and the **fuzzy vault** (Juels–Sudan) needs
//! polynomial reconstruction over a finite field — we provide
//! **Reed–Solomon** with both Berlekamp–Massey decoding (contiguous
//! codewords) and **Berlekamp–Welch** decoding (arbitrary support, as the
//! vault requires).
//!
//! ```rust
//! use fe_ecc::{Bch, BinaryCode};
//! use fe_metrics::BitVec;
//!
//! # fn main() -> Result<(), fe_ecc::CodeError> {
//! // BCH(15, 7) corrects up to 2 bit errors.
//! let code = Bch::new(4, 2)?;
//! let msg = BitVec::from_fn(code.k(), |i| i % 2 == 0);
//! let mut word = code.encode(&msg)?;
//! word.flip(1);
//! word.flip(8);
//! let decoded = code.decode(&word)?;
//! assert_eq!(decoded.message, msg);
//! assert_eq!(decoded.corrected_errors, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bch;
mod berlekamp_welch;
mod binpoly;
mod error;
mod gf2m;
mod linalg;
mod poly;
mod rs;

pub use bch::{Bch, BchDecode};
pub use berlekamp_welch::berlekamp_welch;
pub use binpoly::BinPoly;
pub use error::CodeError;
pub use gf2m::Gf2m;
pub use linalg::solve_linear_system;
pub use poly::Poly;
pub use rs::{ReedSolomon, RsDecode};

use fe_metrics::BitVec;

/// A binary block code: fixed-length messages to fixed-length codewords
/// with bounded-error decoding.
pub trait BinaryCode {
    /// Codeword length in bits.
    fn n(&self) -> usize;
    /// Message length in bits.
    fn k(&self) -> usize;
    /// Guaranteed error-correction radius (bit flips).
    fn t(&self) -> usize;

    /// Encodes a `k()`-bit message into an `n()`-bit codeword.
    ///
    /// # Errors
    /// Returns [`CodeError::WrongLength`] if the message size differs
    /// from `k()`.
    fn encode(&self, message: &BitVec) -> Result<BitVec, CodeError>;

    /// Decodes a (possibly corrupted) word back to a message, correcting up
    /// to `t()` bit errors.
    ///
    /// # Errors
    /// Returns [`CodeError::WrongLength`] on a size mismatch and
    /// [`CodeError::TooManyErrors`] when decoding fails.
    fn decode_message(&self, word: &BitVec) -> Result<BitVec, CodeError>;
}
