//! Open-loop loopback load generator for the `fe-net` front door.
//!
//! The in-process benches measure the scheduler and the scan kernel;
//! this module measures what a *caller on a socket* experiences:
//! handshake, framing, envelope codec, the per-connection reader/writer
//! pipeline, and the scheduler behind it — end to end.
//!
//! # Why open-loop
//!
//! A closed-loop client (send, wait, send) self-throttles: when the
//! server slows down, the offered load drops, and the latency numbers
//! flatter the server (coordinated omission). This generator instead
//! fixes a **send schedule** per connection — request `i` is due at
//! `start + i·interval` — and each latency is measured from the request's
//! *scheduled* send time to its response. A server that falls behind
//! pays for the queueing it causes; a shed (`OVERLOADED`) still counts
//! as a completed (fast-failed) request, exactly as a real caller would
//! see it.
//!
//! Each connection runs a **sender thread** (paces the schedule, writes
//! pipelined `Identify` frames) and a **receiver thread** (reads
//! responses, pairs them with send stamps by request id). The server
//! answers each connection's requests in arrival order, so the receiver
//! verifies ids match FIFO — any desynchronisation is a protocol bug
//! and panics the run.

use fe_core::codec::Fingerprint;
use fe_metrics::telemetry::percentile;
use fe_net::envelope::{self, ResponseBody};
use fe_net::frame::{read_frame, write_frame};
use fe_net::handshake::client_handshake;
use fe_net::{ErrorCode, DEFAULT_MAX_FRAME};
use fe_protocol::wire::Message;
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Tunables for one load run.
#[derive(Debug, Clone)]
pub struct NetLoadConfig {
    /// Concurrent connections, each with its own send schedule.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_conn: usize,
    /// Scheduled gap between a connection's consecutive requests
    /// (`Duration::ZERO` = an unpaced storm).
    pub interval: Duration,
    /// Frame size limit (must match the server's).
    pub max_frame: usize,
}

impl Default for NetLoadConfig {
    fn default() -> NetLoadConfig {
        NetLoadConfig {
            connections: 4,
            requests_per_conn: 64,
            interval: Duration::from_micros(500),
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Default)]
pub struct NetLoadReport {
    /// Requests sent (= responses received; every request is answered).
    pub sent: usize,
    /// Challenges received (a probe matched an enrolled record).
    pub matched: u64,
    /// `NO_MATCH` verdicts (expected for miss probes).
    pub no_match: u64,
    /// `OVERLOADED` verdicts — wire-level sheds.
    pub shed: u64,
    /// Any other error code.
    pub other_errors: u64,
    /// Per-request latencies in microseconds, sorted ascending.
    pub latencies_us: Vec<f64>,
}

impl NetLoadReport {
    /// Exact nearest-rank quantile of the latencies, in microseconds.
    pub fn percentile_us(&self, q: f64) -> f64 {
        percentile(&self.latencies_us, q)
    }

    fn absorb(&mut self, other: NetLoadReport) {
        self.sent += other.sent;
        self.matched += other.matched;
        self.no_match += other.no_match;
        self.shed += other.shed;
        self.other_errors += other.other_errors;
        self.latencies_us.extend(other.latencies_us);
    }
}

/// Runs one open-loop storm of `Identify` requests against a served
/// address: `connections` sockets, each sending `requests_per_conn`
/// probes on its schedule (probes are dealt round-robin from `probes`).
/// Blocks until every response has arrived.
///
/// # Panics
/// Panics on connection, handshake, or protocol violations (a load
/// generator that soldiers past a desync would report garbage) and if
/// `probes` is empty.
pub fn run(
    addr: SocketAddr,
    fingerprint: Fingerprint,
    probes: &[Vec<i64>],
    config: &NetLoadConfig,
) -> NetLoadReport {
    assert!(!probes.is_empty(), "need at least one probe");
    let mut report = NetLoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.connections)
            .map(|conn| {
                scope.spawn(move || connection_run(addr, fingerprint, probes, config, conn))
            })
            .collect();
        for handle in handles {
            report.absorb(handle.join().expect("load connection panicked"));
        }
    });
    report
        .latencies_us
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    report
}

/// One connection's sender/receiver pair.
fn connection_run(
    addr: SocketAddr,
    fingerprint: Fingerprint,
    probes: &[Vec<i64>],
    config: &NetLoadConfig,
    conn: usize,
) -> NetLoadReport {
    let mut stream = TcpStream::connect(addr).expect("connect to front door");
    stream.set_nodelay(true).expect("set nodelay");
    client_handshake(&mut stream, &fingerprint, config.max_frame).expect("handshake");
    let mut read_half = stream.try_clone().expect("clone stream");

    let total = config.requests_per_conn;
    // Stamps flow sender → receiver in send order; the server answers
    // in that same order, so the receiver pairs them FIFO.
    let (stamp_tx, stamp_rx) = mpsc::channel::<(u64, Instant)>();

    let mut report = NetLoadReport::default();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let start = Instant::now();
            for i in 0..total {
                let due = start + config.interval * (i as u32);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                // Open-loop stamp: the *scheduled* send time, so server
                // slowness that backs the sender up is charged to the
                // measured latency instead of silently shrinking load.
                stamp_tx
                    .send((i as u64, due.max(start)))
                    .expect("receiver alive");
                let probe = probes[(conn + i * config.connections) % probes.len()].clone();
                let request = envelope::encode_request(i as u64, &Message::Identify { probe });
                write_frame(&mut stream, &request, config.max_frame).expect("write request");
            }
        });

        for _ in 0..total {
            let (expected, stamp) = stamp_rx.recv().expect("sender alive");
            let payload = read_frame(&mut read_half, config.max_frame).expect("read response");
            let (id, response) = envelope::decode_response(&payload).expect("decode response");
            assert_eq!(id, expected, "front door answered out of order");
            let elapsed = Instant::now().saturating_duration_since(stamp);
            report.latencies_us.push(elapsed.as_secs_f64() * 1e6);
            report.sent += 1;
            match response {
                Ok(ResponseBody::Challenge(_)) => report.matched += 1,
                Ok(other) => panic!("identify answered with {other:?}"),
                Err(e) if e.code == ErrorCode::NoMatch => report.no_match += 1,
                Err(e) if e.code == ErrorCode::Overloaded => report.shed += 1,
                Err(_) => report.other_errors += 1,
            }
        }
    });
    report
}
