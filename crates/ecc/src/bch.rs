//! Binary BCH codes: construction from cyclotomic cosets, systematic
//! encoding, and Berlekamp–Massey + Chien-search decoding.

use crate::binpoly::BinPoly;
use crate::gf2m::Gf2m;
use crate::poly::Poly;
use crate::{BinaryCode, CodeError};
use fe_metrics::BitVec;
use std::collections::HashSet;

/// A binary primitive BCH code of length `n = 2^m - 1` with designed
/// error-correction capability `t`.
///
/// ```rust
/// use fe_ecc::{Bch, BinaryCode};
/// use fe_metrics::BitVec;
///
/// # fn main() -> Result<(), fe_ecc::CodeError> {
/// let code = Bch::new(5, 3)?; // BCH(31, k, t=3)
/// assert_eq!(code.n(), 31);
/// let msg = BitVec::zeros(code.k());
/// let word = code.encode(&msg)?;
/// assert_eq!(word.len(), 31);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bch {
    field: Gf2m,
    n: usize,
    k: usize,
    t: usize,
    generator: BinPoly,
}

/// Successful BCH decode result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BchDecode {
    /// The corrected codeword.
    pub codeword: BitVec,
    /// The systematic message bits extracted from the codeword.
    pub message: BitVec,
    /// How many bit errors were corrected.
    pub corrected_errors: usize,
}

impl Bch {
    /// Constructs the BCH code over GF(2^m) correcting `t` errors.
    ///
    /// # Errors
    /// Returns [`CodeError::BadParameters`] if `m ∉ 2..=16`, `t == 0`, or
    /// the generator consumes the whole length (no message bits left).
    pub fn new(m: u32, t: usize) -> Result<Bch, CodeError> {
        if t == 0 {
            return Err(CodeError::BadParameters);
        }
        let field = Gf2m::new(m)?;
        let n = field.order() as usize;
        if 2 * t >= n {
            return Err(CodeError::BadParameters);
        }

        // Generator = lcm of minimal polynomials of α^1 .. α^{2t}.
        let mut covered: HashSet<usize> = HashSet::new();
        let mut generator = BinPoly::one();
        for i in 1..=2 * t {
            if covered.contains(&i) {
                continue;
            }
            // Cyclotomic coset {i, 2i, 4i, ...} mod n.
            let mut coset = Vec::new();
            let mut j = i;
            loop {
                coset.push(j);
                covered.insert(j);
                j = (j * 2) % n;
                if j == i {
                    break;
                }
            }
            // Minimal polynomial Π_{j ∈ coset} (x - α^j), computed in
            // GF(2^m); its coefficients land in GF(2).
            let mut mp = Poly::one();
            for &j in &coset {
                let factor = Poly::from_coeffs(vec![field.alpha_pow(j as i64), 1]);
                mp = mp.mul(&factor, &field);
            }
            let bits: Vec<bool> = mp
                .coeffs()
                .iter()
                .map(|&c| {
                    debug_assert!(c <= 1, "minimal polynomial has non-binary coefficient");
                    c == 1
                })
                .collect();
            generator = generator.mul(&BinPoly::from_coeff_bits(&bits));
        }

        let deg = generator.degree().expect("generator is non-zero");
        if deg >= n {
            return Err(CodeError::BadParameters);
        }
        Ok(Bch {
            field,
            n,
            k: n - deg,
            t,
            generator,
        })
    }

    /// The generator polynomial.
    pub fn generator(&self) -> &BinPoly {
        &self.generator
    }

    /// Borrows the underlying field.
    pub fn field(&self) -> &Gf2m {
        &self.field
    }

    /// Syndromes `S_j = r(α^j)` for `j = 1..=2t`.
    fn syndromes(&self, word: &BitVec) -> Vec<u16> {
        let mut syn = vec![0u16; 2 * self.t];
        // Collect set-bit positions once; each syndrome is a sum of α^{ij}.
        let positions: Vec<usize> = (0..self.n).filter(|&i| word.get(i)).collect();
        for (j, s) in syn.iter_mut().enumerate() {
            let jj = (j + 1) as i64;
            let mut acc = 0u16;
            for &i in &positions {
                acc ^= self.field.alpha_pow(i as i64 * jj);
            }
            *s = acc;
        }
        syn
    }

    /// Full decode returning the corrected codeword, message and error
    /// count.
    ///
    /// # Errors
    /// [`CodeError::WrongLength`] if `word.len() != n`;
    /// [`CodeError::TooManyErrors`] if more than `t` errors corrupted the
    /// word.
    pub fn decode(&self, word: &BitVec) -> Result<BchDecode, CodeError> {
        if word.len() != self.n {
            return Err(CodeError::WrongLength {
                expected: self.n,
                got: word.len(),
            });
        }
        let syn = self.syndromes(word);
        if syn.iter().all(|&s| s == 0) {
            return Ok(BchDecode {
                message: self.extract_message(word),
                codeword: word.clone(),
                corrected_errors: 0,
            });
        }

        let sigma = crate::rs::berlekamp_massey(&self.field, &syn);
        let num_errors = sigma.degree().unwrap_or(0);
        if num_errors == 0 || num_errors > self.t {
            return Err(CodeError::TooManyErrors);
        }

        // Chien search: position i is in error iff σ(α^{-i}) = 0.
        let mut corrected = word.clone();
        let mut found = 0usize;
        for i in 0..self.n {
            if sigma.eval(self.field.alpha_pow(-(i as i64)), &self.field) == 0 {
                corrected.flip(i);
                found += 1;
            }
        }
        if found != num_errors {
            return Err(CodeError::TooManyErrors);
        }
        // Safety net: the corrected word must be a codeword.
        if self.syndromes(&corrected).iter().any(|&s| s != 0) {
            return Err(CodeError::TooManyErrors);
        }
        Ok(BchDecode {
            message: self.extract_message(&corrected),
            codeword: corrected,
            corrected_errors: found,
        })
    }

    fn extract_message(&self, codeword: &BitVec) -> BitVec {
        // Systematic layout: parity bits in positions [0, n-k),
        // message bits in [n-k, n).
        let parity = self.n - self.k;
        BitVec::from_fn(self.k, |i| codeword.get(parity + i))
    }
}

impl BinaryCode for Bch {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn t(&self) -> usize {
        self.t
    }

    fn encode(&self, message: &BitVec) -> Result<BitVec, CodeError> {
        if message.len() != self.k {
            return Err(CodeError::WrongLength {
                expected: self.k,
                got: message.len(),
            });
        }
        let parity_len = self.n - self.k;
        let msg_poly = BinPoly::from_bitvec(message).shl(parity_len);
        let parity = msg_poly.rem(&self.generator);
        let codeword = msg_poly.add(&parity);
        Ok(codeword.to_bitvec(self.n))
    }

    fn decode_message(&self, word: &BitVec) -> Result<BitVec, CodeError> {
        self.decode(word).map(|d| d.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bch_15_known_dimensions() {
        // Classic table: BCH(15, 11, t=1), BCH(15, 7, t=2), BCH(15, 5, t=3).
        assert_eq!(Bch::new(4, 1).unwrap().k(), 11);
        assert_eq!(Bch::new(4, 2).unwrap().k(), 7);
        assert_eq!(Bch::new(4, 3).unwrap().k(), 5);
    }

    #[test]
    fn bch_31_known_dimensions() {
        // BCH(31, 26, 1), (31, 21, 2), (31, 16, 3), (31, 11, 5).
        assert_eq!(Bch::new(5, 1).unwrap().k(), 26);
        assert_eq!(Bch::new(5, 2).unwrap().k(), 21);
        assert_eq!(Bch::new(5, 3).unwrap().k(), 16);
        assert_eq!(Bch::new(5, 5).unwrap().k(), 11);
    }

    #[test]
    fn hamming_15_11_generator() {
        // t=1 BCH over GF(16) is the Hamming(15,11) code, generator x^4+x+1.
        let code = Bch::new(4, 1).unwrap();
        let g = code.generator();
        assert_eq!(g.degree(), Some(4));
        assert!(g.coeff(0) && g.coeff(1) && !g.coeff(2) && !g.coeff(3) && g.coeff(4));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(matches!(Bch::new(4, 0), Err(CodeError::BadParameters)));
        assert!(matches!(Bch::new(1, 1), Err(CodeError::BadParameters)));
        assert!(matches!(Bch::new(4, 8), Err(CodeError::BadParameters))); // 2t >= n
    }

    #[test]
    fn encode_wrong_length() {
        let code = Bch::new(4, 2).unwrap();
        let r = code.encode(&BitVec::zeros(3));
        assert_eq!(
            r,
            Err(CodeError::WrongLength {
                expected: 7,
                got: 3
            })
        );
    }

    #[test]
    fn roundtrip_no_errors() {
        let code = Bch::new(6, 4).unwrap();
        let msg = BitVec::from_fn(code.k(), |i| i % 3 == 1);
        let word = code.encode(&msg).unwrap();
        let dec = code.decode(&word).unwrap();
        assert_eq!(dec.message, msg);
        assert_eq!(dec.corrected_errors, 0);
    }

    #[test]
    fn corrects_up_to_t_errors() {
        let code = Bch::new(6, 4).unwrap(); // BCH(63, k, 4)
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let msg = BitVec::from_fn(code.k(), |_| rng.gen_bool(0.5));
            let word = code.encode(&msg).unwrap();
            let num_err = rng.gen_range(1..=code.t());
            let mut corrupted = word.clone();
            let mut positions = HashSet::new();
            while positions.len() < num_err {
                positions.insert(rng.gen_range(0..code.n()));
            }
            for &p in &positions {
                corrupted.flip(p);
            }
            let dec = code.decode(&corrupted).unwrap();
            assert_eq!(dec.message, msg, "trial {trial}");
            assert_eq!(dec.codeword, word);
            assert_eq!(dec.corrected_errors, num_err);
        }
    }

    #[test]
    fn detects_too_many_errors_usually() {
        // With >t errors, decoding either fails or returns a *different*
        // codeword — it must never return the original message claiming
        // success with the same codeword.
        let code = Bch::new(5, 2).unwrap();
        let msg = BitVec::from_fn(code.k(), |i| i % 2 == 0);
        let word = code.encode(&msg).unwrap();
        let mut corrupted = word.clone();
        for p in [0usize, 5, 9, 14, 20, 27] {
            corrupted.flip(p);
        }
        match code.decode(&corrupted) {
            Err(CodeError::TooManyErrors) => {}
            Ok(dec) => assert_ne!(dec.codeword, word, "6 errors silently ignored"),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn all_codewords_have_zero_syndrome() {
        let code = Bch::new(4, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let msg = BitVec::from_fn(code.k(), |_| rng.gen_bool(0.5));
            let word = code.encode(&msg).unwrap();
            assert!(code.syndromes(&word).iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn systematic_property() {
        // Message bits appear verbatim in the high positions.
        let code = Bch::new(4, 2).unwrap();
        let msg = BitVec::from_fn(code.k(), |i| i == 0 || i == 4);
        let word = code.encode(&msg).unwrap();
        let parity = code.n() - code.k();
        for i in 0..code.k() {
            assert_eq!(word.get(parity + i), msg.get(i));
        }
    }

    #[test]
    fn large_code_roundtrip() {
        // BCH(1023, k, 12) — iris-scale code used by the code-offset bench.
        let code = Bch::new(10, 12).unwrap();
        assert!(code.k() > 900);
        let mut rng = StdRng::seed_from_u64(7);
        let msg = BitVec::from_fn(code.k(), |_| rng.gen_bool(0.5));
        let word = code.encode(&msg).unwrap();
        let mut corrupted = word.clone();
        let mut positions = HashSet::new();
        while positions.len() < 12 {
            positions.insert(rng.gen_range(0..code.n()));
        }
        for &p in &positions {
            corrupted.flip(p);
        }
        let dec = code.decode(&corrupted).unwrap();
        assert_eq!(dec.message, msg);
        assert_eq!(dec.corrected_errors, 12);
    }
}
