//! Addition, subtraction and multiplication for [`Natural`].

use crate::Natural;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

pub(crate) fn add_limbs(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &lhs) in long.iter().enumerate() {
        let rhs = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = lhs.overflowing_add(rhs);
        let (s2, c2) = s1.overflowing_add(carry);
        out.push(s2);
        carry = (c1 as u64) + (c2 as u64);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Subtracts `b` from `a` in place, returning the final borrow.
/// `a.len() >= b.len()` is required.
pub(crate) fn sub_limbs_in_place(a: &mut [u64], b: &[u64]) -> bool {
    debug_assert!(a.len() >= b.len());
    let mut borrow = false;
    for (i, limb) in a.iter_mut().enumerate() {
        let rhs = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = limb.overflowing_sub(rhs);
        let (d2, b2) = d1.overflowing_sub(borrow as u64);
        *limb = d2;
        borrow = b1 || b2;
    }
    borrow
}

/// Schoolbook multiplication: `out = a * b` (out is zeroed and resized).
fn mul_schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    out
}

/// Karatsuba multiplication for large operands.
fn mul_karatsuba(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let split = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(split.min(a.len()));
    let (b0, b1) = b.split_at(split.min(b.len()));

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    let a01 = add_limbs(a0, a1);
    let b01 = add_limbs(b0, b1);
    let mut z1 = mul_karatsuba(&a01, &b01);
    // z1 = (a0+a1)(b0+b1) - z0 - z2
    let borrow0 = sub_limbs_in_place(&mut z1, &z0);
    let borrow2 = sub_limbs_in_place(&mut z1, &z2);
    debug_assert!(!borrow0 && !borrow2, "karatsuba middle term underflow");
    trim(&mut z1);

    let mut out = vec![0u64; a.len() + b.len()];
    add_shifted(&mut out, &z0, 0);
    add_shifted(&mut out, &z1, split);
    add_shifted(&mut out, &z2, 2 * split);
    out
}

/// Removes trailing zero limbs (the value is unchanged).
fn trim(limbs: &mut Vec<u64>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

/// `acc += val << (shift limbs)`; `acc` must be large enough.
fn add_shifted(acc: &mut [u64], val: &[u64], shift: usize) {
    let mut carry = 0u64;
    for (i, &v) in val.iter().enumerate() {
        let idx = i + shift;
        let (s1, c1) = acc[idx].overflowing_add(v);
        let (s2, c2) = s1.overflowing_add(carry);
        acc[idx] = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    let mut k = val.len() + shift;
    while carry != 0 {
        let (s, c) = acc[k].overflowing_add(carry);
        acc[k] = s;
        carry = c as u64;
        k += 1;
    }
}

impl Natural {
    /// Checked subtraction: returns `None` if `other > self`.
    ///
    /// ```rust
    /// use fe_bigint::Natural;
    /// assert_eq!(Natural::from(3u64).checked_sub(&Natural::from(5u64)), None);
    /// ```
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let borrow = sub_limbs_in_place(&mut limbs, &other.limbs);
        debug_assert!(!borrow);
        Some(Natural::from_limbs(limbs))
    }

    /// Multiplies by a single 64-bit limb.
    pub fn mul_u64(&self, m: u64) -> Natural {
        if m == 0 || self.is_zero() {
            return Natural::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let cur = (l as u128) * (m as u128) + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        Natural::from_limbs(out)
    }

    /// Adds a single 64-bit limb.
    pub fn add_u64(&self, v: u64) -> Natural {
        self + &Natural::from(v)
    }

    /// Subtracts a single 64-bit limb, returning `None` on underflow.
    pub fn checked_sub_u64(&self, v: u64) -> Option<Natural> {
        self.checked_sub(&Natural::from(v))
    }

    /// Squares the value. Currently delegates to multiplication.
    pub fn square(&self) -> Natural {
        self * self
    }
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        Natural::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        &self + &rhs
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        *self = &*self + rhs;
    }
}

impl Sub<&Natural> for &Natural {
    type Output = Natural;
    /// # Panics
    /// Panics if `rhs > self`; use [`Natural::checked_sub`] to handle
    /// underflow gracefully.
    fn sub(self, rhs: &Natural) -> Natural {
        self.checked_sub(rhs)
            .expect("Natural subtraction underflow")
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(self, rhs: Natural) -> Natural {
        &self - &rhs
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        *self = &*self - rhs;
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        Natural::from_limbs(mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn add_with_carry_propagation() {
        let a = Natural::from(u64::MAX);
        let b = Natural::one();
        assert_eq!(&a + &b, n(1u128 << 64));
    }

    #[test]
    fn add_asymmetric_lengths() {
        let a = n(u128::MAX);
        let b = Natural::one();
        let sum = &a + &b;
        assert_eq!(sum.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_with_borrow() {
        let a = n(1u128 << 64);
        let b = Natural::one();
        assert_eq!(&a - &b, Natural::from(u64::MAX));
    }

    #[test]
    fn sub_underflow_is_none() {
        assert_eq!(n(5).checked_sub(&n(6)), None);
        assert_eq!(n(5).checked_sub(&n(5)), Some(Natural::zero()));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_operator_panics_on_underflow() {
        let _ = &n(1) - &n(2);
    }

    #[test]
    fn mul_small() {
        assert_eq!(&n(7) * &n(6), n(42));
        assert_eq!(&n(0) * &n(6), Natural::zero());
    }

    #[test]
    fn mul_cross_limb() {
        let a = Natural::from(u64::MAX);
        let b = Natural::from(u64::MAX);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = n((u64::MAX as u128) * (u64::MAX as u128));
        assert_eq!(&a * &b, expect);
    }

    #[test]
    fn mul_u64_matches_full_mul() {
        let a = n(0xdead_beef_cafe_babe_1234_5678u128);
        assert_eq!(a.mul_u64(1000), &a * &n(1000));
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Build operands big enough to cross the threshold.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..80u64 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i);
            limbs_a.push(x);
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(i * 7 + 1);
            limbs_b.push(x);
        }
        let a = &limbs_a;
        let b = &limbs_b;
        assert_eq!(mul_karatsuba(a, b), mul_schoolbook(a, b));
    }

    #[test]
    fn square_matches_mul() {
        let a = n(0xffff_ffff_ffff_ffff_ffffu128);
        assert_eq!(a.square(), &a * &a);
    }

    #[test]
    fn distributivity_smoke() {
        let a = n(123_456_789_000);
        let b = n(987_654_321_000);
        let c = n(555_555);
        let left = &a * &(&b + &c);
        let right = &(&a * &b) + &(&a * &c);
        assert_eq!(left, right);
    }
}
