//! **Storage ablation (ours)**: Vec-of-Vec rows vs the columnar
//! [`SketchArena`] behind every index, and the scan-kernel sweep
//! (scalar vs SWAR vs AVX2 prefilter) on top of the columnar layout.
//!
//! The paper's identification scan is memory-bound at scale, so the
//! storage layout — not the per-coordinate arithmetic — sets the
//! throughput ceiling. This ablation pits the seed layout
//! (`Vec<Option<Vec<i64>>>`: a heap allocation and pointer chase per
//! record, 8 bytes per coordinate) against the arena (one contiguous
//! width-adaptive buffer + tombstone bitmap), and the scalar
//! early-abort kernel against the two-phase vectorized scan
//! (dimension-major prefilter plane; see `FilterConfig`):
//!
//! * `lookup/*` — worst-case *matching* probe (resolves at the last
//!   enrolled record, so the whole population is scanned);
//! * `nomatch/*` — worst-case *non-matching* probe (the acceptance
//!   criterion: nothing matches, every row must be rejected);
//! * `bulk_load/*` — enrollment rate, with the arena pre-sized the way
//!   snapshot recovery pre-sizes it (`vectorized` includes plane
//!   maintenance);
//! * bytes/record — reported to stdout and
//!   `target/experiments/storage_ablation.csv` from `heap_bytes()`.
//!
//! Kernel variants: `columnar` = the PR 3 scalar columnar kernel
//! (`FilterConfig::disabled()`), `swar` = portable packed-lane SWAR
//! forced, `vectorized` = runtime dispatch (AVX-512 → AVX2 → SWAR on
//! x86-64, NEON on aarch64 — the `vectorized_is_avx2` /
//! `vectorized_is_avx512` smoke metrics say which ran). Headline smoke
//! numbers land in `BENCH_SMOKE.json`; with `FE_BENCH_GATE` set, the
//! run **fails** if the vectorized kernel is not at least as fast as
//! the scalar one on the smoke population.
//!
//! The `sweep_policy` group ablates the sweep *policy* on top of the
//! dispatched kernel: adaptive vs fixed plane depth, phase-1 block
//! size, and the parallel block-sweep thread cap (see
//! [`bench_sweep_policy`]).
//!
//! `FE_BENCH_SMOKE=1` shrinks the sweep to a CI-sized smoke run that
//! still executes every cell-width dispatch path (`i16`/`i32`/`i64`),
//! every kernel variant, and the pre-sized bulk-load path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fe_bench::{smoke, time_best, write_csv};
use fe_core::conditions::sketches_match;
use fe_core::{
    CellWidth, FilterConfig, ParallelConfig, PlaneDepth, PlaneWidth, ScanIndex, SketchIndex,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const DIM: usize = 32;
const T: u64 = 100;
const KA: u64 = 400;

/// The seed storage layout, preserved here as the ablation baseline:
/// one boxed row per record behind an `Option` tombstone.
struct VecOfVecScan {
    t: u64,
    ka: u64,
    entries: Vec<Option<Vec<i64>>>,
}

impl VecOfVecScan {
    fn new(t: u64, ka: u64) -> Self {
        VecOfVecScan {
            t,
            ka,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, sketch: Vec<i64>) {
        self.entries.push(Some(sketch));
    }

    fn lookup(&self, probe: &[i64]) -> Option<usize> {
        self.entries.iter().position(|s| {
            s.as_ref().is_some_and(|s| {
                s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
            })
        })
    }

    fn heap_bytes(&self) -> usize {
        let table = self.entries.capacity() * std::mem::size_of::<Option<Vec<i64>>>();
        let rows: usize = self
            .entries
            .iter()
            .flatten()
            .map(|s| s.capacity() * std::mem::size_of::<i64>())
            .sum();
        table + rows
    }
}

/// Uniform sketch vectors over the ring (storage is what's measured;
/// the scan cost model only needs per-coordinate uniformity).
fn synth_sketches(n: usize, ka: u64, rng: &mut StdRng) -> Vec<Vec<i64>> {
    let half = (ka / 2) as i64;
    (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-half..=half)).collect())
        .collect()
}

/// A probe that matches `sketch` on every coordinate (distance ≤ t).
fn matching_probe(sketch: &[i64], t: u64, ka: u64, rng: &mut StdRng) -> Vec<i64> {
    let half = (ka / 2) as i64;
    sketch
        .iter()
        .map(|&v| {
            let noisy = v + rng.gen_range(-(t as i64)..=t as i64);
            // Stay on canonical ring values, like a real sketch would.
            let r = noisy.rem_euclid(ka as i64);
            if r > half {
                r - ka as i64
            } else {
                r
            }
        })
        .collect()
}

fn bench_storage(c: &mut Criterion) {
    let smoke = smoke::smoke_mode();
    let sizes: &[usize] = if smoke {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut group = c.benchmark_group("storage_ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(if smoke { 1 } else { 2 }));
    group.warm_up_time(Duration::from_millis(if smoke { 100 } else { 500 }));

    let mut csv_rows = Vec::new();
    let mut smoke_metrics: Vec<(String, f64)> = Vec::new();
    // The FE_BENCH_GATE comparisons run on the largest population of
    // the sweep: (scalar_us, vectorized_us) for the no-match worst
    // case, and (u16_us, u8_us) for the plane-width ablation.
    let mut gate_pair = (0.0f64, 0.0f64);
    let mut width_gate_pair = (0.0f64, 0.0f64);
    // Which kernel `vectorized` actually dispatched to ("avx2"/"swar"),
    // and which plane width `Auto` resolved to ("u8"/"u16").
    let mut kernel_label = "scalar";
    let mut width_label = "none";
    // Best-of iterations for the single-shot smoke timings.
    let iters = if smoke { 9 } else { 5 };
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(0x5704 + n as u64);
        let sketches = synth_sketches(n, KA, &mut rng);
        // Worst case for a *hit*: the probe resolves at the very last
        // record, so every row is visited.
        let probe = matching_probe(sketches.last().unwrap(), T, KA, &mut rng);

        let mut baseline = VecOfVecScan::new(T, KA);
        // The kernel sweep, all on the same columnar storage: the PR 3
        // scalar kernel, forced portable SWAR, and runtime dispatch.
        let mut columnar = ScanIndex::with_filter(T, KA, FilterConfig::disabled());
        let mut swar_idx = ScanIndex::with_filter(T, KA, FilterConfig::swar());
        let mut vectorized = ScanIndex::new(T, KA);
        // Plane-width ablation on the dispatched kernel: the exact
        // 16-bit plane vs the quantized byte plane, pinned so each run
        // measures both no matter what `Auto` resolves to.
        let mut u16_idx =
            ScanIndex::with_filter(T, KA, FilterConfig::default().with_width(PlaneWidth::U16));
        let mut u8_idx =
            ScanIndex::with_filter(T, KA, FilterConfig::default().with_width(PlaneWidth::U8));
        columnar.reserve(n, DIM);
        swar_idx.reserve(n, DIM);
        vectorized.reserve(n, DIM);
        u16_idx.reserve(n, DIM);
        u8_idx.reserve(n, DIM);
        for s in &sketches {
            baseline.insert(s.clone());
            columnar.insert(s);
            swar_idx.insert(s);
            vectorized.insert(s);
            u16_idx.insert(s);
            u8_idx.insert(s);
        }
        assert_eq!(columnar.arena().width(), CellWidth::I16);
        assert_eq!(columnar.arena().filter_kernel(), "scalar");
        assert_eq!(swar_idx.arena().filter_kernel(), "swar");
        assert_eq!(u16_idx.arena().plane_width(), "u16");
        assert_eq!(u8_idx.arena().plane_width(), "u8");
        kernel_label = vectorized.arena().filter_kernel();
        width_label = vectorized.arena().plane_width();
        assert_eq!(baseline.lookup(&probe), columnar.lookup(&probe));
        assert_eq!(columnar.lookup(&probe), swar_idx.lookup(&probe));
        assert_eq!(columnar.lookup(&probe), vectorized.lookup(&probe));
        assert_eq!(columnar.lookup(&probe), u16_idx.lookup(&probe));
        assert_eq!(columnar.lookup(&probe), u8_idx.lookup(&probe));

        // Worst case for a *miss* (the acceptance criterion): a fresh
        // sketch that matches nothing, so every row must be rejected.
        let miss = loop {
            let candidate = synth_sketches(1, KA, &mut rng).pop().unwrap();
            if columnar.lookup(&candidate).is_none() {
                break candidate;
            }
        };
        assert_eq!(swar_idx.lookup(&miss), None);
        assert_eq!(vectorized.lookup(&miss), None);
        assert_eq!(u16_idx.lookup(&miss), None);
        assert_eq!(u8_idx.lookup(&miss), None);

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("lookup/baseline", n), &n, |b, _| {
            b.iter(|| {
                baseline
                    .lookup(std::hint::black_box(&probe))
                    .expect("found")
            })
        });
        for (label, index) in [
            ("lookup/columnar", &columnar),
            ("lookup/swar", &swar_idx),
            ("lookup/vectorized", &vectorized),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| index.lookup(std::hint::black_box(&probe)).expect("found"))
            });
        }
        for (label, index) in [
            ("nomatch/columnar", &columnar),
            ("nomatch/swar", &swar_idx),
            ("nomatch/vectorized", &vectorized),
            ("nomatch/u16", &u16_idx),
            ("nomatch/u8", &u8_idx),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| index.lookup(std::hint::black_box(&miss)))
            });
        }

        // Bulk load: the recovery path (pre-sized arena) vs pushing
        // boxed rows. Loads are re-done per iteration, so keep the
        // budget in check by loading a slice at the larger sizes.
        // `vectorized` includes the prefilter-plane maintenance cost.
        let load = &sketches[..n.min(100_000)];
        group.throughput(Throughput::Elements(load.len() as u64));
        group.bench_with_input(BenchmarkId::new("bulk_load/baseline", n), &n, |b, _| {
            b.iter(|| {
                let mut idx = VecOfVecScan::new(T, KA);
                for s in load {
                    idx.insert(s.clone());
                }
                idx.entries.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bulk_load/columnar", n), &n, |b, _| {
            b.iter(|| {
                let mut idx = ScanIndex::with_filter(T, KA, FilterConfig::disabled());
                idx.reserve(load.len(), DIM);
                for s in load {
                    idx.insert(s);
                }
                idx.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bulk_load/vectorized", n), &n, |b, _| {
            b.iter(|| {
                let mut idx = ScanIndex::new(T, KA);
                idx.reserve(load.len(), DIM);
                for s in load {
                    idx.insert(s);
                }
                idx.len()
            })
        });

        // Machine-readable smoke numbers: best-of-timed worst-case
        // lookups per layout and kernel, plus bytes/record.
        let (_, base_secs) = time_best(iters, || baseline.lookup(&probe).expect("found"));
        let (_, col_secs) = time_best(iters, || columnar.lookup(&probe).expect("found"));
        let (_, swar_secs) = time_best(iters, || swar_idx.lookup(&probe).expect("found"));
        let (_, vect_secs) = time_best(iters, || vectorized.lookup(&probe).expect("found"));
        smoke_metrics.push((format!("baseline_lookup_us_{n}"), base_secs * 1e6));
        smoke_metrics.push((format!("columnar_lookup_us_{n}"), col_secs * 1e6));
        smoke_metrics.push((format!("swar_lookup_us_{n}"), swar_secs * 1e6));
        smoke_metrics.push((format!("vectorized_lookup_us_{n}"), vect_secs * 1e6));
        let (_, u16_secs) = time_best(iters, || u16_idx.lookup(&probe).expect("found"));
        let (_, u8_secs) = time_best(iters, || u8_idx.lookup(&probe).expect("found"));
        smoke_metrics.push((format!("u16_lookup_us_{n}"), u16_secs * 1e6));
        smoke_metrics.push((format!("u8_lookup_us_{n}"), u8_secs * 1e6));
        let (_, col_miss) = time_best(iters, || columnar.lookup(&miss));
        let (_, swar_miss) = time_best(iters, || swar_idx.lookup(&miss));
        let (_, vect_miss) = time_best(iters, || vectorized.lookup(&miss));
        // The width pair is gated against each other, so take both
        // best-of numbers from interleaved rounds: comparands must
        // share one measurement neighborhood (see bench_sweep_policy).
        let mut u16_miss = f64::INFINITY;
        let mut u8_miss = f64::INFINITY;
        for _ in 0..iters * 3 {
            u16_miss = u16_miss.min(time_best(1, || u16_idx.lookup(&miss)).1);
            u8_miss = u8_miss.min(time_best(1, || u8_idx.lookup(&miss)).1);
        }
        smoke_metrics.push((format!("columnar_nomatch_us_{n}"), col_miss * 1e6));
        smoke_metrics.push((format!("swar_nomatch_us_{n}"), swar_miss * 1e6));
        smoke_metrics.push((format!("vectorized_nomatch_us_{n}"), vect_miss * 1e6));
        smoke_metrics.push((format!("u16_nomatch_us_{n}"), u16_miss * 1e6));
        smoke_metrics.push((format!("u8_nomatch_us_{n}"), u8_miss * 1e6));
        gate_pair = (col_miss, vect_miss);
        width_gate_pair = (u16_miss, u8_miss);
        println!(
            "storage_ablation/kernels/{n}: no-match scalar {:.1} µs, swar {:.1} µs \
             ({:.2}×), {} {:.1} µs ({:.2}×)",
            col_miss * 1e6,
            swar_miss * 1e6,
            col_miss / swar_miss,
            vectorized.arena().filter_kernel(),
            vect_miss * 1e6,
            col_miss / vect_miss,
        );
        println!(
            "storage_ablation/plane_width/{n}: no-match u16 {:.1} µs, u8 {:.1} µs \
             ({:.2}×; auto resolved to {})",
            u16_miss * 1e6,
            u8_miss * 1e6,
            u16_miss / u8_miss,
            vectorized.arena().plane_width(),
        );

        let base_bpr = baseline.heap_bytes() as f64 / n as f64;
        let col_bpr = columnar.heap_bytes() as f64 / n as f64;
        let vect_bpr = vectorized.heap_bytes() as f64 / n as f64;
        smoke_metrics.push((format!("baseline_bytes_per_record_{n}"), base_bpr));
        smoke_metrics.push((format!("columnar_bytes_per_record_{n}"), col_bpr));
        smoke_metrics.push((format!("vectorized_bytes_per_record_{n}"), vect_bpr));
        println!(
            "storage_ablation/bytes_per_record/{n}: baseline {base_bpr:.1} B, \
             columnar {col_bpr:.1} B ({:.1}× smaller), vectorized {vect_bpr:.1} B \
             (plane overhead {:.1} B)",
            base_bpr / col_bpr,
            vect_bpr - col_bpr
        );
        csv_rows.push(format!(
            "{n},{base_bpr:.1},{col_bpr:.1},{vect_bpr:.1},{:.3},{:.3},{:.3}",
            col_miss * 1e6,
            swar_miss * 1e6,
            vect_miss * 1e6
        ));
    }
    group.finish();
    let path = write_csv(
        "storage_ablation.csv",
        "records,baseline_bytes_per_record,columnar_bytes_per_record,\
         vectorized_bytes_per_record,scalar_nomatch_us,swar_nomatch_us,vectorized_nomatch_us",
        &csv_rows,
    );
    println!(
        "storage_ablation: bytes/record + kernel sweep written to {}",
        path.display()
    );
    let avx2 = kernel_label == "avx2";
    smoke_metrics.push(("vectorized_is_avx2".to_string(), f64::from(u8::from(avx2))));
    let avx512 = kernel_label == "avx512";
    smoke_metrics.push((
        "vectorized_is_avx512".to_string(),
        f64::from(u8::from(avx512)),
    ));
    let auto_u8 = width_label == "u8";
    smoke_metrics.push(("vectorized_is_u8".to_string(), f64::from(u8::from(auto_u8))));
    let named: Vec<(&str, f64)> = smoke_metrics
        .iter()
        .map(|(k, v)| (k.as_str(), *v))
        .collect();
    smoke::record("storage_ablation", &named);

    // The CI perf gates: on the smoke population the vectorized kernel
    // must not lose to the scalar one it claims to replace, and the
    // quantized byte plane must not lose to the exact 16-bit plane it
    // halves the traffic of.
    if std::env::var_os("FE_BENCH_GATE").is_some() {
        let (scalar_us, vect_us) = (gate_pair.0 * 1e6, gate_pair.1 * 1e6);
        assert!(
            vect_us <= scalar_us,
            "FE_BENCH_GATE: vectorized no-match lookup ({vect_us:.1} µs) is slower than \
             the scalar kernel ({scalar_us:.1} µs)"
        );
        let (u16_us, u8_us) = (width_gate_pair.0 * 1e6, width_gate_pair.1 * 1e6);
        assert!(
            u8_us <= u16_us,
            "FE_BENCH_GATE: u8-plane no-match lookup ({u8_us:.1} µs) is slower than \
             the u16 plane ({u16_us:.1} µs)"
        );
    }
}

/// Executes the two wide cell-width dispatch paths (`i32`, `i64`) so a
/// smoke run covers every kernel instantiation, and checks the widths
/// actually selected.
fn bench_width_dispatch(c: &mut Criterion) {
    let smoke = smoke::smoke_mode();
    let n = if smoke { 2_000 } else { 50_000 };
    let mut group = c.benchmark_group("storage_ablation_widths");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(100));

    for (name, ka, expect) in [
        ("i16", KA, CellWidth::I16),
        ("i32", 1u64 << 20, CellWidth::I32),
        ("i64", 1u64 << 40, CellWidth::I64),
    ] {
        let mut rng = StdRng::seed_from_u64(0x51DE + ka);
        let t = ka / 4;
        let sketches = synth_sketches(n, ka, &mut rng);
        let probe = matching_probe(sketches.last().unwrap(), t, ka, &mut rng);
        let mut index = ScanIndex::new(t, ka);
        index.reserve(n, DIM);
        for s in &sketches {
            index.insert(s);
        }
        assert_eq!(index.arena().width(), expect);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("lookup", name), &n, |b, _| {
            b.iter(|| index.lookup(std::hint::black_box(&probe)).expect("found"))
        });
    }
    group.finish();
}

/// The sweep-policy ablation on top of the vectorized kernel: adaptive
/// vs fixed plane depth, phase-1 block size (64/128/256 rows), and the
/// rayon-chunked parallel block-sweep at 1/2/4 worker threads.
///
/// Every variant must return the same answers as the sequential default
/// (asserted before timing). Timings land in `BENCH_SMOKE.json`
/// (`adaptive_f_depth`, `fixed8_nomatch_us`, `blockrows_*_nomatch_us`,
/// `parallel_lookup_us_{1,2,4}t`). With `FE_BENCH_GATE` set the run
/// fails if the adaptive depth loses to the old constant `F = 8`, or if
/// the parallel path capped at one thread (which must stand down to the
/// sequential sweep) is slower than the sequential default — both with
/// a noise tolerance. Multi-thread timings are gated only when the host
/// actually has a second core (`hw_threads > 1`: parallel must stay
/// within 1.1× the sequential sweep at the full 10⁶-row population);
/// on a 1-CPU box the 2t/4t sweeps time-slice one core, so they keep
/// an `*_informational` key and only result equality is asserted.
fn bench_sweep_policy(c: &mut Criterion) {
    let smoke = smoke::smoke_mode();
    let n = if smoke { 20_000 } else { 1_000_000 };
    let mut rng = StdRng::seed_from_u64(0x9A7A);
    let sketches = synth_sketches(n, KA, &mut rng);
    let probe = matching_probe(sketches.last().unwrap(), T, KA, &mut rng);

    let build = |filter: FilterConfig| {
        let mut idx = ScanIndex::with_filter(T, KA, filter);
        idx.reserve(n, DIM);
        for s in &sketches {
            idx.insert(s);
        }
        idx
    };
    let sequential = build(FilterConfig::default());
    let miss = loop {
        let candidate = synth_sketches(1, KA, &mut rng).pop().unwrap();
        if sequential.lookup(&candidate).is_none() {
            break candidate;
        }
    };

    // Adaptive plane depth vs the old constant F = 8. At the paper ring
    // (t = 100, ka = 400) the adaptive model lands on exactly 8, so this
    // gate is a strict no-regression check; on other rings it is where a
    // mis-tuned depth model would surface.
    let fixed8 = build(FilterConfig::default().with_depth(PlaneDepth::Fixed(8)));
    assert_eq!(sequential.lookup(&probe), fixed8.lookup(&probe));
    assert_eq!(fixed8.lookup(&miss), None);

    // Phase-1 block size: rows masked per super-block before the
    // prefetched phase-2 verify pass.
    let blocks: Vec<(usize, ScanIndex)> = [64usize, 128, 256]
        .into_iter()
        .map(|rows| {
            let idx = build(FilterConfig::default().with_block_rows(rows));
            assert_eq!(sequential.lookup(&probe), idx.lookup(&probe));
            assert_eq!(idx.lookup(&miss), None);
            (rows, idx)
        })
        .collect();

    // Parallel block-sweep at 1/2/4 worker threads. `forced(1)` must
    // stand down to the sequential sweep (gated below); 2t/4t record
    // whatever scaling the host can actually show.
    rayon::ensure_threads(4);
    let par: Vec<(usize, ScanIndex)> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let idx = build(FilterConfig::default().with_parallel(ParallelConfig::forced(threads)));
            assert_eq!(sequential.lookup(&probe), idx.lookup(&probe));
            assert_eq!(sequential.lookup_all(&probe), idx.lookup_all(&probe));
            assert_eq!(idx.lookup(&miss), None);
            (threads, idx)
        })
        .collect();

    let mut group = c.benchmark_group("sweep_policy");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(100));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("depth/adaptive", n), |b| {
        b.iter(|| sequential.lookup(std::hint::black_box(&miss)))
    });
    group.bench_function(BenchmarkId::new("depth/fixed8", n), |b| {
        b.iter(|| fixed8.lookup(std::hint::black_box(&miss)))
    });
    for (rows, idx) in &blocks {
        group.bench_function(BenchmarkId::new("block_rows", rows), |b| {
            b.iter(|| idx.lookup(std::hint::black_box(&miss)))
        });
    }
    for (threads, idx) in &par {
        group.bench_function(BenchmarkId::new("parallel", format!("{threads}t")), |b| {
            b.iter(|| idx.lookup(std::hint::black_box(&miss)))
        });
    }
    group.finish();

    // The smoke/gate timings run *after* criterion, back to back and
    // interleaved: the gate compares variants against each other, so
    // the comparands must share one measurement neighborhood — a pair
    // of best-of numbers taken minutes apart mostly measures how the
    // box drifted in between. Best-of over interleaved rounds keeps
    // each variant's number from the same few milliseconds of machine
    // state.
    let rounds = 25;
    let mut adaptive_miss = f64::INFINITY;
    let mut fixed8_miss = f64::INFINITY;
    let mut block_miss = vec![f64::INFINITY; blocks.len()];
    let mut par_miss = vec![f64::INFINITY; par.len()];
    for _ in 0..rounds {
        adaptive_miss = adaptive_miss.min(time_best(1, || sequential.lookup(&miss)).1);
        fixed8_miss = fixed8_miss.min(time_best(1, || fixed8.lookup(&miss)).1);
        for ((_, idx), best) in blocks.iter().zip(block_miss.iter_mut()) {
            *best = best.min(time_best(1, || idx.lookup(&miss)).1);
        }
        for ((_, idx), best) in par.iter().zip(par_miss.iter_mut()) {
            *best = best.min(time_best(1, || idx.lookup(&miss)).1);
        }
    }
    let one_thread_miss = par_miss[0];

    // Recorded so smoke-file consumers can judge the multi-thread
    // numbers: on a 1-CPU box the 2t/4t sweeps time-slice one core, so
    // their timings say nothing about the fan-out — they get an
    // `_informational` suffix instead of the gateable key.
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut metrics: Vec<(String, f64)> = vec![
        (
            "adaptive_f_depth".into(),
            sequential.arena().resolved_depth() as f64,
        ),
        ("adaptive_nomatch_us".into(), adaptive_miss * 1e6),
        ("fixed8_nomatch_us".into(), fixed8_miss * 1e6),
        ("hw_threads".into(), hw_threads as f64),
    ];
    for ((rows, _), best) in blocks.iter().zip(&block_miss) {
        metrics.push((format!("blockrows_{rows}_nomatch_us"), best * 1e6));
    }
    for ((threads, _), best) in par.iter().zip(&par_miss) {
        let key = if *threads > 1 && hw_threads == 1 {
            format!("parallel_lookup_us_{threads}t_informational")
        } else {
            format!("parallel_lookup_us_{threads}t")
        };
        metrics.push((key, best * 1e6));
    }
    println!(
        "sweep_policy/{n}: adaptive F={} {:.1} µs vs fixed8 {:.1} µs; parallel 1t {:.1} µs",
        sequential.arena().resolved_depth(),
        adaptive_miss * 1e6,
        fixed8_miss * 1e6,
        one_thread_miss * 1e6,
    );
    let named: Vec<(&str, f64)> = metrics.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    smoke::record("sweep_policy", &named);

    if std::env::var_os("FE_BENCH_GATE").is_some() {
        // 25% tolerance: even interleaved best-of timings jitter on a
        // shared CI box; the gate is for losing a kernel, not a run.
        let tol = 1.25;
        assert!(
            adaptive_miss <= fixed8_miss * tol,
            "FE_BENCH_GATE: adaptive plane depth ({:.1} µs) lost to fixed F=8 ({:.1} µs)",
            adaptive_miss * 1e6,
            fixed8_miss * 1e6
        );
        assert!(
            one_thread_miss <= adaptive_miss * tol,
            "FE_BENCH_GATE: parallel sweep capped at 1 thread ({:.1} µs) is slower than \
             the sequential sweep ({:.1} µs) — the stand-down path regressed",
            one_thread_miss * 1e6,
            adaptive_miss * 1e6
        );
        // With real cores to fan out to, the multi-thread sweeps are
        // gated, not informational: parallel must never lose to the
        // sequential sweep by more than scheduling noise. (This is also
        // the measurement `ParallelConfig::min_rows` is tuned from: at
        // the default threshold the swept range here is far past the
        // fan-out break-even, so losing means dispatch overhead grew.)
        if hw_threads > 1 {
            for ((threads, _), best) in par.iter().zip(&par_miss).skip(1) {
                assert!(
                    *best <= adaptive_miss * 1.1,
                    "FE_BENCH_GATE: parallel sweep at {threads} threads ({:.1} µs) exceeds \
                     1.1× the sequential sweep ({:.1} µs) on a {hw_threads}-thread host",
                    best * 1e6,
                    adaptive_miss * 1e6
                );
            }
        }
    }
}

criterion_group!(
    benches,
    bench_storage,
    bench_width_dispatch,
    bench_sweep_policy
);
criterion_main!(benches);
