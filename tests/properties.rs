//! Cross-crate property-based tests: the paper's theorems as proptest
//! properties over randomized configurations.

use fuzzy_id::core::codec::{
    self, decode_helper, decode_sketch, encode_helper, encode_sketch, CodecError, Fingerprint,
};
use fuzzy_id::core::conditions::{cyclic_close, paper_conditions_hold, sketches_match};
use fuzzy_id::core::{
    BucketIndex, ChebyshevSketch, FilterConfig, FuzzyExtractor, HelperData, NumberLine,
    ParallelConfig, PlaneDepth, PlaneWidth, RobustData, ScanIndex, SecureSketch, ShardedIndex,
    SketchIndex,
};
use fuzzy_id::metrics::{Metric, RingChebyshev};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random but always-valid (line, threshold) configurations.
/// `a >= 2` keeps the interval length `ka >= 4`, so a threshold
/// `1 <= t < ka/2` always exists.
fn line_and_t() -> impl Strategy<Value = (NumberLine, u64)> {
    (2u64..50, 1u64..6, 2u64..40).prop_flat_map(|(a, half_k, v)| {
        let k = half_k * 2;
        let line = NumberLine::new(a, k, v).expect("valid by construction");
        let t_max = line.interval_len() / 2 - 1;
        (Just(line), 1..=t_max)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 (forward direction): any reading within cyclic Chebyshev
    /// distance t recovers the enrolled vector exactly.
    #[test]
    fn theorem1_recovery_within_t(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..20,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        prop_assert_eq!(scheme.recover(&noisy, &sketch).unwrap(), x);
    }

    /// Theorem 1 (converse): a reading farther than t in some coordinate
    /// either fails or recovers a *different* vector — never silently the
    /// right one.
    #[test]
    fn theorem1_no_false_recovery(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..10,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let mut bad = x.clone();
        // Push one coordinate strictly beyond t (cyclically).
        let delta = (t + 1).min(line.period() / 2) as i64;
        bad[0] = line.wrap(bad[0] + delta);
        let ring = RingChebyshev::new(line.period());
        prop_assume!(ring.distance(&x[..], &bad[..]) > t);
        match scheme.recover(&bad, &sketch) {
            Err(_) => {}
            Ok(recovered) => prop_assert_ne!(recovered, x),
        }
    }

    /// The sketch never stores anything but bounded movements:
    /// |s_i| ≤ ka/2 — the Theorem 3 storage accounting assumption.
    #[test]
    fn sketch_values_bounded(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..20,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        let half = (line.interval_len() / 2) as i64;
        prop_assert!(sketch.iter().all(|&s| -half <= s && s <= half));
    }

    /// Theorem 2 equivalence: the paper's four conditions equal the
    /// cyclic-distance test for all legal sketch pairs.
    #[test]
    fn conditions_equal_cyclic(
        ka_half in 2i64..500,
        t_raw in 1u64..500,
        s in -500i64..=500,
        sp in -500i64..=500,
    ) {
        let ka = (2 * ka_half) as u64;
        let t = t_raw % (ka / 2);
        prop_assume!(t >= 1);
        let s = s.clamp(-ka_half, ka_half);
        let sp = sp.clamp(-ka_half, ka_half);
        prop_assert_eq!(
            paper_conditions_hold(s, sp, t, ka),
            cyclic_close(s, sp, t, ka)
        );
    }

    /// Theorem 2 (completeness): sketches of close readings always match.
    #[test]
    fn close_readings_always_match(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..16,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        let sx = scheme.sketch(&x, &mut rng).unwrap();
        let sy = scheme.sketch(&noisy, &mut rng).unwrap();
        prop_assert!(sketches_match(&sx, &sy, t, line.interval_len()));
    }

    /// Full fuzzy extractor roundtrip under random configurations.
    #[test]
    fn fuzzy_extractor_roundtrip(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..12,
        key_len in 16usize..48,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let fe = FuzzyExtractor::with_defaults(scheme, key_len);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let (key, helper) = fe.generate(&x, &mut rng).unwrap();
        prop_assert_eq!(key.len(), key_len);
        let noisy: Vec<i64> = x
            .iter()
            .map(|&v| {
                use rand::Rng;
                line.wrap(v + rng.gen_range(-(t as i64)..=t as i64))
            })
            .collect();
        prop_assert_eq!(fe.reproduce(&noisy, &helper).unwrap(), key);
    }

    /// Sharding is transparent: on a random sketch population,
    /// `ShardedIndex<ScanIndex>` and a plain `ScanIndex` assign the same
    /// record ids and return identical `lookup` / `lookup_all` /
    /// `lookup_batch` results — including after random removals, which
    /// must leave the surviving ids stable.
    #[test]
    fn sharded_index_equivalent_to_scan(
        shards in 1usize..=6,
        users in 1usize..60,
        dim in 1usize..8,
        seed in any::<u64>(),
        removal_mask in any::<u64>(),
    ) {
        const T: u64 = 100;
        const KA: u64 = 400;
        let mut rng = StdRng::seed_from_u64(seed);
        let half = (KA / 2) as i64;

        // Random sketch population (coordinates span the legal sketch
        // range [-ka/2, ka/2]; duplicates and near-duplicates arise
        // naturally, which is exactly what lookup_all must agree on).
        let sketches: Vec<Vec<i64>> = (0..users)
            .map(|_| {
                (0..dim)
                    .map(|_| {
                        use rand::Rng;
                        rng.gen_range(-half..=half)
                    })
                    .collect()
            })
            .collect();

        let mut scan = ScanIndex::new(T, KA);
        let mut sharded = ShardedIndex::scan(shards, T, KA);
        for s in &sketches {
            let a = scan.insert(s);
            let b = sharded.insert(s);
            prop_assert_eq!(a, b, "ids must be assigned identically");
        }

        // Random removals (bit u of the mask removes user u).
        for u in 0..users.min(64) {
            if removal_mask & (1 << u) != 0 {
                prop_assert_eq!(scan.remove(u), sharded.remove(u));
            }
        }
        prop_assert_eq!(scan.len(), sharded.len());

        // Probes: every enrolled sketch plus a perturbed copy.
        let mut probes = sketches.clone();
        probes.extend(sketches.iter().map(|s| {
            s.iter()
                .map(|&c| {
                    use rand::Rng;
                    (c + rng.gen_range(-(T as i64)..=T as i64)).clamp(-half, half)
                })
                .collect::<Vec<i64>>()
        }));

        for probe in &probes {
            prop_assert_eq!(scan.lookup(probe), sharded.lookup(probe));
            prop_assert_eq!(scan.lookup_all(probe), sharded.lookup_all(probe));
        }
        prop_assert_eq!(scan.lookup_batch(&probes), sharded.lookup_batch(&probes));
    }

    /// Codec round-trip: any sketch a legal scheme can produce survives
    /// the durable encoding under its own parameter fingerprint — and is
    /// rejected under any other fingerprint.
    #[test]
    fn codec_sketch_roundtrip_under_arbitrary_params(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 0usize..24,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let sketch = scheme.sketch(&x, &mut rng).unwrap();

        // Fingerprint the (line, t) configuration the way fe-protocol
        // fingerprints SystemParams: any parameter change changes it.
        let mut canon = codec::Writer::new();
        canon.put_u64(line.a());
        canon.put_u64(line.k());
        canon.put_u64(line.v());
        canon.put_u64(t);
        let fp = Fingerprint::of(canon.as_slice());

        let bytes = encode_sketch(&sketch, &fp);
        prop_assert_eq!(decode_sketch(&bytes, &fp).unwrap(), sketch);

        let mut other_canon = codec::Writer::new();
        other_canon.put_u64(line.a() + 1);
        other_canon.put_u64(line.k());
        other_canon.put_u64(line.v());
        other_canon.put_u64(t);
        let other = Fingerprint::of(other_canon.as_slice());
        prop_assert!(matches!(
            decode_sketch(&bytes, &other),
            Err(CodecError::FingerprintMismatch { .. })
        ));
    }

    /// Codec round-trip for full helper data (robust sketch + tag +
    /// seed) with arbitrary byte contents, plus truncation robustness:
    /// every strict prefix errors, never panics and never
    /// round-trips to a wrong value.
    #[test]
    fn codec_helper_roundtrip_and_truncation(
        inner in proptest::collection::vec(any::<i64>(), 0..32),
        tag in proptest::collection::vec(any::<u8>(), 0..48),
        extract_seed in proptest::collection::vec(any::<u8>(), 0..48),
        fp_seed in any::<u64>(),
        cut_permille in 0u32..1000,
    ) {
        let helper = HelperData {
            sketch: RobustData { inner, tag },
            seed: extract_seed,
        };
        let fp = Fingerprint::of(&fp_seed.to_be_bytes());
        let bytes = encode_helper(&helper, &fp);
        prop_assert_eq!(decode_helper(&bytes, &fp).unwrap(), helper);

        let cut = bytes.len() * cut_permille as usize / 1000;
        if cut < bytes.len() {
            prop_assert!(decode_helper(&bytes[..cut], &fp).is_err());
        }
    }

    /// Journal-frame robustness: a stream of CRC-framed payloads reads
    /// back exactly; any truncation point yields a clean prefix of the
    /// framed payloads plus a detected torn tail (no misparse).
    #[test]
    fn framed_stream_truncation_yields_clean_prefix(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..8),
        cut_permille in 0u32..1000,
    ) {
        let mut w = codec::Writer::new();
        for p in &payloads {
            w.put_framed(p);
        }
        let bytes = w.into_bytes();

        // Full read returns every payload.
        let mut r = codec::Reader::new(&bytes);
        for p in &payloads {
            prop_assert_eq!(r.get_framed().unwrap(), &p[..]);
        }
        prop_assert!(r.is_empty());

        // A truncated stream reads a prefix, then reports a torn frame.
        let cut = bytes.len() * cut_permille as usize / 1000;
        let mut r = codec::Reader::new(&bytes[..cut]);
        let mut recovered = 0usize;
        loop {
            if r.is_empty() {
                break;
            }
            match r.get_framed() {
                Ok(p) => {
                    prop_assert_eq!(p, &payloads[recovered][..]);
                    recovered += 1;
                }
                Err(CodecError::Truncated) | Err(CodecError::BadChecksum) => break,
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        prop_assert!(recovered <= payloads.len());
    }

    /// Ring-wrap invariance: shifting the whole input by one full period
    /// leaves the sketch-recovered value unchanged.
    #[test]
    fn period_shift_invariance(
        (line, t) in line_and_t(),
        seed in any::<u64>(),
        dim in 1usize..10,
    ) {
        let scheme = ChebyshevSketch::new(line, t).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = line.random_vector(dim, &mut rng);
        let shifted: Vec<i64> = x.iter().map(|&v| v + line.period() as i64).collect();
        let sketch = scheme.sketch(&x, &mut rng).unwrap();
        prop_assert_eq!(
            scheme.recover(&shifted, &sketch).unwrap(),
            x
        );
    }
}

// ---------------------------------------------------------------------------
// Columnar storage engine: the arena-backed indexes must be observably
// identical to the pre-arena Vec-of-Vec behavior, across every cell width.
// ---------------------------------------------------------------------------

/// The seed storage layout, kept as the reference model: boxed rows
/// behind `Option` tombstones, matching with the scalar conditions from
/// `fe_core::conditions` (which the arena's slice kernel must agree
/// with on every input).
struct ModelIndex {
    t: u64,
    ka: u64,
    entries: Vec<Option<Vec<i64>>>,
}

impl ModelIndex {
    fn new(t: u64, ka: u64) -> Self {
        ModelIndex {
            t,
            ka,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, sketch: &[i64]) -> usize {
        self.entries.push(Some(sketch.to_vec()));
        self.entries.len() - 1
    }

    fn matches(&self, s: &[i64], probe: &[i64]) -> bool {
        s.len() == probe.len() && sketches_match(s, probe, self.t, self.ka)
    }

    fn lookup(&self, probe: &[i64]) -> Option<usize> {
        self.entries
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| self.matches(s, probe)))
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, s)| s.as_ref().is_some_and(|s| self.matches(s, probe)))
            .map(|(i, _)| i)
            .collect()
    }

    fn remove(&mut self, id: usize) -> bool {
        match self.entries.get_mut(id) {
            Some(slot @ Some(_)) => {
                *slot = None;
                true
            }
            _ => false,
        }
    }

    fn compact(&mut self) -> Vec<(usize, usize)> {
        let mut mapping = Vec::new();
        let entries = std::mem::take(&mut self.entries);
        for (old, slot) in entries.into_iter().enumerate() {
            if let Some(s) = slot {
                mapping.push((old, self.entries.len()));
                self.entries.push(Some(s));
            }
        }
        mapping
    }

    fn live(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// One scripted operation applied to the model and an implementation in
/// lockstep.
#[derive(Debug, Clone)]
enum IndexOp {
    /// Insert a fresh sketch.
    Insert(Vec<i64>),
    /// Probe near the `n % inserted`-th live sketch, with per-coordinate
    /// offsets in `[-t, t]` (guaranteed genuine unless revoked).
    ProbeNear(usize, Vec<i64>),
    /// Probe an arbitrary vector (usually an impostor).
    Probe(Vec<i64>),
    /// Remove slot `n % slots`.
    Remove(usize),
    /// Compact every structure and compare the renumbering mappings.
    Compact,
}

/// Ring parameters spanning all three arena cell widths (`i16`, `i32`,
/// `i64`) **plus** the `ka ≥ 2⁶³` regime where the `i64` kernel must
/// widen through `i128` (and, like every non-`i16` ring, skip the SWAR
/// prefilter plane), with `t < ka/2` and capped so noise offsets stay
/// sane.
fn ring_params() -> impl Strategy<Value = (u64, u64)> {
    (0u8..4)
        .prop_flat_map(|width| {
            let (lo, hi) = match width {
                0 => (2u64, (1 << 15) - 1),
                1 => (1u64 << 15, (1 << 31) - 1),
                2 => (1u64 << 31, (1 << 62) - 1),
                _ => (1u64 << 63, u64::MAX),
            };
            lo..=hi
        })
        .prop_flat_map(|ka| (1u64..(ka / 2).clamp(2, 1 << 30), Just(ka)))
}

/// A full test case: ring, dimension, and an operation script.
fn index_case() -> impl Strategy<Value = (u64, u64, usize, Vec<IndexOp>)> {
    (ring_params(), 1usize..6).prop_flat_map(|((t, ka), dim)| {
        let half = (ka / 2).min(i64::MAX as u64 / 4) as i64;
        // Includes non-canonical (out-of-ring) coordinates on purpose.
        let op = (
            0u8..12,
            prop::collection::vec(-2 * half..=2 * half, dim..dim + 1),
            prop::collection::vec(-(t as i64)..=(t as i64), dim..dim + 1),
            any::<usize>(),
        )
            .prop_map(|(sel, sketch, noise, n)| match sel {
                0..=3 => IndexOp::Insert(sketch),
                4..=6 => IndexOp::ProbeNear(n, noise),
                7..=8 => IndexOp::Probe(sketch),
                9..=10 => IndexOp::Remove(n),
                _ => IndexOp::Compact,
            });
        (
            Just(t),
            Just(ka),
            Just(dim),
            prop::collection::vec(op, 1..48),
        )
    })
}

/// Drives one implementation and the model through the same script,
/// checking every observable output pairwise: ids, lookup, lookup_all,
/// lookup_batch, remove results, compact mappings, live/slot counts,
/// and the streaming iterator.
fn check_against_model<I: SketchIndex>(mut index: I, t: u64, ka: u64, ops: &[IndexOp]) {
    let mut model = ModelIndex::new(t, ka);
    let mut inserted: Vec<Vec<i64>> = Vec::new();
    let mut probes_seen: Vec<Vec<i64>> = Vec::new();
    for op in ops {
        match op {
            IndexOp::Insert(sketch) => {
                let a = model.insert(sketch);
                let b = index.insert(sketch);
                prop_assert_eq!(a, b, "insert ids diverged");
                inserted.push(sketch.clone());
            }
            IndexOp::ProbeNear(n, noise) => {
                if inserted.is_empty() {
                    continue;
                }
                let base = &inserted[n % inserted.len()];
                let probe: Vec<i64> = base
                    .iter()
                    .zip(noise.iter())
                    .map(|(&v, &d)| v.saturating_add(d))
                    .collect();
                prop_assert_eq!(model.lookup(&probe), index.lookup(&probe));
                prop_assert_eq!(model.lookup_all(&probe), index.lookup_all(&probe));
                probes_seen.push(probe);
            }
            IndexOp::Probe(probe) => {
                prop_assert_eq!(model.lookup(probe), index.lookup(probe));
                prop_assert_eq!(model.lookup_all(probe), index.lookup_all(probe));
                probes_seen.push(probe.clone());
            }
            IndexOp::Remove(n) => {
                let slots = model.entries.len();
                if slots == 0 {
                    continue;
                }
                let id = n % slots;
                prop_assert_eq!(model.remove(id), index.remove(id), "remove({})", id);
            }
            IndexOp::Compact => {
                // The whole renumbering must agree, not just lookups.
                prop_assert_eq!(model.compact(), index.compact());
                // Keep the insert log aligned with the dense state so
                // ProbeNear keeps pointing at live sketches.
                inserted = model.entries.iter().flatten().cloned().collect();
            }
        }
        prop_assert_eq!(model.live(), index.len(), "live count diverged");
        prop_assert_eq!(model.entries.len(), index.slots(), "slots diverged");
    }
    // The batch path agrees with the model's one-at-a-time path.
    let batch = index.lookup_batch(&probes_seen);
    for (probe, got) in probes_seen.iter().zip(batch) {
        prop_assert_eq!(model.lookup(probe), got);
    }
    // The streaming iterator sees exactly the model's live rows, in
    // ascending order, congruent mod ka (the arena stores canonical
    // ring representatives; the model stores raw coordinates).
    let mut live = Vec::new();
    index.for_each_live(&mut |id, row| live.push((id, row.to_vec())));
    let expected: Vec<(usize, Vec<i64>)> = model
        .entries
        .iter()
        .enumerate()
        .filter_map(|(id, s)| s.as_ref().map(|s| (id, s.clone())))
        .collect();
    prop_assert_eq!(live.len(), expected.len(), "for_each_live row count");
    for ((id_a, row), (id_b, s)) in live.iter().zip(expected.iter()) {
        prop_assert_eq!(id_a, id_b);
        for (&a, &b) in row.iter().zip(s.iter()) {
            let d = a.abs_diff(b) % ka;
            prop_assert_eq!(d.min(ka - d), 0, "row {} not ≡ model (mod ka)", id_a);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Arena-backed `ScanIndex` ≡ the Vec-of-Vec model — with the
    /// default prefilter plane (the vectorized two-phase scan on `i16`
    /// rings, the plain scalar kernel elsewhere).
    #[test]
    fn scan_index_matches_vec_of_vec_model((t, ka, _dim, ops) in index_case()) {
        check_against_model(ScanIndex::new(t, ka), t, ka, &ops);
    }

    /// The scalar columnar kernel in isolation (prefilter disabled) ≡
    /// the model: what `ScanIndex` was before the plane existed.
    #[test]
    fn scalar_kernel_scan_index_matches_model((t, ka, _dim, ops) in index_case()) {
        check_against_model(
            ScanIndex::with_filter(t, ka, FilterConfig::disabled()),
            t, ka, &ops,
        );
    }

    /// The portable SWAR kernel, forced (even where AVX2 exists) ≡ the
    /// model: prefilter+verify can never disagree with the scalar path
    /// on any population, for any cell width (wide rings — including
    /// the `ka ≥ 2⁶³` i128-fallback class — must silently skip SWAR).
    #[test]
    fn swar_kernel_scan_index_matches_model((t, ka, _dim, ops) in index_case()) {
        check_against_model(
            ScanIndex::with_filter(t, ka, FilterConfig::swar()),
            t, ka, &ops,
        );
    }

    /// Arena-backed `BucketIndex` ≡ the Vec-of-Vec model (the packed
    /// u64 bucket keys and multi-probe path included).
    #[test]
    fn bucket_index_matches_vec_of_vec_model((t, ka, dim, ops) in index_case()) {
        check_against_model(BucketIndex::new(t, ka, dim.min(4)), t, ka, &ops);
    }

    /// Arena-backed shards behind `ShardedIndex` ≡ the model (global id
    /// arithmetic over per-shard arenas, vectorized by default).
    #[test]
    fn sharded_index_matches_vec_of_vec_model((t, ka, _dim, ops) in index_case()) {
        check_against_model(ShardedIndex::scan(3, t, ka), t, ka, &ops);
    }

    /// The kernel's no-`%` cyclic test on canonical values agrees with
    /// `cyclic_close` on raw values — for every width class (including
    /// the `ka ≥ 2⁶³` ring whose subtraction must widen through i128)
    /// and every kernel: runtime-dispatched (AVX2 where available),
    /// forced SWAR, and scalar. A one-dimensional sketch makes the
    /// prefilter the *entire* match decision on `i16` rings, so the
    /// lane algebra itself is what's being pinned here.
    #[test]
    fn arena_kernel_agrees_with_cyclic_close(
        (t, ka) in ring_params(),
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        for filter in [
            FilterConfig::default(),
            FilterConfig::swar(),
            FilterConfig::disabled(),
        ] {
            let mut arena = fuzzy_id::core::SketchArena::with_filter(t, ka, filter);
            arena.push(&[a]);
            prop_assert_eq!(
                arena.find_first(&[b]).is_some(),
                cyclic_close(a, b, t, ka),
                "kernel {} vs cyclic_close at a={}, b={}, t={}, ka={}",
                arena.filter_kernel(), a, b, t, ka
            );
        }
    }
}

/// `i16`-capable rings biased toward the u8-eligibility cliff: the
/// byte plane quantizes residues into `kq = ⌈ka/⌈ka/256⌉⌉` buckets and
/// stands down when `2·tq+1 ≥ kq`, so rings right at a byte's capacity
/// (255/256/257) and the extremes (tiny, paper, largest i16) are where
/// an off-by-one in eligibility or bucket math would first surface.
fn byte_edge_ring() -> impl Strategy<Value = u64> {
    (0u8..8, 2u64..(1 << 15)).prop_map(|(sel, rand_ka)| match sel {
        0 => 255,
        1 => 256,
        2 => 257,
        3 => 400,
        4 => (1 << 15) - 1,
        _ => rand_ka,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The quantized byte plane (pinned `PlaneWidth::U8`) ≡ the model
    /// across every cell-width class and kernel — on wide rings (i32/
    /// i64/i128 cells) and rings where quantization leaves nothing to
    /// reject, the knob must *transparently* fall back and still agree.
    /// `U16` pinned runs against the same scripts so both widths of the
    /// plane are exercised whatever `Auto` resolves to.
    #[test]
    fn byte_plane_kernel_scan_index_matches_model((t, ka, _dim, ops) in index_case()) {
        for filter in [
            FilterConfig::default().with_width(PlaneWidth::U8),
            FilterConfig::swar().with_width(PlaneWidth::U8),
            FilterConfig::default().with_width(PlaneWidth::U16),
        ] {
            check_against_model(ScanIndex::with_filter(t, ka, filter), t, ka, &ops);
        }
    }

    /// Byte plane × parallel block-sweep: the quantized phase-1 masks
    /// feed the same chunked verify, so every thread count must return
    /// results identical to the sequential model sweep.
    #[test]
    fn byte_plane_parallel_kernel_matches_model((t, ka, _dim, ops) in index_case()) {
        rayon::ensure_threads(4);
        for threads in [2usize, 4] {
            check_against_model(
                ScanIndex::with_filter(
                    t, ka,
                    FilterConfig::default()
                        .with_width(PlaneWidth::U8)
                        .with_parallel(ParallelConfig::forced(threads)),
                ),
                t, ka, &ops,
            );
        }
    }

    /// Quantization boundaries: coordinates pinned to bucket edges
    /// (multiples of `q = ⌈ka/256⌉`, ±1) and to the ring wrap (`ka−1`
    /// wrapping to `0`), with thresholds straddling the u8-eligibility
    /// cliff — `2t+1 = 255` (the last byte-sized acceptance window) and
    /// `2t+1 = 257` (one past it; 256 is unreachable, `2t+1` is odd).
    /// One dimension makes the plane the entire phase-1 decision: u8,
    /// u16, and scalar must all equal `cyclic_close`, exactly.
    #[test]
    fn byte_plane_bucket_edge_kernel_agrees_with_cyclic_close(
        ka in byte_edge_ring(),
        t_sel in 0u8..5,
        edge_a in 0u64..512,
        edge_b in 0u64..512,
        off_a in -1i64..=1,
        off_b in -1i64..=1,
    ) {
        let q = ka.div_ceil(256).max(1);
        let t = match t_sel {
            0 => 127,    // 2t+1 = 255: barely byte-sized
            1 => 128,    // 2t+1 = 257: just past a byte
            2 => ka / 2, // clamp regime: nothing to reject
            3 => 0,      // exact-match-only
            _ => ka / 4,
        };
        let a = ((edge_a * q) as i64 + off_a).rem_euclid(ka as i64);
        let b = ((edge_b * q) as i64 + off_b).rem_euclid(ka as i64);
        for filter in [
            FilterConfig::default().with_width(PlaneWidth::U8),
            FilterConfig::swar().with_width(PlaneWidth::U8),
            FilterConfig::default().with_width(PlaneWidth::U16),
        ] {
            let mut arena = fuzzy_id::core::SketchArena::with_filter(t, ka, filter);
            arena.push(&[a]);
            prop_assert_eq!(
                arena.find_first(&[b]).is_some(),
                cyclic_close(a, b, t, ka),
                "{} plane ({} kernel) vs cyclic_close at a={}, b={}, t={}, ka={}, q={}",
                arena.plane_width(), arena.filter_kernel(), a, b, t, ka, q
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The rayon-chunked parallel block-sweep ≡ the model for every
    /// cell width (the `index_case` ring strategy spans i16/i32/i64 and
    /// the i128-widening class) × kernel (auto-dispatched SIMD, forced
    /// SWAR, plain scalar) × thread count: `lookup` must return the
    /// identical lowest-global-id match, and `lookup_all` /
    /// `lookup_batch` the identical full results, as the sequential
    /// sweep — cooperative cancellation between chunks included.
    /// `ParallelConfig::forced` drops the row threshold to zero so even
    /// tiny populations exercise the chunked path.
    #[test]
    fn parallel_sweep_kernel_matches_model((t, ka, _dim, ops) in index_case()) {
        rayon::ensure_threads(4);
        for filter in [
            FilterConfig::default(),
            FilterConfig::swar(),
            FilterConfig::disabled(),
        ] {
            // `0` = no cap: every pool worker the machine offers.
            for threads in [2usize, 4, 0] {
                check_against_model(
                    ScanIndex::with_filter(
                        t, ka,
                        filter.with_parallel(ParallelConfig::forced(threads)),
                    ),
                    t, ka, &ops,
                );
            }
        }
    }

    /// A plane pinned to the pre-adaptive constant depth `F = 8` ≡ the
    /// model on arbitrary populations. Together with
    /// `scan_index_matches_vec_of_vec_model` (which runs the default
    /// *adaptive* depth against the same model) this pins that plane
    /// depth only tunes prefilter selectivity — it can never change the
    /// match decision.
    #[test]
    fn fixed_depth_kernel_matches_model((t, ka, _dim, ops) in index_case()) {
        check_against_model(
            ScanIndex::with_filter(
                t, ka,
                FilterConfig::default().with_depth(PlaneDepth::Fixed(8)),
            ),
            t, ka, &ops,
        );
    }

    /// Cancellation never drops a match: with *every* row matching the
    /// probe and the sweep forced parallel, workers racing to publish
    /// "best id so far" must still surface the lowest live id — also
    /// after the current winner is revoked, which forces a later chunk
    /// to win against an already-cancelled earlier one.
    #[test]
    fn parallel_cancellation_kernel_keeps_lowest_match(
        (t, ka) in ring_params(),
        rows in 65usize..257,
        kill in 0usize..64,
    ) {
        rayon::ensure_threads(4);
        let mut arena = fuzzy_id::core::SketchArena::with_filter(
            t, ka,
            FilterConfig::default().with_parallel(ParallelConfig::forced(4)),
        );
        let base = (ka / 2) as i64;
        for _ in 0..rows {
            arena.push(&[base]);
        }
        prop_assert_eq!(arena.find_first(&[base]), Some(0));
        let kill = kill.min(rows - 1);
        for id in 0..kill {
            arena.remove(id);
        }
        prop_assert_eq!(arena.find_first(&[base]), Some(kill));
    }
}

/// `heap_bytes` accounting under enroll/revoke/compact churn: memory
/// tracks the live population (bounded under churn with compaction)
/// and the width-adaptive layout (2 bytes/coordinate at paper `ka`),
/// **including** the prefilter plane's packed lanes (1 byte per plane
/// cell on the default vectorized index — paper `ka` takes the
/// quantized byte plane).
#[test]
fn heap_bytes_accounting_under_churn() {
    let (t, ka, dim) = (100u64, 400u64, 64usize);
    let mut index = ScanIndex::new(t, ka);
    for i in 0..1_000i64 {
        index.insert(&vec![i % 200; dim]);
    }
    let full = index.heap_bytes();
    // i16 cells: the column buffer is dim × 2 bytes per row; the plane
    // adds 8 lanes × 1 byte per row; the bitmap 1 bit per row;
    // capacity slack stays below one doubling.
    assert!(full >= 1_000 * dim * 2 + 1_000 * 8 + 1_000 / 8);
    assert!(
        full <= 2 * (2 * 1_000 * (dim + 8) * 2),
        "unexpected slack: {full}"
    );
    // The plane is the only difference from a scalar index over the
    // same rows, and `reserve` pre-sizes it: a pre-sized bulk load
    // must end exactly where it started, plane lanes included.
    let mut scalar = ScanIndex::with_filter(t, ka, FilterConfig::disabled());
    let mut sized = ScanIndex::new(t, ka);
    scalar.reserve(1_000, dim);
    sized.reserve(1_000, dim);
    let reserved = sized.heap_bytes();
    for i in 0..1_000i64 {
        scalar.insert(&vec![i % 200; dim]);
        sized.insert(&vec![i % 200; dim]);
    }
    assert_eq!(
        sized.heap_bytes(),
        reserved,
        "reserve must pre-size the filter plane too"
    );
    assert!(
        sized.heap_bytes() >= scalar.heap_bytes() + 1_000 * 8,
        "plane bytes unaccounted: {} vs {}",
        sized.heap_bytes(),
        scalar.heap_bytes()
    );

    // Revocation alone reclaims nothing (tombstones keep their cells)…
    for id in 0..500 {
        index.remove(id);
    }
    assert_eq!(index.heap_bytes(), full);
    // …and compaction keeps the buffer (capacity is retained for reuse)
    // while halving the rows it holds.
    index.compact();
    assert_eq!(index.len(), 500);
    assert!(index.heap_bytes() <= full);

    // Sustained churn with periodic compaction stays bounded: memory is
    // proportional to the live population, not enrollments ever.
    let bound = index.heap_bytes().max(full);
    for round in 0..2_000i64 {
        let id = index.insert(&vec![round % 200; dim]);
        index.remove(id);
        if round % 64 == 0 {
            index.compact();
        }
        assert!(
            index.heap_bytes() <= 2 * bound,
            "heap grew unbounded under churn (round {round})"
        );
    }

    // The same sketches on a wide ring cost ~4× more per coordinate.
    let mut wide = fuzzy_id::core::SketchArena::new(t, 1 << 40);
    for i in 0..1_000i64 {
        wide.push(&vec![i % 200; dim]);
    }
    assert!(wide.heap_bytes() >= 3 * index.heap_bytes());
}

/// `heap_bytes` accounting for the epoch engine: the estimate must
/// cover segment cells *and* per-segment prefilter planes *and* the
/// published-snapshot + epoch-garbage overhead — and stay bounded
/// (proportional to the live population) under sustained churn with
/// maintenance and compaction, even while detached readers keep old
/// snapshots reclaimable-but-pinned.
#[test]
fn epoch_heap_bytes_covers_segments_planes_and_garbage() {
    use fuzzy_id::core::{EpochIndex, EpochRead};

    let (t, ka, dim) = (100u64, 400u64, 64usize);
    // Tiny tiers: 1 000 rows spread over many sealed segments.
    let mut index = EpochIndex::with_thresholds(t, ka, FilterConfig::default(), 64, 2, 128);
    for i in 0..1_000i64 {
        index.insert(&vec![i % 200; dim]);
    }
    assert!(!index.segments().is_empty());
    let full = index.heap_bytes();
    // Floor: cells (2 bytes × dim) + plane lanes (8 × 1 byte — paper
    // `ka` takes the quantized byte plane) + the liveness bitmap, per
    // row, across all tiers — regardless of how the rows are
    // distributed over segments. The published snapshot duplicates the
    // segment *list* (Arc clones, not cells), so the ceiling stays
    // within a small multiple.
    assert!(full >= 1_000 * dim * 2 + 1_000 * 8 + 1_000 / 8);
    assert!(
        full <= 6 * (1_000 * (dim + 8) * 2),
        "unexpected slack: {full}"
    );

    // Segment metadata must be accounted: more segments over the same
    // rows costs more than one arena holding them.
    let mut monolith = EpochIndex::with_thresholds(t, ka, FilterConfig::default(), 2_000, 2, 4_000);
    for i in 0..1_000i64 {
        monolith.insert(&vec![i % 200; dim]);
    }
    assert!(monolith.segments().is_empty());
    assert!(full >= monolith.heap_bytes() / 2);

    // Epoch garbage: superseded snapshots awaiting reclamation are
    // charged until readers quiesce and the publish path collects them.
    let before_churn = index.heap_bytes();
    let _reader = index.reader();

    // Sustained churn: enroll + revoke + maintain + periodic compact
    // stays bounded by a small multiple of the quiescent footprint even
    // though every round publishes a fresh snapshot (whose predecessor
    // lands on the garbage list until reclaimed).
    let bound = before_churn;
    for round in 0..2_000i64 {
        let id = index.insert(&vec![round % 200; dim]);
        index.remove(id);
        if round % 16 == 0 {
            index.maintain();
        }
        if round % 64 == 0 {
            index.compact();
        }
        assert!(
            index.heap_bytes() <= 3 * bound,
            "heap grew unbounded under churn (round {round})"
        );
    }
    index.compact();
    assert_eq!(index.len(), 1_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Churn-bounded memory, property form: for random tier thresholds
    /// and churn scripts, `heap_bytes` after `compact()` is bounded by
    /// a constant multiple of the live population's raw cell bytes —
    /// segment metadata, planes, and the garbage list included — never
    /// by the number of enrollments ever made.
    #[test]
    fn epoch_heap_bytes_bounded_by_live_population(
        staging_cap in 2usize..32,
        merge_runs in 2usize..5,
        seal_mul in 1usize..4,
        keep in 8usize..64,
        churn in 100usize..400,
        dim in 2usize..16,
    ) {
        use fuzzy_id::core::{EpochIndex, EpochRead, IndexReader};

        let (t, ka) = (100u64, 400u64);
        let seal_rows = staging_cap * merge_runs * seal_mul;
        let mut index =
            EpochIndex::with_thresholds(t, ka, FilterConfig::default(), staging_cap, merge_runs, seal_rows);
        let reader = index.reader();
        for i in 0..keep {
            index.insert(&vec![i as i64 % 200; dim]);
        }
        for round in 0..churn {
            let id = index.insert(&vec![round as i64 % 200; dim]);
            index.remove(id);
            if round % 32 == 31 {
                index.maintain();
            }
        }
        index.compact();
        prop_assert_eq!(index.len(), keep);
        // Ceiling: canonical cells are 2 bytes at ka = 400; planes add
        // 8 lanes × 2 bytes; bitmap, Arc/metadata, the published
        // snapshot, and pinned garbage fit in the constant factor. The
        // additive term covers fixed per-index overhead at tiny `keep`.
        let raw = keep * dim * 2;
        prop_assert!(
            index.heap_bytes() <= 24 * raw + 4096 * (1 + std::mem::size_of::<usize>()),
            "heap {} not bounded by live population ({} raw bytes, {} churned)",
            index.heap_bytes(), raw, churn
        );
        // The detached reader still answers from the last publish.
        prop_assert_eq!(reader.find_first(&vec![0; dim]), index.lookup(&vec![0; dim]));
    }
}
