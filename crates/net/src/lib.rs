//! `fe-net` — the networked front door of the fuzzy-extractor
//! identification service: a framed TCP server, a blocking client, and
//! the wire plumbing between them.
//!
//! Until this crate, every deployment surface was in-process: library
//! calls, or the in-memory adversarial links of
//! `fe_protocol::transport`. `fe-net` carries the same
//! [`fe_protocol::wire`] messages over real sockets, so a biometric
//! device and the authentication server can live in different
//! processes — the deployment the paper actually describes (device and
//! server separated by an untrusted channel; the protocol's security
//! does not rest on the transport).
//!
//! The stack, bottom up (each layer has its own module docs, and
//! `PROTOCOL.md` at the repo root is the normative byte-level spec):
//!
//! * [`frame`] — length-prefixed, CRC-checked frames; the same layout
//!   as `fe_core::codec`'s journal records, on a socket.
//! * [`handshake`] — version + [`SystemParams`] fingerprint agreement
//!   before any request flows.
//! * [`envelope`] — request ids and self-describing response bodies
//!   inside each frame; the request payload *is* a wire message.
//! * [`server`] — [`NetServer`]: accept loop, per-connection
//!   reader/writer thread pairs, dispatch into a
//!   [`ScheduledServer`](fe_protocol::scheduler::ScheduledServer) so
//!   wire traffic shares the micro-batching admission queue — and its
//!   fail-fast `OVERLOADED` backpressure — with in-process callers.
//! * [`client`] — [`Client`]: synchronous calls over one connection.
//!
//! # No new dependencies
//!
//! Everything is `std::net` + the workspace's own crates: blocking
//! sockets, a thread per connection side, no async runtime. At the
//! population scales this system targets, identification cost is
//! dominated by the index sweep, not by connection counts — a thread
//! pair per connection is the right simplicity trade.
//!
//! [`SystemParams`]: fe_protocol::SystemParams

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod envelope;
pub mod error;
pub mod frame;
pub mod handshake;
pub mod server;

pub use client::Client;
pub use envelope::{Response, ResponseBody};
pub use error::{ErrorCode, NetError, WireError};
pub use frame::{FrameEvent, DEFAULT_MAX_FRAME};
pub use handshake::{HandshakeStatus, NET_VERSION};
pub use server::{NetConfig, NetMetrics, NetServer};
