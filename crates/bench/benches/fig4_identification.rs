//! **Figure 4**: speed of the identification protocol vs. database size.
//!
//! The paper shows the proposed protocol flat (~110 ms in their Python
//! setup) while the normal fuzzy-extractor approach grows linearly with
//! the number of enrolled users. Absolute times differ here (Rust vs
//! Python, different hardware); the *shape* — flat vs linear — is the
//! reproduced claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fe_bench::Population;
use fe_protocol::SystemParams;
use std::time::Duration;

/// The paper's headline dimension.
const DIM: usize = 5000;
const POPULATION_SIZES: [usize; 5] = [1, 5, 10, 25, 50];

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_identification");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &users in &POPULATION_SIZES {
        // Identify the LAST enrolled user: the worst case for the linear
        // scan of the normal approach.
        let params = SystemParams::insecure_test_defaults();
        let mut pop = Population::build(params, users, DIM, 0xF164 + users as u64);
        let reading = pop.genuine_reading(users - 1);

        group.bench_with_input(BenchmarkId::new("proposed", users), &users, |b, _| {
            b.iter(|| {
                let (outcome, _) = pop
                    .runner
                    .identify(std::hint::black_box(&reading), &mut pop.rng)
                    .expect("identified");
                assert!(outcome.is_identified());
            })
        });

        let params = SystemParams::insecure_test_defaults();
        let mut pop = Population::build(params, users, DIM, 0xF164 + users as u64);
        let reading = pop.genuine_reading(users - 1);
        group.bench_with_input(BenchmarkId::new("normal", users), &users, |b, _| {
            b.iter(|| {
                let (outcome, _, _) = pop
                    .runner
                    .identify_normal(std::hint::black_box(&reading), &mut pop.rng)
                    .expect("identified");
                assert!(outcome.is_identified());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
