//! Epoch-published storage engine: a small mutable **head** arena plus
//! immutable **sealed segments**, with a lock-free read path.
//!
//! # Shape
//!
//! [`EpochIndex`] splits storage into tiers:
//!
//! ```text
//!   writer state                      published snapshot (ArcCell)
//!   ┌──────────────────────┐          ┌───────────────────────────┐
//!   │ staging SketchArena  │──clone──▶│ head: Arc<SketchArena>    │
//!   │ segments:            │──Arc────▶│ segments: Vec<Arc<Segment>>│
//!   │   [run][run][sealed] │          │ head_base, generation     │
//!   └──────────────────────┘          └───────────────────────────┘
//! ```
//!
//! Writers (`insert`/`remove`/`compact`, all `&mut self`) mutate only
//! the staging arena and the segment *list*; every visible change is
//! published as a fresh immutable `Snapshot` through the vendored
//! [`crossbeam::epoch::ArcCell`]. Readers obtained via
//! [`EpochRead::reader`] load the current snapshot (an epoch pin plus
//! one atomic pointer read — **no `RwLock`, no `Mutex`**) and sweep
//! head + segments against it; a snapshot stays valid for the whole
//! sweep because the reader holds an `Arc`, and superseded snapshots
//! are reclaimed only once every reader pinned before the swap has
//! unpinned (the epoch reclamation rule).
//!
//! # Tiers and lifecycle
//!
//! * **staging** — the mutable head arena. Inserts append here; once it
//!   reaches `staging_cap` rows it is *frozen* into an immutable run
//!   segment and a fresh staging arena starts.
//! * **runs** — small frozen segments awaiting consolidation. When
//!   `merge_runs` of them accumulate they are merged (live rows only)
//!   into one larger segment; this *is* the incremental compaction:
//!   tombstoned rows vanish from the merged output off the read path,
//!   while readers keep scanning the pre-merge snapshot.
//! * **sealed** — segments whose merged size reached `seal_rows`. They
//!   are never merged again by routine churn ([`EpochIndex::maintain`]
//!   rewrites a sealed segment only once a quarter of its rows are
//!   tombstoned), and their on-disk form is the columnar snapshot
//!   frame (see [`SketchIndex::export_segments`]).
//!
//! Revoking a row in a frozen segment flips a bit in the segment's
//! *tombstone words* — per-segment `AtomicU64`s read by in-flight
//! scans through the already-published `Arc<Segment>`, so revocation
//! needs no republish and never blocks a reader. Revoking a staging
//! row republishes the head clone.
//!
//! # Id assignment
//!
//! Ids are assigned densely in insertion order and never renumbered
//! outside [`SketchIndex::compact`]/[`SketchIndex::clear`]. Segments
//! hold ascending, disjoint id ranges (dense-from-base right after a
//! freeze, a sorted sparse id list after a merge dropped tombstoned
//! rows), and the staging arena holds the tail `head_base..`; scanning
//! segments in list order therefore yields globally ascending matches
//! and first-hit-wins reproduces earliest-enrolled-wins exactly.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::epoch::ArcCell;

use super::store::{FilterConfig, RowMask, SketchArena};
use super::{RecordId, SketchIndex};

/// Rows the staging arena may hold before it is frozen into a run
/// segment. Small enough that the per-insert head republish (a clone
/// of the staging arena) stays cheap, large enough that runs are
/// worth scanning.
const DEFAULT_STAGING_CAP: usize = 1024;

/// Frozen runs that trigger a consolidating merge.
const DEFAULT_MERGE_RUNS: usize = 8;

/// Rows at which a merged segment is sealed (exempt from routine
/// merging, exported verbatim by checkpoints).
const DEFAULT_SEAL_ROWS: usize = 65_536;

/// `reserve` hints at or above this many rows switch the index into
/// bulk-load mode (no per-insert publish) until [`SketchIndex::flush`];
/// smaller hints keep the publish-per-write contract so interactive
/// callers never observe a stale snapshot.
const BULK_RESERVE_THRESHOLD: usize = 4096;

/// A sealed segment rewrite triggers once this fraction of its rows
/// are tombstoned (numerator/denominator of `rows / 4`).
const MAINTAIN_TOMBSTONE_DIVISOR: usize = 4;

/// Version tag leading every exported segment blob.
const SEGMENT_BLOB_VERSION: u32 = 1;

/// Where a segment's column data lives.
///
/// The trait seam for the beyond-RAM cold tier: `Anon` segments own
/// their arena in heap memory; `File` names a columnar snapshot frame
/// on disk that a future mmap backend will map read-only instead of
/// materializing. Today every constructed segment is `Anon` — the
/// variant (and [`Segment::backing`]) pin down the API so the mmap
/// work is a backend swap, not an index redesign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentBacking {
    /// Heap-resident arena (the only backing constructed today).
    Anon,
    /// Columnar frame at this path, to be mapped rather than loaded.
    File(std::path::PathBuf),
}

/// Global-id map for a frozen segment's rows.
#[derive(Debug)]
enum Ids {
    /// Rows `0..rows` are ids `base..base + rows` (a freshly frozen
    /// staging arena, or a merge that dropped nothing).
    Dense(RecordId),
    /// Row `r` is `ids[r]`; strictly ascending (a merge that dropped
    /// tombstoned rows).
    Sparse(Vec<RecordId>),
}

impl Ids {
    fn id_of(&self, row: usize) -> RecordId {
        match self {
            Ids::Dense(base) => base + row,
            Ids::Sparse(ids) => ids[row],
        }
    }

    fn row_of(&self, id: RecordId, rows: usize) -> Option<usize> {
        match self {
            Ids::Dense(base) => {
                if id >= *base && id - base < rows {
                    Some(id - base)
                } else {
                    None
                }
            }
            Ids::Sparse(ids) => ids.binary_search(&id).ok(),
        }
    }

    /// One past the highest id held (0 for an impossible empty segment).
    fn end_id(&self, rows: usize) -> RecordId {
        match self {
            Ids::Dense(base) => base + rows,
            Ids::Sparse(ids) => ids.last().map_or(0, |last| last + 1),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            Ids::Dense(_) => 0,
            Ids::Sparse(ids) => ids.capacity() * std::mem::size_of::<RecordId>(),
        }
    }
}

/// An immutable frozen arena plus revocation state.
///
/// The arena (rows, liveness words, prefilter plane) never changes
/// after construction; post-freeze revocations land in the `tombstones`
/// words, which concurrent scans read atomically through the published
/// `Arc<Segment>` — a row is live iff its arena liveness bit is set
/// *and* its tombstone bit is clear.
#[derive(Debug)]
pub struct Segment {
    arena: SketchArena,
    ids: Ids,
    /// Post-freeze revocations, bit `r % 64` of word `r / 64`.
    tombstones: Vec<AtomicU64>,
    /// Count of set tombstone bits (all flips go through `revoke`,
    /// which runs under the index's `&mut self`, so this never races
    /// with itself — it is atomic only so readers may load it).
    revoked: AtomicUsize,
    sealed: bool,
    backing: SegmentBacking,
}

impl Segment {
    fn from_arena(arena: SketchArena, ids: Ids, sealed: bool, backing: SegmentBacking) -> Segment {
        let words = arena.rows().div_ceil(64);
        Segment {
            tombstones: (0..words).map(|_| AtomicU64::new(0)).collect(),
            revoked: AtomicUsize::new(0),
            arena,
            ids,
            sealed,
            backing,
        }
    }

    /// Frozen row count (live and dead).
    pub fn rows(&self) -> usize {
        self.arena.rows()
    }

    /// Live rows: arena-live minus post-freeze tombstones.
    pub fn live(&self) -> usize {
        self.arena.len() - self.revoked.load(Ordering::SeqCst)
    }

    /// Sealed segments are exempt from routine merging and are what
    /// checkpoints export verbatim.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Where this segment's columns live (the mmap seam).
    pub fn backing(&self) -> &SegmentBacking {
        &self.backing
    }

    fn is_tombstoned(&self, row: usize) -> bool {
        self.tombstones[row / 64].load(Ordering::SeqCst) & (1 << (row % 64)) != 0
    }

    /// Flips the tombstone bit for `row`; `true` if the row was live.
    /// Writer-side only (`&mut` on the owning index), but the flip is
    /// atomic so a published scan observes either the row or its
    /// absence — never a torn word.
    fn revoke(&self, row: usize) -> bool {
        if !self.arena.is_live(row) {
            return false;
        }
        let bit = 1u64 << (row % 64);
        if self.tombstones[row / 64].fetch_or(bit, Ordering::SeqCst) & bit != 0 {
            return false;
        }
        self.revoked.fetch_add(1, Ordering::SeqCst);
        true
    }

    /// The tombstone complement as a scan mask, or `None` when nothing
    /// was revoked (the common case — scans then skip the mask AND
    /// entirely and run the plain swept path).
    fn scan_mask(&self) -> Option<RowMask> {
        if self.revoked.load(Ordering::SeqCst) == 0 {
            return None;
        }
        Some(RowMask::from_words(
            self.tombstones
                .iter()
                .map(|w| !w.load(Ordering::SeqCst))
                .collect(),
        ))
    }

    fn find_first(&self, probe: &[i64]) -> Option<usize> {
        match self.scan_mask() {
            None => self.arena.find_first(probe),
            Some(mask) => self
                .arena
                .find_at_most_masked(probe, &mask, 1)
                .first()
                .copied(),
        }
    }

    fn find_at_most(&self, probe: &[i64], budget: usize) -> Vec<usize> {
        match self.scan_mask() {
            None => self.arena.find_at_most(probe, budget),
            Some(mask) => self.arena.find_at_most_masked(probe, &mask, budget),
        }
    }

    fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
            + self.tombstones.capacity() * std::mem::size_of::<AtomicU64>()
            + self.ids.heap_bytes()
            + std::mem::size_of::<Segment>()
    }
}

/// One immutable published view: the segment list plus a clone of the
/// staging arena at publish time.
#[derive(Debug)]
struct Snapshot {
    segments: Vec<Arc<Segment>>,
    head: Arc<SketchArena>,
    head_base: RecordId,
    generation: u64,
}

impl Snapshot {
    fn view(&self) -> View<'_> {
        View {
            segments: &self.segments,
            head: &self.head,
            head_base: self.head_base,
        }
    }

    fn heap_bytes(&self) -> usize {
        self.head.heap_bytes()
            + self.segments.capacity() * std::mem::size_of::<Arc<Segment>>()
            + std::mem::size_of::<Snapshot>()
    }
}

/// Borrowed scan view shared by the writer-side trait methods (over
/// live writer state) and the lock-free reader (over a snapshot).
struct View<'a> {
    segments: &'a [Arc<Segment>],
    head: &'a SketchArena,
    head_base: RecordId,
}

impl View<'_> {
    fn find_first(&self, probe: &[i64]) -> Option<RecordId> {
        for seg in self.segments {
            if let Some(row) = seg.find_first(probe) {
                return Some(seg.ids.id_of(row));
            }
        }
        self.head.find_first(probe).map(|row| self.head_base + row)
    }

    fn find_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        let mut out = Vec::new();
        if budget == 0 {
            return out;
        }
        for seg in self.segments {
            for row in seg.find_at_most(probe, budget - out.len()) {
                out.push(seg.ids.id_of(row));
            }
            if out.len() >= budget {
                return out;
            }
        }
        for row in self.head.find_at_most(probe, budget - out.len()) {
            out.push(self.head_base + row);
        }
        out
    }

    fn find_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        let mut out = Vec::new();
        if budget == 0 || subset.is_empty() {
            return out;
        }
        for seg in self.segments {
            let mut mask = RowMask::new();
            let mut any = false;
            for &id in subset {
                if let Some(row) = seg.ids.row_of(id, seg.rows()) {
                    if !seg.is_tombstoned(row) {
                        mask.insert(row);
                        any = true;
                    }
                }
            }
            if any {
                for row in self.find_masked(&seg.arena, probe, &mask, budget - out.len()) {
                    out.push(seg.ids.id_of(row));
                }
                if out.len() >= budget {
                    return out;
                }
            }
        }
        let mut mask = RowMask::new();
        let mut any = false;
        for &id in subset {
            if id >= self.head_base && id - self.head_base < self.head.rows() {
                mask.insert(id - self.head_base);
                any = true;
            }
        }
        if any {
            for row in self.find_masked(self.head, probe, &mask, budget - out.len()) {
                out.push(self.head_base + row);
            }
        }
        out
    }

    fn find_masked(
        &self,
        arena: &SketchArena,
        probe: &[i64],
        mask: &RowMask,
        budget: usize,
    ) -> Vec<usize> {
        arena.find_at_most_masked(probe, mask, budget)
    }

    fn find_first_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        let mut out: Vec<Option<RecordId>> = vec![None; probes.len()];
        // Probes still unresolved after the segments scanned so far;
        // each segment serves the survivors with ONE multi-query pass
        // (tombstone-free case) so the batch costs one sweep per tier,
        // not one per probe.
        let mut open: Vec<usize> = (0..probes.len()).collect();
        let mut scratch: Vec<Vec<i64>> = Vec::new();
        for seg in self.segments {
            if open.is_empty() {
                return out;
            }
            match seg.scan_mask() {
                None => {
                    let found = if open.len() == probes.len() {
                        seg.arena.find_first_batch(probes)
                    } else {
                        scratch.clear();
                        scratch.extend(open.iter().map(|&p| probes[p].clone()));
                        seg.arena.find_first_batch(&scratch)
                    };
                    for (&slot, row) in open.iter().zip(found) {
                        if let Some(row) = row {
                            out[slot] = Some(seg.ids.id_of(row));
                        }
                    }
                }
                Some(mask) => {
                    for &slot in &open {
                        if let Some(&row) = seg
                            .arena
                            .find_at_most_masked(&probes[slot], &mask, 1)
                            .first()
                        {
                            out[slot] = Some(seg.ids.id_of(row));
                        }
                    }
                }
            }
            open.retain(|&p| out[p].is_none());
        }
        if !open.is_empty() {
            let found = if open.len() == probes.len() {
                self.head.find_first_batch(probes)
            } else {
                scratch.clear();
                scratch.extend(open.iter().map(|&p| probes[p].clone()));
                self.head.find_first_batch(&scratch)
            };
            for (&slot, row) in open.iter().zip(found) {
                if let Some(row) = row {
                    out[slot] = Some(self.head_base + row);
                }
            }
        }
        out
    }
}

/// A lock-free identification reader over some epoch-published index.
///
/// Implementors are cheap-to-clone handles that can be scanned from
/// any thread while the owning index keeps mutating; every call
/// observes some published snapshot that is at least as fresh as the
/// last write completed before the call.
pub trait IndexReader: Send + Sync + 'static {
    /// The structural generation of the snapshot the last/next scan
    /// observes (see [`SketchIndex::generation`]); callers compare it
    /// against the writer's to detect an id renumbering race.
    fn generation(&self) -> u64;

    /// Lowest live matching id (earliest-enrolled-wins).
    fn find_first(&self, probe: &[i64]) -> Option<RecordId>;

    /// [`IndexReader::find_first`] for every probe with shared sweeps.
    fn find_first_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>>;

    /// Up to `budget` lowest live matching ids, ascending.
    fn find_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId>;

    /// Bounded match restricted to `subset` (unknown/dead ids skipped).
    fn find_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId>;
}

/// A [`SketchIndex`] that can hand out lock-free [`IndexReader`]s.
pub trait EpochRead: SketchIndex {
    /// The reader handle type.
    type Reader: IndexReader;

    /// A detached reader over this index's published snapshots. The
    /// handle stays valid (and keeps observing new publishes) for the
    /// life of the index's shared state, even across `&mut` writes.
    fn reader(&self) -> Self::Reader;
}

/// The lock-free reader over an [`EpochIndex`] (see [`EpochRead`]).
///
/// Every scan loads the current snapshot under an epoch pin — one
/// atomic pointer read plus an `Arc` refcount — then sweeps it
/// unsynchronized; no scan ever takes a lock or blocks a writer.
#[derive(Clone)]
pub struct EpochReader {
    cell: Arc<ArcCell<Snapshot>>,
}

impl fmt::Debug for EpochReader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.cell.load();
        f.debug_struct("EpochReader")
            .field("segments", &snap.segments.len())
            .field("head_rows", &snap.head.rows())
            .field("generation", &snap.generation)
            .finish()
    }
}

impl IndexReader for EpochReader {
    fn generation(&self) -> u64 {
        self.cell.load().generation
    }

    fn find_first(&self, probe: &[i64]) -> Option<RecordId> {
        self.cell.load().view().find_first(probe)
    }

    fn find_first_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        self.cell.load().view().find_first_batch(probes)
    }

    fn find_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        self.cell.load().view().find_at_most(probe, budget)
    }

    fn find_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        self.cell
            .load()
            .view()
            .find_in_subset(probe, subset, budget)
    }
}

/// The epoch-published segmented index (module docs: [`crate::index::epoch`]).
pub struct EpochIndex {
    t: u64,
    ka: u64,
    filter: FilterConfig,
    staging_cap: usize,
    merge_runs: usize,
    seal_rows: usize,
    /// Frozen segments, ascending disjoint id ranges.
    segments: Vec<Arc<Segment>>,
    /// The mutable head; rows here are ids `staging_base..`.
    staging: SketchArena,
    staging_base: RecordId,
    /// Stamped by the first insert (or `reserve`); enforced here, not
    /// only by the arenas, because each freeze starts an unstamped
    /// staging arena that would otherwise accept a new dimension.
    dim: Option<usize>,
    generation: u64,
    /// Bulk-load mode: publishes suppressed until `flush`.
    bulk: bool,
    cell: Arc<ArcCell<Snapshot>>,
}

impl fmt::Debug for EpochIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochIndex")
            .field("t", &self.t)
            .field("ka", &self.ka)
            .field("segments", &self.segments.len())
            .field("staging_rows", &self.staging.rows())
            .field("staging_base", &self.staging_base)
            .field("generation", &self.generation)
            .field("live", &self.len())
            .finish()
    }
}

impl Clone for EpochIndex {
    /// Clones the *contents* into an independent index with its own
    /// publication cell: readers of the original never observe the
    /// clone's writes. Frozen segments are shared (`Arc`) until the
    /// clone merges or compacts them away.
    fn clone(&self) -> EpochIndex {
        EpochIndex {
            t: self.t,
            ka: self.ka,
            filter: self.filter,
            staging_cap: self.staging_cap,
            merge_runs: self.merge_runs,
            seal_rows: self.seal_rows,
            segments: self.segments.clone(),
            staging: self.staging.clone(),
            staging_base: self.staging_base,
            dim: self.dim,
            generation: self.generation,
            bulk: self.bulk,
            cell: Arc::new(ArcCell::new(Arc::new(Snapshot {
                segments: self.segments.clone(),
                head: Arc::new(self.staging.clone()),
                head_base: self.staging_base,
                generation: self.generation,
            }))),
        }
    }
}

impl EpochIndex {
    /// An epoch index over a ring of circumference `ka` with threshold
    /// `t` and the default prefilter.
    pub fn new(t: u64, ka: u64) -> EpochIndex {
        EpochIndex::with_filter(t, ka, FilterConfig::default())
    }

    /// Like [`EpochIndex::new`] with an explicit prefilter
    /// configuration (applied to the head and every future segment).
    pub fn with_filter(t: u64, ka: u64, filter: FilterConfig) -> EpochIndex {
        EpochIndex::with_thresholds(
            t,
            ka,
            filter,
            DEFAULT_STAGING_CAP,
            DEFAULT_MERGE_RUNS,
            DEFAULT_SEAL_ROWS,
        )
    }

    /// Full-control constructor: `staging_cap` rows freeze the head
    /// into a run, `merge_runs` runs trigger a consolidating merge,
    /// `seal_rows` rows seal a merged segment. Tests drive tiny
    /// thresholds to exercise every tier; production uses the
    /// defaults.
    ///
    /// # Panics
    /// Panics if any threshold is zero.
    pub fn with_thresholds(
        t: u64,
        ka: u64,
        filter: FilterConfig,
        staging_cap: usize,
        merge_runs: usize,
        seal_rows: usize,
    ) -> EpochIndex {
        assert!(
            staging_cap > 0 && merge_runs > 0 && seal_rows > 0,
            "epoch thresholds must be positive"
        );
        let staging = SketchArena::with_filter(t, ka, filter);
        let cell = Arc::new(ArcCell::new(Arc::new(Snapshot {
            segments: Vec::new(),
            head: Arc::new(staging.clone()),
            head_base: 0,
            generation: 0,
        })));
        EpochIndex {
            t,
            ka,
            filter,
            staging_cap,
            merge_runs,
            seal_rows,
            segments: Vec::new(),
            staging,
            staging_base: 0,
            dim: None,
            generation: 0,
            bulk: false,
            cell,
        }
    }

    /// The frozen segments (diagnostics, benches, checkpoint export).
    pub fn segments(&self) -> &[Arc<Segment>] {
        &self.segments
    }

    /// Rows currently in the mutable head.
    pub fn staging_rows(&self) -> usize {
        self.staging.rows()
    }

    fn view(&self) -> View<'_> {
        View {
            segments: &self.segments,
            head: &self.staging,
            head_base: self.staging_base,
        }
    }

    /// Publishes the current writer state as a fresh snapshot.
    fn publish(&mut self) {
        self.cell.store(Arc::new(Snapshot {
            segments: self.segments.clone(),
            head: Arc::new(self.staging.clone()),
            head_base: self.staging_base,
            generation: self.generation,
        }));
    }

    /// Freezes the staging arena into a run segment (no publish).
    fn freeze(&mut self) {
        let rows = self.staging.rows();
        if rows == 0 {
            return;
        }
        let mut fresh = SketchArena::with_filter(self.t, self.ka, self.filter);
        if let Some(dim) = self.dim {
            fresh.reserve(self.staging_cap, dim);
        }
        let arena = std::mem::replace(&mut self.staging, fresh);
        let sealed = rows >= self.seal_rows;
        self.segments.push(Arc::new(Segment::from_arena(
            arena,
            Ids::Dense(self.staging_base),
            sealed,
            SegmentBacking::Anon,
        )));
        self.staging_base += rows;
    }

    /// Merges the trailing unsealed runs once `merge_runs` of them
    /// accumulate. Copies live rows only — this is the incremental
    /// compaction: tombstoned rows vanish here, off the read path
    /// (readers keep sweeping the previous snapshot until the next
    /// publish swaps in the merged list).
    fn maybe_merge(&mut self) {
        let tail_start = self
            .segments
            .iter()
            .rposition(|s| s.sealed)
            .map_or(0, |i| i + 1);
        if self.segments.len() - tail_start >= self.merge_runs {
            self.merge_range(tail_start..self.segments.len());
        }
    }

    /// Rewrites `range` (adjacent segments) into at most one live-only
    /// segment. Does not publish; callers do.
    fn merge_range(&mut self, range: Range<usize>) {
        let start = range.start;
        let merged: Vec<Arc<Segment>> = self.segments.drain(range).collect();
        let total_live: usize = merged.iter().map(|s| s.live()).sum();
        if total_live == 0 {
            return;
        }
        let dim = self
            .dim
            .expect("segments exist, so the dimension is stamped");
        let mut arena = SketchArena::with_filter(self.t, self.ka, self.filter);
        arena.reserve(total_live, dim);
        let mut ids: Vec<RecordId> = Vec::with_capacity(total_live);
        let mut scratch = Vec::new();
        for seg in &merged {
            for row in 0..seg.rows() {
                if seg.is_tombstoned(row) || !seg.arena.copy_row_into(row, &mut scratch) {
                    continue;
                }
                arena.push(&scratch);
                ids.push(seg.ids.id_of(row));
            }
        }
        let base = ids[0];
        let dense = ids.iter().enumerate().all(|(i, &id)| id == base + i);
        let ids = if dense {
            Ids::Dense(base)
        } else {
            Ids::Sparse(ids)
        };
        let sealed = arena.rows() >= self.seal_rows;
        self.segments.insert(
            start,
            Arc::new(Segment::from_arena(
                arena,
                ids,
                sealed,
                SegmentBacking::Anon,
            )),
        );
    }

    /// Background maintenance: rewrites any **sealed** segment whose
    /// tombstone count reached a quarter of its rows (routine merging
    /// never touches sealed segments, so without this a revocation-
    /// heavy workload would scan dead rows forever). Returns the
    /// number of segments rewritten. Cheap no-op when nothing
    /// qualifies, so callers may invoke it opportunistically after
    /// revocation bursts.
    pub fn maintain(&mut self) -> usize {
        let mut rewritten = 0;
        let mut i = 0;
        while i < self.segments.len() {
            let seg = &self.segments[i];
            let revoked = seg.revoked.load(Ordering::SeqCst);
            if seg.sealed && revoked > 0 && revoked * MAINTAIN_TOMBSTONE_DIVISOR >= seg.rows() {
                let had = self.segments.len();
                self.merge_range(i..i + 1);
                rewritten += 1;
                // A fully-dead segment merges to nothing.
                if self.segments.len() == had {
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        if rewritten > 0 && !self.bulk {
            self.publish();
        }
        rewritten
    }

    fn segment_of(&self, id: RecordId) -> Option<(usize, usize)> {
        let i = self
            .segments
            .partition_point(|s| s.ids.end_id(s.rows()) <= id);
        let seg = self.segments.get(i)?;
        seg.ids.row_of(id, seg.rows()).map(|row| (i, row))
    }
}

impl SketchIndex for EpochIndex {
    fn insert(&mut self, sketch: &[i64]) -> RecordId {
        let dim = *self.dim.get_or_insert(sketch.len());
        assert_eq!(
            sketch.len(),
            dim,
            "sketch dimension {} does not match the index's stamped dimension {dim}",
            sketch.len()
        );
        let row = self.staging.push(sketch);
        let id = self.staging_base + row;
        if self.staging.rows() >= self.staging_cap {
            self.freeze();
            self.maybe_merge();
        }
        if !self.bulk {
            self.publish();
        }
        id
    }

    fn lookup(&self, probe: &[i64]) -> Option<RecordId> {
        self.view().find_first(probe)
    }

    fn lookup_all(&self, probe: &[i64]) -> Vec<RecordId> {
        self.view().find_at_most(probe, usize::MAX)
    }

    fn lookup_at_most(&self, probe: &[i64], budget: usize) -> Vec<RecordId> {
        self.view().find_at_most(probe, budget)
    }

    fn lookup_in_subset(&self, probe: &[i64], subset: &[RecordId], budget: usize) -> Vec<RecordId> {
        self.view().find_in_subset(probe, subset, budget)
    }

    fn lookup_batch(&self, probes: &[Vec<i64>]) -> Vec<Option<RecordId>> {
        self.view().find_first_batch(probes)
    }

    fn remove(&mut self, id: RecordId) -> bool {
        if id >= self.staging_base {
            let removed = self.staging.remove(id - self.staging_base);
            if removed && !self.bulk {
                self.publish();
            }
            return removed;
        }
        // Frozen row: the atomic tombstone flip is visible through the
        // already-published Arc<Segment> — no republish needed.
        match self.segment_of(id) {
            Some((i, row)) => self.segments[i].revoke(row),
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.segments.iter().map(|s| s.live()).sum::<usize>() + self.staging.len()
    }

    fn slots(&self) -> usize {
        self.segments.iter().map(|s| s.rows()).sum::<usize>() + self.staging.rows()
    }

    fn dim(&self) -> Option<usize> {
        self.dim
    }

    fn sketch_dim_ok(&self, dim: usize) -> bool {
        self.dim.is_none_or(|stamped| stamped == dim)
    }

    fn copy_row_into(&self, id: RecordId, out: &mut Vec<i64>) -> bool {
        if id >= self.staging_base {
            return self.staging.copy_row_into(id - self.staging_base, out);
        }
        match self.segment_of(id) {
            Some((i, row)) => {
                let seg = &self.segments[i];
                if seg.is_tombstoned(row) {
                    out.clear();
                    false
                } else {
                    seg.arena.copy_row_into(row, out)
                }
            }
            None => {
                out.clear();
                false
            }
        }
    }

    // The default walks ids `0..slots()`, but merges drop dead rows, so
    // live ids can exceed `slots()`; walk the tiers directly instead.
    fn for_each_live(&self, f: &mut dyn FnMut(RecordId, &[i64])) {
        let mut scratch = Vec::new();
        for seg in &self.segments {
            for row in 0..seg.rows() {
                if !seg.is_tombstoned(row) && seg.arena.copy_row_into(row, &mut scratch) {
                    f(seg.ids.id_of(row), &scratch);
                }
            }
        }
        let base = self.staging_base;
        self.staging
            .for_each_live(|row, sketch| f(base + row, sketch));
    }

    fn reserve(&mut self, additional: usize, dim: usize) {
        let stamped = *self.dim.get_or_insert(dim);
        assert_eq!(dim, stamped, "reserve dimension must match the stamp");
        self.staging.reserve(additional.min(self.staging_cap), dim);
        if additional >= BULK_RESERVE_THRESHOLD {
            // Bulk load: suppress per-insert publishes until `flush`
            // (recovery calls it; readers created mid-load would see a
            // stale but consistent snapshot, which recovery never does).
            self.bulk = true;
        }
    }

    fn heap_bytes(&self) -> usize {
        let mut bytes = self.staging.heap_bytes()
            + self.segments.capacity() * std::mem::size_of::<Arc<Segment>>();
        for seg in &self.segments {
            bytes += seg.heap_bytes();
        }
        // The published snapshot duplicates the head clone and segment
        // list; superseded snapshots awaiting epoch reclamation cost
        // about the same each (their heads were ≤ one staging_cap of
        // the current one), so estimate the garbage list at the live
        // snapshot's footprint per retiree.
        let snap = self.cell.load();
        let snap_bytes = snap.heap_bytes();
        bytes + snap_bytes + self.cell.retired_len() * snap_bytes
    }

    fn clear(&mut self) {
        self.segments.clear();
        self.staging.clear();
        self.staging_base = 0;
        self.generation += 1;
        self.bulk = false;
        self.publish();
    }

    fn compact(&mut self) -> Vec<(RecordId, RecordId)> {
        let live = self.live_records();
        self.segments.clear();
        self.staging.clear();
        self.staging_base = 0;
        let was_bulk = self.bulk;
        self.bulk = true;
        let mut mapping = Vec::with_capacity(live.len());
        for (old_id, sketch) in &live {
            let new_id = self.insert(sketch);
            mapping.push((*old_id, new_id));
        }
        self.bulk = was_bulk;
        self.generation += 1;
        if !self.bulk {
            self.publish();
        }
        mapping
    }

    fn flush(&mut self) {
        self.bulk = false;
        self.publish();
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn export_segments(&self) -> Option<Vec<u8>> {
        export_blob(self)
    }

    fn import_segments(&mut self, blob: &[u8]) -> Option<usize> {
        import_blob(self, blob)
    }
}

impl EpochRead for EpochIndex {
    type Reader = EpochReader;

    fn reader(&self) -> EpochReader {
        EpochReader {
            cell: Arc::clone(&self.cell),
        }
    }
}

// ---------------------------------------------------------------------------
// Sealed-segment blob: the checkpoint sidecar format.
//
// Layout (all little-endian):
//   u32 version · u64 t · u64 ka · u32 dim · u32 segment-count
//   per segment: u64 rows · u64 cell-byte-len · cells · u32 word-count
//                · liveness words (tombstones already folded in)
//
// Only a fully-live dense prefix is exportable: `checkpoint()` compacts
// first, so its segments are exactly that shape, and the snapshot rows
// it writes are numbered `0..count` in the same order — which is what
// lets recovery skip re-inserting the covered prefix.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct BlobReader<'a> {
    buf: &'a [u8],
}

impl<'a> BlobReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

/// Encodes the sealed, fully-live, dense-from-zero prefix of the
/// segment list; `None` when there is nothing exportable in that shape
/// (callers then persist nothing and recovery replays the journal).
fn export_blob(index: &EpochIndex) -> Option<Vec<u8>> {
    let dim = index.dim?;
    let mut prefix = Vec::new();
    let mut expected_base = 0usize;
    for seg in &index.segments {
        let full = matches!(seg.ids, Ids::Dense(base) if base == expected_base)
            && seg.sealed
            && seg.live() == seg.rows();
        if !full {
            break;
        }
        expected_base += seg.rows();
        prefix.push(seg);
    }
    if prefix.is_empty() {
        return None;
    }
    let mut out = Vec::new();
    put_u32(&mut out, SEGMENT_BLOB_VERSION);
    put_u64(&mut out, index.t);
    put_u64(&mut out, index.ka);
    put_u32(&mut out, dim as u32);
    put_u32(&mut out, prefix.len() as u32);
    for seg in prefix {
        let (cells, live_words) = seg.arena.export_parts();
        put_u64(&mut out, seg.rows() as u64);
        put_u64(&mut out, cells.len() as u64);
        out.extend_from_slice(&cells);
        put_u32(&mut out, live_words.len() as u32);
        for &w in live_words {
            put_u64(&mut out, w);
        }
    }
    Some(out)
}

/// Installs a blob produced by [`export_blob`] into an **empty** index
/// with matching ring parameters; returns the number of records the
/// imported segments cover (ids `0..n`), which recovery uses to skip
/// that many snapshot re-inserts. `None` (leaving the index empty) on
/// any mismatch — the caller then falls back to a full replay.
fn import_blob(index: &mut EpochIndex, blob: &[u8]) -> Option<usize> {
    if !index.is_empty() || index.slots() != 0 {
        return None;
    }
    let mut r = BlobReader { buf: blob };
    if r.u32()? != SEGMENT_BLOB_VERSION || r.u64()? != index.t || r.u64()? != index.ka {
        return None;
    }
    let dim = r.u32()? as usize;
    if !index.sketch_dim_ok(dim) || dim == 0 {
        return None;
    }
    let count = r.u32()? as usize;
    let mut segments = Vec::with_capacity(count);
    let mut base = 0usize;
    for _ in 0..count {
        let rows = r.u64()? as usize;
        let cell_len = r.u64()? as usize;
        let cells = r.take(cell_len)?;
        let words = r.u32()? as usize;
        let mut live = Vec::with_capacity(words);
        for _ in 0..words {
            live.push(r.u64()?);
        }
        let arena =
            SketchArena::from_parts(index.t, index.ka, index.filter, dim, rows, cells, live)?;
        // The export contract is a fully-live prefix; reject anything
        // else rather than silently resurrecting or dropping rows.
        if arena.len() != rows || rows == 0 {
            return None;
        }
        segments.push(Arc::new(Segment::from_arena(
            arena,
            Ids::Dense(base),
            true,
            SegmentBacking::Anon,
        )));
        base += rows;
    }
    if !r.buf.is_empty() || segments.is_empty() {
        return None;
    }
    index.segments = segments;
    index.staging_base = base;
    index.dim = Some(dim);
    if !index.bulk {
        index.publish();
    }
    Some(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(t: u64, ka: u64) -> EpochIndex {
        // Thresholds small enough that a 50-record test population
        // exercises freeze, merge, and seal. (The shared trait-contract
        // suites in `index::tests` also run over `EpochIndex`.)
        EpochIndex::with_thresholds(t, ka, FilterConfig::default(), 4, 2, 16)
    }

    #[test]
    #[should_panic(expected = "stamped dimension")]
    fn mixed_dimension_insert_panics_across_freeze() {
        let mut index = EpochIndex::with_thresholds(10, 64, FilterConfig::default(), 1, 2, 16);
        index.insert(&[1, 2, 3]);
        // First insert froze immediately (cap 1), so the staging arena
        // is fresh and unstamped — the index-level stamp must still
        // reject a different dimension.
        index.insert(&[1, 2]);
    }

    #[test]
    fn tiers_form_and_merge() {
        let mut index = tiny(10, 64);
        for i in 0..50 {
            index.insert(&[i, i + 1]);
        }
        assert!(!index.segments().is_empty(), "freezes must have fired");
        assert!(
            index.segments().iter().any(|s| s.is_sealed()),
            "merges must have sealed at least one segment"
        );
        assert_eq!(index.len(), 50);
        assert_eq!(index.slots(), 50);
        for seg in index.segments() {
            assert_eq!(*seg.backing(), SegmentBacking::Anon);
        }
    }

    #[test]
    fn frozen_rows_revoke_via_tombstones() {
        // Ring 4096 with spacing 100 ≫ t keeps every record distinct
        // under the cyclic-distance-≤-t predicate.
        let mut index = tiny(10, 4096);
        for i in 0..20 {
            index.insert(&[100 * i, 100 * i]);
        }
        let reader = index.reader();
        // Row 3 froze long ago; revoke it and check both paths agree.
        assert!(index.remove(3));
        assert!(!index.remove(3), "double revoke reports false");
        assert_eq!(index.lookup(&[300, 300]), None);
        assert_eq!(reader.find_first(&[300, 300]), None);
        assert_eq!(index.len(), 19);
        let mut out = Vec::new();
        assert!(!index.copy_row_into(3, &mut out));
        assert!(index.copy_row_into(4, &mut out));
        assert_eq!(out, vec![400, 400]);
    }

    #[test]
    fn merges_drop_dead_rows_but_keep_ids() {
        let mut index = EpochIndex::with_thresholds(10, 4096, FilterConfig::default(), 2, 2, 1024);
        for i in 0..4 {
            index.insert(&[100 * i, 100 * i]);
        }
        // Two runs of 2 merged into one segment of 4; revoke inside it,
        // then force another merge cycle over fresh runs.
        assert!(index.remove(1));
        for i in 4..8 {
            index.insert(&[100 * i, 100 * i]);
        }
        assert_eq!(index.len(), 7);
        assert_eq!(index.lookup(&[100, 100]), None);
        for i in [0usize, 2, 3, 4, 5, 6, 7] {
            let p = [100 * i as i64, 100 * i as i64];
            assert_eq!(index.lookup(&p), Some(i), "id {i} must survive merges");
        }
    }

    #[test]
    fn reader_observes_every_publish() {
        let mut index = tiny(10, 64);
        let reader = index.reader();
        assert_eq!(reader.find_first(&[5, 5]), None);
        let id = index.insert(&[5, 5]);
        assert_eq!(reader.find_first(&[5, 5]), Some(id));
        index.remove(id);
        assert_eq!(reader.find_first(&[5, 5]), None);
    }

    #[test]
    fn reader_matches_writer_across_churn() {
        let mut index = tiny(25, 200);
        let reader = index.reader();
        let mut ids = Vec::new();
        for i in 0..60i64 {
            ids.push(index.insert(&[100 * (i % 7), 100 * ((i * 3) % 7), i]));
            if i % 3 == 0 {
                index.remove(ids[(i as usize) / 2]);
            }
            let probe = [100 * (i % 7), 100 * ((i * 3) % 7), i];
            assert_eq!(reader.find_first(&probe), index.lookup(&probe));
            assert_eq!(
                reader.find_at_most(&probe, 4),
                index.lookup_at_most(&probe, 4)
            );
        }
        let subset: Vec<RecordId> = ids.iter().step_by(3).copied().collect();
        let probe = [0, 0, 0];
        assert_eq!(
            reader.find_in_subset(&probe, &subset, 8),
            index.lookup_in_subset(&probe, &subset, 8)
        );
        let probes: Vec<Vec<i64>> = (0..7)
            .map(|i| vec![100 * (i % 7), 100 * ((i * 3) % 7), i])
            .collect();
        assert_eq!(
            reader.find_first_batch(&probes),
            index.lookup_batch(&probes)
        );
    }

    #[test]
    fn concurrent_readers_never_block_and_see_published_rows() {
        let mut index = EpochIndex::with_thresholds(10, 64, FilterConfig::default(), 8, 2, 64);
        let reader = index.reader();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let reader = reader.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut seen = 0usize;
                    while !stop.load(Ordering::SeqCst) {
                        // Any published row either matches its own
                        // probe or was revoked; a match must be exact.
                        if let Some(id) = reader.find_first(&[7, 7]) {
                            assert_eq!(id % 2, 1, "only odd ids carry [7,7]");
                            seen += 1;
                        }
                        std::hint::spin_loop();
                    }
                    seen
                });
            }
            for i in 0..400usize {
                let v = if i % 2 == 1 { [7i64, 7] } else { [1000, 1000] };
                let id = index.insert(&v);
                if i % 5 == 0 && i % 2 == 1 {
                    index.remove(id);
                }
            }
            index.maintain();
            stop.store(true, Ordering::SeqCst);
        });
        crossbeam::epoch::pin(); // touch the epoch machinery once more
        assert_eq!(index.lookup(&[7, 7]).map(|id| id % 2), Some(1));
    }

    #[test]
    fn maintain_rewrites_tombstone_heavy_sealed_segments() {
        let mut index = EpochIndex::with_thresholds(10, 4096, FilterConfig::default(), 4, 2, 8);
        for i in 0..16i64 {
            index.insert(&[i * 100, i * 100]);
        }
        let sealed_rows: usize = index
            .segments()
            .iter()
            .filter(|s| s.is_sealed())
            .map(|s| s.rows())
            .sum();
        assert!(sealed_rows >= 8, "setup must have sealed a segment");
        for id in 0..8 {
            index.remove(id);
        }
        let before: usize = index.slots();
        assert!(index.maintain() > 0, "a sealed segment was tombstone-heavy");
        assert!(index.slots() < before, "rewrite must drop dead rows");
        for i in 8..16i64 {
            assert_eq!(index.lookup(&[i * 100, i * 100]), Some(i as usize));
        }
        assert_eq!(index.maintain(), 0, "second pass finds nothing to do");
    }

    #[test]
    fn bulk_reserve_defers_publish_until_flush() {
        let mut index = tiny(10, 64);
        index.reserve(BULK_RESERVE_THRESHOLD, 2);
        let reader = index.reader();
        let id = index.insert(&[9, 9]);
        assert_eq!(
            reader.find_first(&[9, 9]),
            None,
            "bulk mode must not publish per insert"
        );
        assert_eq!(index.lookup(&[9, 9]), Some(id), "writer view stays fresh");
        index.flush();
        assert_eq!(reader.find_first(&[9, 9]), Some(id));
    }

    #[test]
    fn export_import_round_trip() {
        let mut index = EpochIndex::with_thresholds(10, 64, FilterConfig::default(), 4, 2, 8);
        for i in 0..20i64 {
            index.insert(&[i * 10, i * 10]);
        }
        // Compact first, as checkpoint() does: export wants the
        // fully-live dense sealed prefix.
        index.compact();
        let blob = index.export_segments().expect("sealed prefix exists");
        let mut restored = EpochIndex::with_thresholds(10, 64, FilterConfig::default(), 4, 2, 8);
        let covered = restored.import_segments(&blob).expect("import");
        assert!(covered > 0 && covered <= 20);
        // Replay the uncovered tail exactly as recovery would.
        let mut scratch = Vec::new();
        for id in covered..20 {
            assert!(index.copy_row_into(id, &mut scratch));
            assert_eq!(restored.insert(&scratch), id);
        }
        assert_eq!(restored.len(), index.len());
        for i in 0..20i64 {
            assert_eq!(
                restored.lookup(&[i * 10, i * 10]),
                index.lookup(&[i * 10, i * 10])
            );
        }
        // Readers see the imported rows.
        assert_eq!(restored.reader().find_first(&[0, 0]), Some(0));
    }

    #[test]
    fn import_rejects_mismatches() {
        let mut index = EpochIndex::with_thresholds(10, 64, FilterConfig::default(), 4, 2, 8);
        for i in 0..20i64 {
            index.insert(&[i * 10, i * 10]);
        }
        index.compact();
        let blob = index.export_segments().expect("sealed prefix exists");
        // Wrong ring.
        let mut other = EpochIndex::new(10, 128);
        assert_eq!(other.import_segments(&blob), None);
        // Non-empty target.
        let mut busy = EpochIndex::with_thresholds(10, 64, FilterConfig::default(), 4, 2, 8);
        busy.insert(&[1, 1]);
        assert_eq!(busy.import_segments(&blob), None);
        // Truncated blob.
        let mut fresh = EpochIndex::with_thresholds(10, 64, FilterConfig::default(), 4, 2, 8);
        assert_eq!(fresh.import_segments(&blob[..blob.len() - 1]), None);
        assert!(fresh.is_empty(), "failed import must leave the index empty");
    }

    #[test]
    fn export_declines_without_sealed_prefix() {
        let mut index = EpochIndex::new(10, 64); // seal_rows = 65536
        for i in 0..50i64 {
            index.insert(&[i, i]);
        }
        assert_eq!(index.export_segments(), None);
        assert_eq!(EpochIndex::new(10, 64).export_segments(), None);
    }

    #[test]
    fn heap_bytes_counts_segments_and_garbage() {
        let mut index = tiny(10, 64);
        let base = index.heap_bytes();
        for i in 0..40i64 {
            index.insert(&[i, i]);
        }
        let grown = index.heap_bytes();
        assert!(grown > base, "segments and snapshot must be accounted");
        let seg_bytes: usize = index.segments().iter().map(|s| s.heap_bytes()).sum();
        assert!(grown >= seg_bytes, "total covers per-segment metadata");
    }

    #[test]
    fn clear_resets_and_bumps_generation() {
        let mut index = tiny(10, 64);
        for i in 0..20i64 {
            index.insert(&[i, i]);
        }
        let reader = index.reader();
        let gen_before = index.generation();
        index.clear();
        assert_eq!(index.len(), 0);
        assert_eq!(index.slots(), 0);
        assert!(index.generation() > gen_before);
        assert_eq!(reader.generation(), index.generation());
        assert_eq!(reader.find_first(&[0, 0]), None);
        assert_eq!(index.insert(&[5, 5]), 0, "ids restart after clear");
    }
}
